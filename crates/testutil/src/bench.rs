//! Criterion-compatible micro-benchmark harness.
//!
//! Implements exactly the API surface `crates/bench/benches/*.rs` uses,
//! so those files compile unchanged against either this shim (offline
//! CI) or real criterion (a developer laptop with crates.io access):
//! `Criterion::benchmark_group`, builder-style `sample_size` /
//! `warm_up_time` / `measurement_time`, `bench_with_input` with a
//! [`BenchmarkId`], `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Statistics are mean/min/max over the
//! configured sample count — no bootstrapping, no HTML reports.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier for one benchmark: a function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Entry point; one per bench binary, created by `criterion_group!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// A named group of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        // Warm-up: run the closure until the warm-up budget is spent, so
        // caches/allocators reach steady state before we time anything.
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 1,
            };
            f(&mut b, input);
        }

        // Measurement: `sample_size` samples, each one timed batch of the
        // user closure, bounded overall by `measurement_time`.
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 1,
            };
            f(&mut b, input);
            samples.push(b.per_iter());
            if Instant::now() > deadline {
                break;
            }
        }

        let n = samples.len().max(1) as u32;
        let mean = samples.iter().sum::<Duration>() / n;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "  {}/{id}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples)",
            self.name,
            samples.len()
        );
        self
    }

    pub fn bench_function<F>(&mut self, id: BenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &()),
    {
        self.bench_with_input(id, &(), f)
    }

    pub fn finish(self) {}
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`. Runs it in a small batch so sub-microsecond
    /// routines still get a measurable sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const BATCH: u64 = 4;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = BATCH;
    }

    fn per_iter(&self) -> Duration {
        if self.iters == 0 {
            return Duration::ZERO;
        }
        self.elapsed / self.iters as u32
    }
}

/// Declares `fn $name()` running each benchmark function against a fresh
/// [`Criterion`]. Source-compatible with criterion's macro of the same
/// name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main()` invoking each group. Source-compatible with
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        group.warm_up_time(Duration::from_millis(1));
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("f", "p"), &5u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        assert!(runs > 0);
    }
}
