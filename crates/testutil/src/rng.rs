//! Deterministic PRNG for property tests.
//!
//! splitmix64 seeding + xorshift64* stepping: tiny, fast, and good
//! enough to shake out structural bugs in parsers and graph algorithms.
//! Not cryptographic, not for statistics.

/// Deterministic pseudo-random generator. Same seed → same stream, on
/// every platform.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed the generator. Any seed is fine, including 0.
    pub fn new(seed: u64) -> Self {
        // splitmix64 of the seed avoids weak low-entropy starting states.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "Rng::below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform in `[lo, hi)` (half-open, like `proptest` ranges).
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi);
        lo + (self.next_u64() % u64::from(hi - lo)) as u32
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Weighted pick: returns the index of the chosen weight. Mirrors
    /// `prop_oneof![w1 => ..., w2 => ...]`.
    pub fn pick_weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        assert!(total > 0, "all weights zero");
        let mut roll = self.next_u64() % total;
        for (i, &w) in weights.iter().enumerate() {
            if roll < u64::from(w) {
                return i;
            }
            roll -= u64::from(w);
        }
        unreachable!()
    }
}

/// Property-test case budget: `default` scaled by the
/// `PARCOACH_PROP_BUDGET` environment multiplier (a positive integer;
/// unset, `1`, or unparsable means the default). The pooled simulators
/// make larger budgets affordable: `PARCOACH_PROP_BUDGET=4` raises the
/// dom/lang suites from 64/512 to 256/2048 cases, as CI's extended
/// matrix does.
pub fn case_budget(default: u64) -> u64 {
    let mult = std::env::var("PARCOACH_PROP_BUDGET")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&m| m >= 1)
        .unwrap_or(1);
    default.saturating_mul(mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_defaults_without_env() {
        // The suite does not set the variable; the default passes
        // through. (Multiplication is covered by the arithmetic.)
        assert_eq!(case_budget(64), 64 * case_budget(1));
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.range_u32(3, 17);
            assert!((3..17).contains(&v));
            let w = r.range_i64(-5, 5);
            assert!((-5..5).contains(&w));
            assert!(r.below(9) < 9);
        }
    }

    #[test]
    fn weighted_pick_hits_every_bucket() {
        let mut r = Rng::new(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.pick_weighted(&[1, 2, 3])] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }
}
