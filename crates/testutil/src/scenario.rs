//! Structured scenario generator for differential fuzzing.
//!
//! [`Scenario::generate`] builds a seeded random MiniHPC program over
//! the **full scenario grammar** the analyses cover: collectives
//! (uniform, divergent, balanced, looped), communicator `split`/`dup`,
//! blocking and non-blocking point-to-point (`MPI_Isend`/`MPI_Irecv`/
//! `MPI_Wait`/`MPI_Waitall`), `MPI_ANY_SOURCE`/`MPI_ANY_TAG` wildcards,
//! thread regions (`parallel`, `single`, `master`, `sections`, `pfor`,
//! `nowait`) and `MPI_Init_thread` levels, plus interprocedural calls
//! into generated helper functions.
//!
//! Unlike the correct-by-construction generators in
//! `tests/properties.rs`, these programs are **deliberately allowed to
//! be erroneous** — each statement kind is either a known-correct
//! pattern, a known error pattern, a known static false positive, or a
//! known static blind spot. The differential oracle
//! (`crates/fuzz`) runs the static phases and the instrumented
//! simulator on each and diffs the verdicts.
//!
//! Two properties matter and are pinned by tests in `crates/fuzz`:
//!
//! 1. **Validity** — every generated program parses, type-checks,
//!    lowers and passes IR verification (an invalid program is a
//!    generator bug, never a "disagreement").
//! 2. **Dynamic determinism** — the grammar is *biased away* from the
//!    catalogue's schedule-dependent (`MayFail`) combinations: no
//!    nested parallelism, `single`-wrapped MPI only at
//!    `SERIALIZED`/`MULTIPLE`, `master`-wrapped only at `FUNNELED` and
//!    above, and whole-team point-to-point only at `MULTIPLE`. The
//!    remaining error patterns fail (or stay clean) on every schedule,
//!    so one seed maps to one summary.
//!
//! The scenario keeps its statement structure ([`Scenario::helpers`],
//! [`Scenario::main_stmts`]) so the delta-debugging minimizer can drop
//! statements and re-render without re-parsing source text.

use crate::rng::Rng;

/// The `MPI_Init` variant a scenario starts with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitLevel {
    /// `MPI_Init()` — thread level defaults to SINGLE.
    Plain,
    /// `MPI_Init_thread(FUNNELED)`.
    Funneled,
    /// `MPI_Init_thread(SERIALIZED)`.
    Serialized,
    /// `MPI_Init_thread(MULTIPLE)`.
    Multiple,
}

impl InitLevel {
    /// The init statement this level renders to.
    pub fn stmt(self) -> &'static str {
        match self {
            InitLevel::Plain => "MPI_Init();",
            InitLevel::Funneled => "MPI_Init_thread(FUNNELED);",
            InitLevel::Serialized => "MPI_Init_thread(SERIALIZED);",
            InitLevel::Multiple => "MPI_Init_thread(MULTIPLE);",
        }
    }

    fn at_least_serialized(self) -> bool {
        matches!(self, InitLevel::Serialized | InitLevel::Multiple)
    }

    fn at_least_funneled(self) -> bool {
        !matches!(self, InitLevel::Plain)
    }
}

/// One generated helper function (body statements only; the prologue is
/// rendered by [`Scenario::render`]).
#[derive(Debug, Clone)]
pub struct GenFunc {
    /// Function name (`work_0`, `work_1`, …).
    pub name: String,
    /// Self-contained body statements.
    pub stmts: Vec<String>,
}

/// A generated fuzzing scenario: structure preserved for minimization.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The seed that produced it (reproduction handle).
    pub seed: u64,
    /// `MPI_Init` variant.
    pub level: InitLevel,
    /// Helper functions, in definition order.
    pub helpers: Vec<GenFunc>,
    /// Statements of `main`, between init and finalize.
    pub main_stmts: Vec<String>,
}

/// Size knobs for the generator.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Maximum helper functions (0..=max).
    pub max_helpers: usize,
    /// Statements in `main` (1..=max).
    pub max_main_stmts: usize,
    /// Statements per helper (1..=max).
    pub max_helper_stmts: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            max_helpers: 2,
            max_main_stmts: 5,
            max_helper_stmts: 2,
        }
    }
}

/// Where a statement will live (some constructs are `main`-only).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Host {
    Main,
    Helper,
}

impl Scenario {
    /// Generate the scenario for a seed with default sizes.
    pub fn generate(seed: u64) -> Scenario {
        Scenario::generate_with(seed, &ScenarioConfig::default())
    }

    /// Generate with explicit size knobs.
    pub fn generate_with(seed: u64, cfg: &ScenarioConfig) -> Scenario {
        let mut rng = Rng::new(seed);
        let level = *rng.pick(&[
            InitLevel::Plain,
            InitLevel::Funneled,
            InitLevel::Serialized,
            InitLevel::Multiple,
            // Bias towards the levels that legalize the most grammar.
            InitLevel::Serialized,
            InitLevel::Multiple,
        ]);
        let mut fresh = 0u32;
        let nhelpers = rng.below(cfg.max_helpers + 1);
        let mut helpers = Vec::new();
        for h in 0..nhelpers {
            let n = rng.range_usize(1, cfg.max_helper_stmts + 1);
            let stmts = (0..n)
                .map(|_| gen_stmt(&mut rng, Host::Helper, level, &mut fresh, &[]))
                .collect();
            helpers.push(GenFunc {
                name: format!("work_{h}"),
                stmts,
            });
        }
        let names: Vec<String> = helpers.iter().map(|h| h.name.clone()).collect();
        let n = rng.range_usize(1, cfg.max_main_stmts + 1);
        let main_stmts = (0..n)
            .map(|_| gen_stmt(&mut rng, Host::Main, level, &mut fresh, &names))
            .collect();
        Scenario {
            seed,
            level,
            helpers,
            main_stmts,
        }
    }

    /// Total removable statements (the minimizer's progress metric).
    pub fn stmt_count(&self) -> usize {
        self.main_stmts.len() + self.helpers.iter().map(|h| h.stmts.len()).sum::<usize>()
    }

    /// Render to MiniHPC source. Init, the prologue (`acc`, `peer`) and
    /// finalize are structural — the minimizer never removes them.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for h in &self.helpers {
            out.push_str(&format!("fn {}() {{\n", h.name));
            out.push_str("    let acc = 1;\n");
            out.push_str("    let peer = size() - 1 - rank();\n");
            for s in &h.stmts {
                out.push_str(&format!("    {s}\n"));
            }
            out.push_str("}\n");
        }
        out.push_str("fn main() {\n");
        out.push_str(&format!("    {}\n", self.level.stmt()));
        out.push_str("    let acc = 1;\n");
        out.push_str("    let peer = size() - 1 - rank();\n");
        for s in &self.main_stmts {
            out.push_str(&format!("    {s}\n"));
        }
        out.push_str("    print(acc);\n");
        out.push_str("    MPI_Finalize();\n");
        out.push_str("}\n");
        out
    }
}

/// A fresh suffix for register names, unique across the whole program.
fn next(fresh: &mut u32) -> u32 {
    *fresh += 1;
    *fresh
}

/// A tag from a deliberately small range, so independent statements
/// sometimes collide on (comm, tag) keys — the interesting cases.
fn tag(rng: &mut Rng) -> i64 {
    rng.range_i64(1, 6)
}

fn gen_stmt(
    rng: &mut Rng,
    host: Host,
    level: InitLevel,
    fresh: &mut u32,
    helpers: &[String],
) -> String {
    // Weighted family pick: compute, collective, control-flow around
    // collectives, communicators, blocking p2p, non-blocking p2p,
    // thread regions (main only), helper calls (main only).
    let mut families: Vec<(u32, u32)> = vec![
        (0, 2), // compute
        (1, 3), // uniform collective
        (2, 3), // control-flow collective
        (3, 2), // communicator
        (4, 3), // blocking p2p
        (5, 3), // non-blocking p2p
    ];
    if host == Host::Main {
        families.push((6, 3)); // thread region
        families.push((7, 1)); // early return
        if !helpers.is_empty() {
            families.push((8, 2)); // helper call
        }
    }
    let weights: Vec<u32> = families.iter().map(|&(_, w)| w).collect();
    let family = families[rng.pick_weighted(&weights)].0;
    match family {
        0 => compute_stmt(rng, fresh),
        1 => uniform_collective(rng, fresh),
        2 => control_flow_collective(rng, fresh),
        3 => communicator_stmt(rng, fresh),
        4 => blocking_p2p(rng, fresh),
        5 => nonblocking_p2p(rng, fresh),
        6 => thread_region(rng, level, fresh),
        7 => "if (rank() == size() - 1) { return; }".to_string(),
        _ => helper_call(rng, level, helpers),
    }
}

/// Plain computation — noise the minimizer should strip away.
fn compute_stmt(rng: &mut Rng, fresh: &mut u32) -> String {
    match rng.below(3) {
        0 => format!("acc = acc * {} % 997;", rng.range_i64(2, 5)),
        1 => {
            let f = next(fresh);
            let n = rng.range_i64(2, 5);
            format!("for (i{f} in 0..{n}) {{ acc = acc + i{f}; }}")
        }
        _ => {
            let f = next(fresh);
            format!("let x{f} = float_of(acc) * 0.5; acc = acc + int_of(x{f}) % 7;")
        }
    }
}

/// A collective executed uniformly by every rank (correct).
fn uniform_collective(rng: &mut Rng, fresh: &mut u32) -> String {
    let f = next(fresh);
    match rng.below(4) {
        0 => "MPI_Barrier();".to_string(),
        1 => format!("let a{f} = MPI_Allreduce(1.0, SUM); acc = acc + int_of(a{f});"),
        2 => format!("let b{f} = MPI_Bcast(float_of(acc % 7), 0);"),
        _ => format!("let r{f} = MPI_Reduce(float_of(acc), MAX, 0);"),
    }
}

/// Collectives under control flow: true mismatches, static false
/// positives (rank-uniform conditions) and clean balanced arms.
fn control_flow_collective(rng: &mut Rng, fresh: &mut u32) -> String {
    let f = next(fresh);
    match rng.below(6) {
        // Rank-divergent: a real mismatch.
        0 => "if (rank() == 0) { MPI_Barrier(); }".to_string(),
        // Different collectives on the two arms: a real mismatch.
        1 => format!(
            "if (rank() % 2 == 0) {{ MPI_Barrier(); }} \
             else {{ let m{f} = MPI_Allreduce(1, SUM); }}"
        ),
        // Balanced arms: refinement keeps this quiet, runs clean.
        2 => "if (rank() % 2 == 0) { MPI_Barrier(); } else { MPI_Barrier(); }".to_string(),
        // Rank-uniform condition: the classic static false positive.
        3 => "if (size() > 0) { MPI_Barrier(); }".to_string(),
        // Uniform loop bound: static false positive, dynamically clean.
        4 => format!("for (i{f} in 0..3) {{ let u{f} = MPI_Allreduce(i{f}, SUM); }}"),
        // Rank-dependent trip count: a real mismatch.
        _ => format!("let n{f} = 1 + rank(); for (i{f} in 0..n{f}) {{ MPI_Barrier(); }}"),
    }
}

/// Communicator management plus per-communicator collectives.
fn communicator_stmt(rng: &mut Rng, fresh: &mut u32) -> String {
    let f = next(fresh);
    match rng.below(4) {
        // Dup + collective on it: correct.
        0 => format!("let c{f} = MPI_Comm_dup(MPI_COMM_WORLD); MPI_Barrier(c{f});"),
        // Parity split + collective on the halves: correct.
        1 => format!(
            "let c{f} = MPI_Comm_split(MPI_COMM_WORLD, rank() % 2, rank()); \
             let s{f} = MPI_Allreduce(rank() + 1, SUM, c{f});"
        ),
        // Split used by a subset of its members: a real mismatch.
        2 => format!(
            "let c{f} = MPI_Comm_split(MPI_COMM_WORLD, 0, rank()); \
             if (rank() == 0) {{ MPI_Barrier(c{f}); }}"
        ),
        // Different communicators on the two arms: a real mismatch.
        _ => format!(
            "let c{f} = MPI_Comm_dup(MPI_COMM_WORLD); \
             if (rank() % 2 == 0) {{ MPI_Barrier(c{f}); }} else {{ MPI_Barrier(); }}"
        ),
    }
}

/// Blocking point-to-point: matched pairs, deadlocks, leaks, and the
/// self-pinned receive the static key-based matcher cannot see.
fn blocking_p2p(rng: &mut Rng, fresh: &mut u32) -> String {
    let f = next(fresh);
    let t = tag(rng);
    match rng.below(7) {
        // Eager send then receive: correct under the buffered model.
        0 => format!(
            "MPI_Send(acc, peer, {t}); let v{f} = MPI_Recv(peer, {t}); \
             acc = acc + int_of(v{f}) % 5;"
        ),
        // Head-to-head receive-then-send: genuine deadlock.
        1 => format!("let v{f} = MPI_Recv(peer, {t}); MPI_Send(acc, peer, {t});"),
        // Send tag != recv tag: unmatched traffic.
        2 => format!(
            "MPI_Send(1.5, peer, {t}); let v{f} = MPI_Recv(peer, {});",
            t + 10
        ),
        // A send nothing ever receives (latent; census-caught).
        3 => format!("MPI_Send(42, peer, {});", t + 20),
        // A receive nothing ever sends: deadlock.
        4 => format!("let v{f} = MPI_Recv(peer, {});", t + 30),
        // Receive pinned to self while the send goes cross-rank: the
        // (comm, tag) keys match statically, the run deadlocks — a
        // static blind spot (false-negative candidate).
        5 => format!("MPI_Send(acc, peer, {t}); let v{f} = MPI_Recv(rank(), {t});"),
        // Rank-ordered ping-pong: correct.
        _ => format!(
            "if (rank() == 0) {{ MPI_Send(1.0, peer, {t}); let v{f} = MPI_Recv(peer, {t}); }} \
             else {{ let w{f} = MPI_Recv(peer, {t}); MPI_Send(2.0, peer, {t}); }}"
        ),
    }
}

/// Non-blocking point-to-point with wildcards.
fn nonblocking_p2p(rng: &mut Rng, fresh: &mut u32) -> String {
    let f = next(fresh);
    let t = tag(rng);
    match rng.below(8) {
        // Post, send, wait: the correct overlap pattern.
        0 => format!(
            "let r{f} = MPI_Irecv(peer, {t}); MPI_Send(1.0, peer, {t}); \
             let v{f} = MPI_Wait(r{f});"
        ),
        // Wait before the matching send: genuine wait cycle.
        1 => format!(
            "let r{f} = MPI_Irecv(peer, {t}); let v{f} = MPI_Wait(r{f}); \
             MPI_Send(1.0, peer, {t});"
        ),
        // Isend whose request is never completed: leak.
        2 => format!("let s{f} = MPI_Isend(acc, peer, {});", t + 20),
        // Four-request waitall exchange: correct.
        3 => format!(
            "let r{f} = MPI_Irecv(peer, {t}); let q{f} = MPI_Irecv(peer, {});\n    \
             let s{f} = MPI_Isend(10 + rank(), peer, {t}); \
             let u{f} = MPI_Isend(20 + rank(), peer, {});\n    \
             MPI_Waitall(r{f}, q{f}, s{f}, u{f});",
            t + 10,
            t + 10
        ),
        // Waitall over receives posted before any send: wait cycle
        // across two communicators.
        4 => format!(
            "let c{f} = MPI_Comm_dup(MPI_COMM_WORLD); \
             let r{f} = MPI_Irecv(peer, {t}); let q{f} = MPI_Irecv(peer, {t}, c{f});\n    \
             MPI_Waitall(r{f}, q{f}); \
             MPI_Send(1.0, peer, {t}); MPI_Send(2.0, peer, {t}, c{f});"
        ),
        // Wildcard collector: correct from any source.
        5 => format!(
            "if (rank() == 0) {{ let r{f} = MPI_Irecv(MPI_ANY_SOURCE, {t}); \
             let v{f} = MPI_Wait(r{f}); }} else {{ MPI_Send(1.5, 0, {t}); }}"
        ),
        // Collector pinned to the wrong source: statically the keys
        // match, dynamically a wait-for self-loop (false-negative
        // candidate — the `wildcard-pinned-deadlock` family).
        6 => format!(
            "if (rank() == 0) {{ let r{f} = MPI_Irecv(0, {t}); \
             let v{f} = MPI_Wait(r{f}); }} else {{ MPI_Send(1.5, 0, {t}); }}"
        ),
        // Fully wildcarded receive on a duplicated communicator: its
        // matching space is isolated, correct.
        _ => format!(
            "let c{f} = MPI_Comm_dup(MPI_COMM_WORLD); \
             let r{f} = MPI_Irecv(MPI_ANY_SOURCE, MPI_ANY_TAG, c{f});\n    \
             let s{f} = MPI_Isend(rank() + 1, peer, {t}, c{f}); \
             MPI_Barrier(); MPI_Waitall(r{f}, s{f});"
        ),
    }
}

/// Thread regions (`main` only; never nested). Constructs whose dynamic
/// outcome is schedule-dependent at the scenario's thread level are not
/// generated — see the module docs.
fn thread_region(rng: &mut Rng, level: InitLevel, fresh: &mut u32) -> String {
    let f = next(fresh);
    let t = tag(rng);
    // Choices legal at every level: whole-team collective and pfor
    // collective (both fail deterministically via the monothread
    // assert) — plus compute-only regions.
    let mut choices: Vec<u32> = vec![0, 1, 2];
    if level.at_least_funneled() {
        choices.push(3); // master-wrapped collective
    }
    if level.at_least_serialized() {
        choices.extend([4, 5, 6, 7]); // single-wrapped patterns
    }
    if level == InitLevel::Multiple {
        choices.extend([8, 9, 10]); // THREAD_MULTIPLE-correct patterns
    }
    match *rng.pick(&choices) {
        // Compute-only region: correct.
        0 => {
            format!("parallel num_threads(2) {{ pfor (j{f} in 0..8) {{ let w{f} = j{f} * 2; }} }}")
        }
        // Whole-team collective: error (monothread assert).
        1 => "parallel num_threads(2) { MPI_Barrier(); }".to_string(),
        // Collective in a worksharing loop: error.
        2 => format!(
            "parallel num_threads(2) {{ pfor (j{f} in 0..4) {{ \
             let w{f} = MPI_Allreduce(j{f}, SUM); }} }}"
        ),
        // Master-wrapped collective + team barrier: correct (FUNNELED+).
        3 => format!(
            "parallel num_threads(2) {{ master {{ let m{f} = MPI_Allreduce(1, SUM); }} \
             barrier; }}"
        ),
        // Single-wrapped collective: correct (SERIALIZED+).
        4 => "parallel num_threads(2) { single { MPI_Barrier(); } }".to_string(),
        // Two ordered singles: correct.
        5 => format!(
            "parallel num_threads(2) {{ single {{ MPI_Barrier(); }} \
             single {{ let o{f} = MPI_Allreduce(1, SUM); }} }}"
        ),
        // Two nowait singles: concurrent collective regions, error.
        6 => format!(
            "parallel num_threads(4) {{ single nowait {{ MPI_Barrier(); }} \
             single nowait {{ let n{f} = MPI_Allreduce(1, SUM); }} barrier; }}"
        ),
        // Nowait single inside a loop: self-concurrent, error.
        7 => format!(
            "parallel num_threads(4) {{ for (k{f} in 0..3) {{ \
             single nowait {{ let l{f} = MPI_Allreduce(k{f}, SUM); }} }} barrier; }}"
        ),
        // Sibling sections send/receive: MULTIPLE-correct.
        8 => format!(
            "parallel num_threads(2) {{ sections {{ \
             section {{ MPI_Send(3.5, peer, {t}); }} \
             section {{ let v{f} = MPI_Recv(peer, {t}); }} }} }}"
        ),
        // Concurrent collectives on unrelated comms: MULTIPLE-correct.
        9 => format!(
            "let c{f} = MPI_Comm_dup(MPI_COMM_WORLD); \
             parallel num_threads(2) {{ sections {{ \
             section {{ MPI_Barrier(); }} section {{ MPI_Barrier(c{f}); }} }} }}"
        ),
        // Whole-team sends drained afterwards: MULTIPLE-correct.
        _ => format!(
            "parallel num_threads(2) {{ MPI_Send(thread_num(), peer, {t}); }} \
             let a{f} = MPI_Recv(peer, {t}); let b{f} = MPI_Recv(peer, {t});"
        ),
    }
}

/// Call a generated helper, possibly from a divergent or threaded
/// context.
fn helper_call(rng: &mut Rng, level: InitLevel, helpers: &[String]) -> String {
    let name = rng.pick(helpers).clone();
    let mut choices: Vec<u32> = vec![0, 1];
    if level.at_least_serialized() {
        choices.push(2); // single-wrapped call
    }
    if level == InitLevel::Multiple {
        choices.push(3); // whole-team call
    }
    match *rng.pick(&choices) {
        // Uniform call: inherits the helper's behavior.
        0 => format!("{name}();"),
        // Divergent call: mismatch if the helper bears collectives.
        1 => format!("if (rank() == 0) {{ {name}(); }}"),
        // Correctly monothreaded call.
        2 => format!("parallel num_threads(2) {{ single {{ {name}(); }} }}"),
        // Whole-team call: multithreaded-call if collective-bearing.
        _ => format!("parallel num_threads(2) {{ {name}(); }}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..50 {
            let a = Scenario::generate(seed).render();
            let b = Scenario::generate(seed).render();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn renders_are_structured() {
        for seed in 0..50 {
            let sc = Scenario::generate(seed);
            let src = sc.render();
            assert!(src.contains("fn main()"), "seed {seed}");
            assert!(src.contains("MPI_Init"), "seed {seed}");
            assert!(src.contains("MPI_Finalize();"), "seed {seed}");
            assert!(sc.stmt_count() >= 1, "seed {seed}");
            for h in &sc.helpers {
                assert!(src.contains(&format!("fn {}()", h.name)), "seed {seed}");
            }
        }
    }

    #[test]
    fn seeds_cover_every_level() {
        let mut seen = [false; 4];
        for seed in 0..200 {
            seen[match Scenario::generate(seed).level {
                InitLevel::Plain => 0,
                InitLevel::Funneled => 1,
                InitLevel::Serialized => 2,
                InitLevel::Multiple => 3,
            }] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn restricted_constructs_respect_levels() {
        for seed in 0..300 {
            let sc = Scenario::generate(seed);
            let src = sc.render();
            if !matches!(sc.level, InitLevel::Serialized | InitLevel::Multiple) {
                assert!(!src.contains("single"), "seed {seed}:\n{src}");
            }
            if sc.level == InitLevel::Plain {
                assert!(!src.contains("master"), "seed {seed}:\n{src}");
            }
            if sc.level != InitLevel::Multiple {
                assert!(!src.contains("sections"), "seed {seed}:\n{src}");
            }
            // Never nested parallelism.
            for line in src.lines() {
                assert!(
                    line.matches("parallel ").count() <= 1,
                    "seed {seed}: {line}"
                );
            }
        }
    }
}
