//! # parcoach-testutil — dependency-free test & bench support
//!
//! The container this repo builds in has no crates.io access, so the
//! property tests and benchmarks that a typical workspace would write
//! against `proptest`/`criterion` are written against this crate
//! instead:
//!
//! * [`rng`] — a deterministic splitmix64/xoshiro-style PRNG plus the
//!   tiny combinators the ported property tests need (ranges, choices,
//!   weighted picks). Each test owns its seed, so failures reproduce by
//!   re-running the test — no shrinking, but the generators are kept
//!   small enough that raw counterexamples are readable.
//! * [`mod@bench`] — a micro-harness exposing the subset of the criterion
//!   API the `parcoach-bench` benches use (`Criterion`,
//!   `benchmark_group`, `bench_with_input`, `BenchmarkId`,
//!   `criterion_group!`, `criterion_main!`). `parcoach-bench` depends on
//!   this crate under the rename `criterion`, keeping the bench sources
//!   source-compatible with the real crate. Reports mean/min/max per
//!   benchmark id on stdout.

//! * [`scenario`] — a structured generator over the full MiniHPC
//!   scenario grammar (collectives × communicators × non-blocking p2p ×
//!   wildcards × thread regions/levels) used by the `crates/fuzz`
//!   differential oracle. Unlike the property-test generators, its
//!   programs may be erroneous on purpose; it guarantees validity
//!   (parse/lower/verify) and schedule-deterministic outcomes instead.

pub mod bench;
pub mod rng;
pub mod scenario;

pub use bench::{Bencher, BenchmarkGroup, BenchmarkId, Criterion};
pub use rng::{case_budget, Rng};
pub use scenario::{GenFunc, InitLevel, Scenario, ScenarioConfig};
