//! Campaign driver: rounds of generated modules through the oracle,
//! sharded over the pool in-process (and over worker processes by the
//! bin), with the loop-until-dry stopping criterion.

use crate::classify::{classify, is_disagreement};
use crate::oracle::{observe, OracleConfig, OracleOutcome};
use parcoach_pool::Pool;
use parcoach_testutil::Scenario;
use std::collections::BTreeSet;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign seed; module seeds derive from `(seed, index)`.
    pub seed: u64,
    /// Maximum rounds.
    pub rounds: usize,
    /// Modules per round (the dry-out granularity).
    pub modules_per_round: usize,
    /// Stop after this many consecutive rounds with no new
    /// disagreement class; `0` disables early stopping.
    pub dry_rounds: usize,
    /// Process sharding: `(shard_index, shard_count)` keeps only module
    /// indices with `index % shard_count == shard_index`. The parent
    /// merges records by index, so sharding never changes results.
    pub shard: Option<(usize, usize)>,
    /// Oracle knobs.
    pub oracle: OracleConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 42,
            rounds: 5,
            modules_per_round: 40,
            dry_rounds: 3,
            shard: None,
            oracle: OracleConfig::default(),
        }
    }
}

/// One module's differential record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleRecord {
    /// Global module index (`round * modules_per_round + position`).
    pub index: u64,
    /// Derived generator seed — the reproduction handle.
    pub seed: u64,
    /// Round this module belongs to.
    pub round: usize,
    /// Polarity name, or `invalid` for generator bugs.
    pub polarity: String,
    /// Class keys ([`crate::classify::classify`]); empty when invalid.
    pub class_keys: Vec<String>,
    /// Sorted static warning codes.
    pub static_codes: Vec<String>,
    /// Sorted dynamic error codes (`hang` for a watchdog kill).
    pub dyn_codes: Vec<String>,
    /// Compile diagnostics when the module was invalid.
    pub invalid: Option<String>,
}

/// Mix a campaign seed and a module index into a generator seed.
/// Depends on nothing else — not jobs, not shards, not the round count
/// — which is what makes every execution layout equivalent and smaller
/// campaigns strict prefixes of larger ones.
pub fn module_seed(campaign_seed: u64, index: u64) -> u64 {
    let mut z = campaign_seed
        .rotate_left(17)
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generate, observe and classify one module.
pub fn evaluate_module(cfg: &CampaignConfig, index: u64, round: usize) -> ModuleRecord {
    let seed = module_seed(cfg.seed, index);
    let src = Scenario::generate(seed).render();
    match observe(&format!("fuzz_{index}.mh"), &src, &cfg.oracle) {
        OracleOutcome::Valid(obs) => {
            let c = classify(&obs);
            ModuleRecord {
                index,
                seed,
                round,
                polarity: c.polarity.name().to_string(),
                class_keys: c.class_keys,
                static_codes: obs.static_codes,
                dyn_codes: obs.dyn_codes,
                invalid: None,
            }
        }
        OracleOutcome::Invalid(diag) => ModuleRecord {
            index,
            seed,
            round,
            polarity: "invalid".to_string(),
            class_keys: Vec::new(),
            static_codes: Vec::new(),
            dyn_codes: Vec::new(),
            invalid: Some(diag),
        },
    }
}

/// Dry-out bookkeeping: the set of disagreement classes seen so far and
/// the streak of rounds that added nothing. Shared between the
/// in-process loop and the post-hoc merge of worker records so both
/// stop at the same round.
#[derive(Debug, Default)]
pub struct DryTracker {
    seen: BTreeSet<String>,
    streak: usize,
}

impl DryTracker {
    /// Fresh tracker.
    pub fn new() -> DryTracker {
        DryTracker::default()
    }

    /// Fold one round's class keys; returns `true` if the round
    /// surfaced a new disagreement class.
    pub fn observe_round<'a>(&mut self, keys: impl Iterator<Item = &'a String>) -> bool {
        let mut any_new = false;
        for k in keys {
            if is_disagreement(k) && self.seen.insert(k.clone()) {
                any_new = true;
            }
        }
        if any_new {
            self.streak = 0;
        } else {
            self.streak += 1;
        }
        any_new
    }

    /// Has the campaign gone `dry_rounds` rounds without news?
    pub fn is_dry(&self, dry_rounds: usize) -> bool {
        dry_rounds > 0 && self.streak >= dry_rounds
    }

    /// Disagreement classes seen so far.
    pub fn seen(&self) -> &BTreeSet<String> {
        &self.seen
    }
}

/// Campaign outcome: records in module-index order plus how it stopped.
#[derive(Debug)]
pub struct CampaignResult {
    /// Records of every evaluated module, ascending index.
    pub records: Vec<ModuleRecord>,
    /// Rounds actually executed.
    pub rounds_run: usize,
    /// Whether the dry-out criterion (rather than the round budget)
    /// ended the campaign.
    pub dried_out: bool,
}

/// The module indices of one round, after shard filtering.
fn round_indices(cfg: &CampaignConfig, round: usize) -> Vec<u64> {
    let lo = (round * cfg.modules_per_round) as u64;
    (lo..lo + cfg.modules_per_round as u64)
        .filter(|i| match cfg.shard {
            Some((k, n)) => (*i as usize) % n == k,
            None => true,
        })
        .collect()
}

/// Run a campaign on `pool` (in-process sharding: the round's modules
/// fan out over `par_map`, whose results keep index order). `progress`
/// is called once per completed round.
pub fn run_campaign(
    cfg: &CampaignConfig,
    pool: &Pool,
    mut progress: impl FnMut(usize, &[ModuleRecord], &DryTracker),
) -> CampaignResult {
    let mut tracker = DryTracker::new();
    let mut records = Vec::new();
    let mut rounds_run = 0;
    let mut dried_out = false;
    for round in 0..cfg.rounds {
        let indices = round_indices(cfg, round);
        let batch = pool.par_map(&indices, |&i| evaluate_module(cfg, i, round));
        tracker.observe_round(batch.iter().flat_map(|m| m.class_keys.iter()));
        rounds_run = round + 1;
        progress(round, &batch, &tracker);
        records.extend(batch);
        if tracker.is_dry(cfg.dry_rounds) {
            dried_out = true;
            break;
        }
    }
    CampaignResult {
        records,
        rounds_run,
        dried_out,
    }
}

/// Re-apply the dry-out criterion to merged records (the worker-process
/// path: each worker runs its shard over the full round budget, the
/// parent merges by index and truncates where the in-process loop would
/// have stopped). `records` must be sorted by index.
pub fn apply_dry(records: Vec<ModuleRecord>, rounds: usize, dry_rounds: usize) -> CampaignResult {
    let mut tracker = DryTracker::new();
    let mut kept = Vec::new();
    let mut rounds_run = 0;
    let mut dried_out = false;
    let mut it = records.into_iter().peekable();
    for round in 0..rounds {
        let mut batch = Vec::new();
        while it.peek().is_some_and(|r| r.round == round) {
            batch.push(it.next().unwrap());
        }
        if batch.is_empty() && it.peek().is_none() && round > 0 {
            break;
        }
        tracker.observe_round(batch.iter().flat_map(|m| m.class_keys.iter()));
        rounds_run = round + 1;
        kept.extend(batch);
        if tracker.is_dry(dry_rounds) {
            dried_out = true;
            break;
        }
    }
    CampaignResult {
        records: kept,
        rounds_run,
        dried_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_seed_ignores_layout() {
        // Only (campaign seed, index) matter.
        assert_eq!(module_seed(42, 17), module_seed(42, 17));
        assert_ne!(module_seed(42, 17), module_seed(42, 18));
        assert_ne!(module_seed(42, 17), module_seed(43, 17));
    }

    #[test]
    fn shards_partition_each_round() {
        let mut cfg = CampaignConfig {
            modules_per_round: 10,
            ..CampaignConfig::default()
        };
        let full = round_indices(&cfg, 3);
        let mut merged = Vec::new();
        for k in 0..3 {
            cfg.shard = Some((k, 3));
            merged.extend(round_indices(&cfg, 3));
        }
        merged.sort_unstable();
        assert_eq!(full, merged);
    }

    #[test]
    fn dry_tracker_counts_consecutive_quiet_rounds() {
        let mut t = DryTracker::new();
        let keys = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(t.observe_round(keys(&["static-only:x", "agreed-clean"]).iter()));
        assert!(!t.observe_round(keys(&["static-only:x"]).iter()));
        assert!(!t.observe_round(keys(&["agreed-clean"]).iter()));
        assert!(t.is_dry(2));
        assert!(!t.is_dry(3));
        // A new class resets the streak.
        assert!(t.observe_round(keys(&["dynamic-only:deadlock"]).iter()));
        assert!(!t.is_dry(2));
    }
}
