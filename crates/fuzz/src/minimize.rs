//! Delta-debugging minimizer: shrink a disagreeing scenario to a
//! minimal reproducer of its class key.
//!
//! The generator keeps scenarios structured ([`Scenario::helpers`] /
//! [`Scenario::main_stmts`]), so minimization works on whole
//! statements: greedily drop each one (last first, so consumers go
//! before producers), keep the removal iff the oracle still reports the
//! target class, and repeat to a fixpoint; a final pass drops helper
//! functions no remaining statement calls. Statement removals that
//! break compilation are rejected by the same predicate (an invalid
//! module never classifies), so the minimizer needs no name tracking.

use crate::classify::classify;
use crate::oracle::{observe, OracleConfig, OracleOutcome};
use parcoach_testutil::Scenario;

/// Does the scenario still exhibit `target_key`?
fn reproduces(sc: &Scenario, target_key: &str, oracle: &OracleConfig, runs: &mut usize) -> bool {
    *runs += 1;
    match observe("minimize.mh", &sc.render(), oracle) {
        OracleOutcome::Valid(obs) => classify(&obs).class_keys.iter().any(|k| k == target_key),
        OracleOutcome::Invalid(_) => false,
    }
}

/// Minimize `sc` while preserving `target_key`. Returns the shrunk
/// scenario and the number of oracle runs spent.
pub fn minimize(sc: &Scenario, target_key: &str, oracle: &OracleConfig) -> (Scenario, usize) {
    let mut cur = sc.clone();
    let mut runs = 0;
    debug_assert!(reproduces(&cur, target_key, oracle, &mut runs));
    loop {
        let mut changed = false;
        // Main statements, last first.
        let mut i = cur.main_stmts.len();
        while i > 0 {
            i -= 1;
            let mut cand = cur.clone();
            cand.main_stmts.remove(i);
            if reproduces(&cand, target_key, oracle, &mut runs) {
                cur = cand;
                changed = true;
            }
        }
        // Helper statements, last first per helper.
        for h in 0..cur.helpers.len() {
            let mut i = cur.helpers[h].stmts.len();
            while i > 0 {
                i -= 1;
                let mut cand = cur.clone();
                cand.helpers[h].stmts.remove(i);
                if reproduces(&cand, target_key, oracle, &mut runs) {
                    cur = cand;
                    changed = true;
                }
            }
        }
        // Whole helpers (uncalled ones shrink the rendering; called
        // ones only go if the class survives without them).
        let mut h = cur.helpers.len();
        while h > 0 {
            h -= 1;
            let mut cand = cur.clone();
            cand.helpers.remove(h);
            if reproduces(&cand, target_key, oracle, &mut runs) {
                cur = cand;
                changed = true;
            }
        }
        if !changed {
            return (cur, runs);
        }
    }
}
