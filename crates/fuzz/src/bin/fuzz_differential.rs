//! Differential fuzzing campaign driver (experiment E11).
//!
//! Generates seeded random MiniHPC scenarios, runs static phases and
//! the instrumented simulator on each, diffs the verdicts into
//! disagreement classes, loops until the campaign runs dry, and
//! optionally delta-minimizes one exemplar per disagreement class.
//!
//! ```text
//! fuzz_differential [--seed S] [--rounds N] [--modules M] [--dry K]
//!                   [--jobs J] [--workers W | --shard I/N]
//!                   [--legacy-fixpoint] [--no-module-memo]
//!                   [--legacy-world-lock]
//!                   [--minimize] [--corpus-out DIR]
//!                   [--summary-out FILE] [--records-out FILE]
//!                   [--expected FILE] [--quiet]
//! ```
//!
//! `--legacy-fixpoint` runs the static side with the legacy full-re-walk
//! context driver instead of the incremental worklist, so CI pins both
//! against the simulator ground truth. `--no-module-memo` likewise
//! disables the fingerprint-keyed module match tables, pinning the
//! direct-recompute path; CI compares the two summaries byte for byte.
//! `--legacy-world-lock` runs the dynamic side on the simulator's legacy
//! single-world-lock engine instead of the sharded matching spaces, so
//! CI pins the sharded engine against its ablation baseline the same
//! way.
//!
//! Deterministic by construction: module seeds derive from
//! `(--seed, module index)` only, so the summary is byte-identical at
//! any `--jobs` width and any `--workers` process count.
//!
//! Exit status: `0` clean; `1` gate failure (a generator-invalid module,
//! or — with `--expected` — a disagreement class missing from the
//! expected file); `2` worker process failure; `3` usage error.

use parcoach_fuzz::summary::{records_from_tsv, records_to_tsv};
use parcoach_fuzz::{apply_dry, minimize, parse_expected, run_campaign, CampaignConfig, Summary};
use parcoach_pool::{Pool, PoolConfig};
use parcoach_testutil::Scenario;
use std::process::ExitCode;

struct Opts {
    cfg: CampaignConfig,
    jobs: Option<usize>,
    workers: usize,
    minimize: bool,
    corpus_out: Option<String>,
    summary_out: Option<String>,
    records_out: Option<String>,
    expected: Option<String>,
    quiet: bool,
}

const USAGE: &str = "usage: fuzz_differential [--seed S] [--rounds N] [--modules M] [--dry K] \
[--jobs J] [--workers W | --shard I/N] [--legacy-fixpoint] [--no-module-memo] \
[--legacy-world-lock] [--minimize] \
[--corpus-out DIR] \
[--summary-out FILE] [--records-out FILE] [--expected FILE] [--quiet]";

fn usage_err(msg: &str) -> ! {
    eprintln!("fuzz_differential: {msg}\n{USAGE}");
    std::process::exit(3);
}

fn parse_num(flag: &str, value: Option<String>) -> u64 {
    let v = value.unwrap_or_else(|| usage_err(&format!("{flag} needs a value")));
    v.parse::<u64>()
        .unwrap_or_else(|_| usage_err(&format!("{flag}: not a number: `{v}`")))
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        cfg: CampaignConfig::default(),
        jobs: None,
        workers: 1,
        minimize: false,
        corpus_out: None,
        summary_out: None,
        records_out: None,
        expected: None,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => opts.cfg.seed = parse_num("--seed", args.next()),
            "--rounds" => {
                opts.cfg.rounds = parse_num("--rounds", args.next()).max(1) as usize;
            }
            "--modules" => {
                opts.cfg.modules_per_round = parse_num("--modules", args.next()).max(1) as usize;
            }
            "--dry" => opts.cfg.dry_rounds = parse_num("--dry", args.next()) as usize,
            "--jobs" => opts.jobs = Some(parse_num("--jobs", args.next()).max(1) as usize),
            "--workers" => opts.workers = parse_num("--workers", args.next()).max(1) as usize,
            "--shard" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage_err("--shard needs I/N"));
                let (i, n) = v
                    .split_once('/')
                    .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
                    .filter(|&(i, n)| n >= 1 && i < n)
                    .unwrap_or_else(|| usage_err(&format!("--shard: bad spec `{v}`")));
                opts.cfg.shard = Some((i, n));
            }
            "--legacy-fixpoint" => opts.cfg.oracle.incr_fixpoint = false,
            "--no-module-memo" => opts.cfg.oracle.module_memo = false,
            "--legacy-world-lock" => opts.cfg.oracle.legacy_world_lock = true,
            "--minimize" => opts.minimize = true,
            "--corpus-out" => {
                opts.corpus_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage_err("--corpus-out needs a dir")),
                );
            }
            "--summary-out" => {
                opts.summary_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage_err("--summary-out needs a file")),
                );
            }
            "--records-out" => {
                opts.records_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage_err("--records-out needs a file")),
                );
            }
            "--expected" => {
                opts.expected = Some(
                    args.next()
                        .unwrap_or_else(|| usage_err("--expected needs a file")),
                );
            }
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_err(&format!("unknown flag `{other}`")),
        }
    }
    if opts.workers > 1 && opts.cfg.shard.is_some() {
        usage_err("--workers and --shard are mutually exclusive");
    }
    opts
}

/// Fan the campaign out over worker processes: each worker runs one
/// shard over the full round budget (dry-out disabled), the parent
/// merges records by module index and re-applies the dry-out criterion
/// — byte-identical to the in-process result.
fn run_workers(opts: &Opts) -> Result<Vec<parcoach_fuzz::ModuleRecord>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let pid = std::process::id();
    let mut children = Vec::new();
    for k in 0..opts.workers {
        let records = std::env::temp_dir().join(format!("parcoach_fuzz_{pid}_{k}.tsv"));
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("--seed")
            .arg(opts.cfg.seed.to_string())
            .arg("--rounds")
            .arg(opts.cfg.rounds.to_string())
            .arg("--modules")
            .arg(opts.cfg.modules_per_round.to_string())
            .arg("--dry")
            .arg("0")
            .arg("--shard")
            .arg(format!("{k}/{}", opts.workers))
            .arg("--records-out")
            .arg(&records)
            .arg("--quiet");
        if !opts.cfg.oracle.incr_fixpoint {
            cmd.arg("--legacy-fixpoint");
        }
        if !opts.cfg.oracle.module_memo {
            cmd.arg("--no-module-memo");
        }
        if opts.cfg.oracle.legacy_world_lock {
            cmd.arg("--legacy-world-lock");
        }
        if let Some(jobs) = opts.jobs {
            cmd.arg("--jobs")
                .arg(jobs.div_ceil(opts.workers).to_string());
        }
        let child = cmd.spawn().map_err(|e| format!("spawn worker {k}: {e}"))?;
        children.push((k, child, records));
    }
    let mut merged = Vec::new();
    for (k, mut child, records) in children {
        let status = child
            .wait()
            .map_err(|e| format!("wait worker {k}: {e}"))
            .map_err(|e| e.to_string())?;
        // Workers run with neither --expected nor gating output; any
        // non-zero exit is a real failure.
        if !status.success() {
            return Err(format!("worker {k} failed: {status}"));
        }
        let text =
            std::fs::read_to_string(&records).map_err(|e| format!("worker {k} records: {e}"))?;
        let _ = std::fs::remove_file(&records);
        merged.extend(records_from_tsv(&text)?);
    }
    merged.sort_by_key(|r| r.index);
    Ok(merged)
}

fn sanitize(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn main() -> ExitCode {
    let opts = parse_opts();
    let result = if opts.workers > 1 {
        match run_workers(&opts) {
            Ok(records) => apply_dry(records, opts.cfg.rounds, opts.cfg.dry_rounds),
            Err(e) => {
                eprintln!("fuzz_differential: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let pool;
        let pool_ref: &Pool = match opts.jobs {
            Some(jobs) => {
                pool = Pool::new(PoolConfig {
                    jobs,
                    ..PoolConfig::from_env()
                });
                &pool
            }
            None => parcoach_pool::global(),
        };
        let quiet = opts.quiet;
        run_campaign(&opts.cfg, pool_ref, |round, batch, tracker| {
            if !quiet {
                let invalid = batch.iter().filter(|r| r.invalid.is_some()).count();
                println!(
                    "round {round}: {} modules ({invalid} invalid), {} disagreement classes so far",
                    batch.len(),
                    tracker.seen().len()
                );
            }
        })
    };

    let summary = Summary::from_result(&opts.cfg, &result);
    if let Some(path) = &opts.records_out {
        if let Err(e) = std::fs::write(path, records_to_tsv(&result.records)) {
            eprintln!("fuzz_differential: write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &opts.summary_out {
        if let Err(e) = std::fs::write(path, summary.to_json()) {
            eprintln!("fuzz_differential: write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if !opts.quiet {
        print!("{}", summary.render_table());
    }

    let mut failed = false;
    if summary.invalid > 0 {
        eprintln!(
            "fuzz_differential: {} generator-invalid modules (generator bug)",
            summary.invalid
        );
        for r in result
            .records
            .iter()
            .filter(|r| r.invalid.is_some())
            .take(3)
        {
            eprintln!(
                "  module #{} (seed {}): {}",
                r.index,
                r.seed,
                r.invalid.as_deref().unwrap()
            );
        }
        failed = true;
    }
    if let Some(path) = &opts.expected {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let expected = parse_expected(&text);
                let unexpected = summary.unexpected_classes(&expected);
                if !unexpected.is_empty() {
                    eprintln!("fuzz_differential: disagreement classes not in {path}:");
                    for k in unexpected {
                        let c = &summary.classes[k];
                        eprintln!(
                            "  {k}  (exemplar #{} seed {})",
                            c.example_index, c.example_seed
                        );
                    }
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("fuzz_differential: read {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if opts.minimize {
        if let Some(dir) = &opts.corpus_out {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("fuzz_differential: mkdir {dir}: {e}");
                return ExitCode::from(2);
            }
        }
        for key in summary.disagreement_classes() {
            let stat = &summary.classes[key];
            let scenario = Scenario::generate(stat.example_seed);
            let before = scenario.stmt_count();
            let (min, runs) = minimize(&scenario, key, &opts.cfg.oracle);
            let src = min.render();
            if !opts.quiet {
                println!(
                    "\n== {key} · module #{} seed {} · {} -> {} stmts in {runs} oracle runs ==\n{src}",
                    stat.example_index, stat.example_seed, before, min.stmt_count()
                );
            }
            if let Some(dir) = &opts.corpus_out {
                let body = format!(
                    "// class: {key}\n// seed: {} (module #{}, campaign seed {})\n{src}",
                    stat.example_seed, stat.example_index, summary.seed
                );
                let path = format!("{dir}/{}.mh", sanitize(key));
                if let Err(e) = std::fs::write(&path, body) {
                    eprintln!("fuzz_differential: write {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
