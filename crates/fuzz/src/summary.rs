//! Campaign summaries: polarity counts, per-class statistics, the
//! precision/recall estimate, a deterministic JSON rendering, and the
//! expected-classes file the replay test and CI gate check against.

use crate::campaign::{CampaignConfig, CampaignResult, ModuleRecord};
use crate::classify::is_disagreement;
use std::collections::{BTreeMap, BTreeSet};

/// Aggregate for one class key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassStat {
    /// Modules contributing this key.
    pub count: u64,
    /// Lowest module index exhibiting it (the canonical exemplar).
    pub example_index: u64,
    /// That module's generator seed.
    pub example_seed: u64,
}

/// Deterministic digest of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Campaign seed.
    pub seed: u64,
    /// Round budget asked for.
    pub rounds_requested: usize,
    /// Rounds actually run (dry-out may stop earlier).
    pub rounds_run: usize,
    /// Modules per round.
    pub modules_per_round: usize,
    /// Whether dry-out (not the budget) ended the campaign.
    pub dried_out: bool,
    /// Modules evaluated.
    pub modules: u64,
    /// Generator-invalid modules (always a bug; gates CI).
    pub invalid: u64,
    /// True negatives: both sides clean.
    pub agreed_clean: u64,
    /// True positives: both sides report.
    pub agreed_error: u64,
    /// False-positive candidates.
    pub static_only: u64,
    /// False-negative candidates.
    pub dynamic_only: u64,
    /// Every class key with its statistics.
    pub classes: BTreeMap<String, ClassStat>,
}

impl Summary {
    /// Fold a campaign result.
    pub fn from_result(cfg: &CampaignConfig, result: &CampaignResult) -> Summary {
        let mut s = Summary {
            seed: cfg.seed,
            rounds_requested: cfg.rounds,
            rounds_run: result.rounds_run,
            modules_per_round: cfg.modules_per_round,
            dried_out: result.dried_out,
            modules: result.records.len() as u64,
            invalid: 0,
            agreed_clean: 0,
            agreed_error: 0,
            static_only: 0,
            dynamic_only: 0,
            classes: BTreeMap::new(),
        };
        for rec in &result.records {
            match rec.polarity.as_str() {
                "agreed-clean" => s.agreed_clean += 1,
                "agreed-error" => s.agreed_error += 1,
                "static-only" => s.static_only += 1,
                "dynamic-only" => s.dynamic_only += 1,
                _ => s.invalid += 1,
            }
            for key in &rec.class_keys {
                s.classes
                    .entry(key.clone())
                    .and_modify(|c| c.count += 1)
                    .or_insert(ClassStat {
                        count: 1,
                        example_index: rec.index,
                        example_seed: rec.seed,
                    });
            }
        }
        s
    }

    /// Static precision estimate over warned modules:
    /// `agreed_error / (agreed_error + static_only)`.
    pub fn precision(&self) -> f64 {
        ratio(self.agreed_error, self.agreed_error + self.static_only)
    }

    /// Static recall estimate over dynamically-failing modules:
    /// `agreed_error / (agreed_error + dynamic_only)`.
    pub fn recall(&self) -> f64 {
        ratio(self.agreed_error, self.agreed_error + self.dynamic_only)
    }

    /// The disagreement class keys, ascending.
    pub fn disagreement_classes(&self) -> Vec<&str> {
        self.classes
            .keys()
            .filter(|k| is_disagreement(k))
            .map(|k| k.as_str())
            .collect()
    }

    /// Disagreement classes present here but absent from `expected`.
    pub fn unexpected_classes(&self, expected: &BTreeSet<String>) -> Vec<&str> {
        self.disagreement_classes()
            .into_iter()
            .filter(|k| !expected.contains(*k))
            .collect()
    }

    /// Deterministic JSON (sorted keys, fixed float formatting) — the
    /// byte-identical replay artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!(
            "  \"rounds_requested\": {},\n",
            self.rounds_requested
        ));
        out.push_str(&format!("  \"rounds_run\": {},\n", self.rounds_run));
        out.push_str(&format!(
            "  \"modules_per_round\": {},\n",
            self.modules_per_round
        ));
        out.push_str(&format!("  \"dried_out\": {},\n", self.dried_out));
        out.push_str(&format!("  \"modules\": {},\n", self.modules));
        out.push_str(&format!("  \"invalid\": {},\n", self.invalid));
        out.push_str(&format!("  \"agreed_clean\": {},\n", self.agreed_clean));
        out.push_str(&format!("  \"agreed_error\": {},\n", self.agreed_error));
        out.push_str(&format!("  \"static_only\": {},\n", self.static_only));
        out.push_str(&format!("  \"dynamic_only\": {},\n", self.dynamic_only));
        out.push_str(&format!("  \"precision\": {:.4},\n", self.precision()));
        out.push_str(&format!("  \"recall\": {:.4},\n", self.recall()));
        out.push_str("  \"classes\": {\n");
        let n = self.classes.len();
        for (i, (key, c)) in self.classes.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"example_index\": {}, \"example_seed\": {}}}{}\n",
                key,
                c.count,
                c.example_index,
                c.example_seed,
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Human table for the terminal.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "campaign seed {} · {} modules in {}/{} rounds ({}){}\n",
            self.seed,
            self.modules,
            self.rounds_run,
            self.rounds_requested,
            if self.dried_out {
                "dried out"
            } else {
                "budget exhausted"
            },
            if self.invalid > 0 {
                format!(" · {} INVALID", self.invalid)
            } else {
                String::new()
            },
        ));
        out.push_str(&format!(
            "  agreed-clean {:>6}   agreed-error {:>6}   static-only {:>5}   dynamic-only {:>5}\n",
            self.agreed_clean, self.agreed_error, self.static_only, self.dynamic_only
        ));
        out.push_str(&format!(
            "  precision {:.4}   recall {:.4}\n",
            self.precision(),
            self.recall()
        ));
        out.push_str(&format!("  {:<54} {:>7}  exemplar\n", "class", "count"));
        for (key, c) in &self.classes {
            out.push_str(&format!(
                "  {:<54} {:>7}  #{} (seed {})\n",
                key, c.count, c.example_index, c.example_seed
            ));
        }
        out
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// Parse an expected-classes file: one class key per line, `#` comments
/// and blank lines ignored.
pub fn parse_expected(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(|l| l.trim())
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.to_string())
        .collect()
}

/// Serialize records as the tab-separated worker exchange format (one
/// module per line: index, seed, round, polarity, class keys, static
/// codes, dynamic codes, sanitized compile diagnostic).
pub fn records_to_tsv(records: &[ModuleRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let flat = |v: &[String]| v.join(",");
        let diag = r
            .invalid
            .as_deref()
            .unwrap_or("")
            .replace(['\t', '\n'], " ");
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            r.index,
            r.seed,
            r.round,
            r.polarity,
            flat(&r.class_keys),
            flat(&r.static_codes),
            flat(&r.dyn_codes),
            diag
        ));
    }
    out
}

/// Parse the worker exchange format back into records.
pub fn records_from_tsv(text: &str) -> Result<Vec<ModuleRecord>, String> {
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 8 {
            return Err(format!(
                "records line {}: {} columns",
                lineno + 1,
                cols.len()
            ));
        }
        let unflat = |s: &str| -> Vec<String> {
            if s.is_empty() {
                Vec::new()
            } else {
                s.split(',').map(|x| x.to_string()).collect()
            }
        };
        let parse = |s: &str, what: &str| -> Result<u64, String> {
            s.parse::<u64>()
                .map_err(|_| format!("records line {}: bad {what} `{s}`", lineno + 1))
        };
        records.push(ModuleRecord {
            index: parse(cols[0], "index")?,
            seed: parse(cols[1], "seed")?,
            round: parse(cols[2], "round")? as usize,
            polarity: cols[3].to_string(),
            class_keys: unflat(cols[4]),
            static_codes: unflat(cols[5]),
            dyn_codes: unflat(cols[6]),
            invalid: if cols[7].is_empty() {
                None
            } else {
                Some(cols[7].to_string())
            },
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(index: u64, polarity: &str, keys: &[&str]) -> ModuleRecord {
        ModuleRecord {
            index,
            seed: index * 10 + 1,
            round: index as usize / 2,
            polarity: polarity.to_string(),
            class_keys: keys.iter().map(|k| k.to_string()).collect(),
            static_codes: Vec::new(),
            dyn_codes: Vec::new(),
            invalid: None,
        }
    }

    fn sample() -> (CampaignConfig, CampaignResult) {
        let cfg = CampaignConfig {
            rounds: 2,
            modules_per_round: 2,
            ..CampaignConfig::default()
        };
        let result = CampaignResult {
            records: vec![
                rec(0, "agreed-clean", &["agreed-clean"]),
                rec(1, "agreed-error", &["agreed-error:collective-mismatch"]),
                rec(2, "static-only", &["static-only:unmatched-p2p"]),
                rec(3, "dynamic-only", &["dynamic-only:deadlock"]),
            ],
            rounds_run: 2,
            dried_out: false,
        };
        (cfg, result)
    }

    #[test]
    fn counts_and_rates() {
        let (cfg, result) = sample();
        let s = Summary::from_result(&cfg, &result);
        assert_eq!(
            (
                s.agreed_clean,
                s.agreed_error,
                s.static_only,
                s.dynamic_only
            ),
            (1, 1, 1, 1)
        );
        assert_eq!(s.precision(), 0.5);
        assert_eq!(s.recall(), 0.5);
        assert_eq!(
            s.disagreement_classes(),
            vec!["dynamic-only:deadlock", "static-only:unmatched-p2p"]
        );
        let expected = parse_expected("# known\nstatic-only:unmatched-p2p\n");
        assert_eq!(
            s.unexpected_classes(&expected),
            vec!["dynamic-only:deadlock"]
        );
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let (cfg, result) = sample();
        let s = Summary::from_result(&cfg, &result);
        let j = s.to_json();
        assert_eq!(j, Summary::from_result(&cfg, &result).to_json());
        let ac = j.find("\"agreed-clean\"").unwrap();
        let dy = j.find("\"dynamic-only:deadlock\"").unwrap();
        let st = j.find("\"static-only:unmatched-p2p\"").unwrap();
        assert!(ac < dy && dy < st, "classes must be sorted");
    }

    #[test]
    fn records_round_trip_through_tsv() {
        let (_cfg, result) = sample();
        let mut with_invalid = result.records.clone();
        with_invalid.push(ModuleRecord {
            invalid: Some("parse error:\n\tunexpected token".to_string()),
            polarity: "invalid".to_string(),
            class_keys: Vec::new(),
            ..rec(4, "", &[])
        });
        let tsv = records_to_tsv(&with_invalid);
        let back = records_from_tsv(&tsv).unwrap();
        assert_eq!(back.len(), with_invalid.len());
        assert_eq!(back[2], with_invalid[2]);
        // The diagnostic survives, whitespace-sanitized.
        assert_eq!(
            back[4].invalid.as_deref(),
            Some("parse error:  unexpected token")
        );
    }

    #[test]
    fn empty_denominators_read_as_perfect() {
        let cfg = CampaignConfig::default();
        let result = CampaignResult {
            records: vec![rec(0, "agreed-clean", &["agreed-clean"])],
            rounds_run: 1,
            dried_out: true,
        };
        let s = Summary::from_result(&cfg, &result);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
    }
}
