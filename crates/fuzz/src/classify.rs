//! Verdict diffing: polarity (agreed / static-only / dynamic-only) and
//! the disagreement-class keys a campaign's dry-out criterion tracks.

use crate::oracle::Observation;

/// Module-level polarity of the static-vs-dynamic diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// Both sides clean: a true negative for the static phases.
    AgreedClean,
    /// Both sides report: a true positive (module-level — the codes
    /// need not describe the same statement).
    AgreedError,
    /// Static warning, clean instrumented run: false-positive
    /// candidate.
    StaticOnly,
    /// Clean static report, failing run: false-negative candidate.
    DynamicOnly,
}

impl Polarity {
    /// Stable lowercase name (summary JSON, records files).
    pub fn name(self) -> &'static str {
        match self {
            Polarity::AgreedClean => "agreed-clean",
            Polarity::AgreedError => "agreed-error",
            Polarity::StaticOnly => "static-only",
            Polarity::DynamicOnly => "dynamic-only",
        }
    }
}

/// Coarse family of a dynamic error code. Families — not raw codes —
/// key the dynamic-only classes, because one root cause surfaces under
/// different codes depending on which detector reaches it first (e.g.
/// a deadlock via the wait-for-graph census on one rank and the
/// operation timeout on another).
pub fn dyn_family(code: &str) -> &'static str {
    match code {
        "cc-mismatch"
        | "mpi-mismatch"
        | "monothread-violation"
        | "concurrent-regions"
        | "thread-barrier" => "collective",
        "p2p-imbalance" => "p2p",
        // `aborted` is a teardown echo, never a primary diagnosis: a
        // rank sees it only when the world died under it. With any
        // primary present that family outranks it; standing alone it
        // means a rank vanished mid-communication (early exit), which
        // races with the deadlock census on the surviving ranks — so it
        // lands in the same family as the census verdict.
        "wait-cycle" | "mpi-deadlock" | "mpi-wait-cycle" | "mpi-timeout" | "mpi-early-exit"
        | "aborted" => "deadlock",
        "thread-level" => "thread-level",
        "hang" => "hang",
        _ => "fault",
    }
}

/// Priority when several ranks report different families (highest
/// wins): the more specific diagnosis names the class.
fn family_rank(family: &str) -> u8 {
    match family {
        "collective" => 6,
        "p2p" => 5,
        "thread-level" => 4,
        "deadlock" => 3,
        "hang" => 2,
        _ => 1, // fault
    }
}

/// The highest-priority family among a run's error codes.
pub fn top_family(dyn_codes: &[String]) -> Option<&'static str> {
    dyn_codes
        .iter()
        .map(|c| dyn_family(c))
        .max_by_key(|f| family_rank(f))
}

/// Is this class key a disagreement (the dry-out / CI-gate signal)?
pub fn is_disagreement(key: &str) -> bool {
    key.starts_with("static-only:") || key.starts_with("dynamic-only:")
}

/// A classified module: its polarity and the class keys it contributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classified {
    /// Module-level diff polarity.
    pub polarity: Polarity,
    /// Class keys: `agreed-clean`, `agreed-error:<codes>`,
    /// `static-only:<code>` (one per warning code), or
    /// `dynamic-only:<family>`.
    pub class_keys: Vec<String>,
}

/// Diff one observation into polarity + class keys.
pub fn classify(obs: &Observation) -> Classified {
    let static_err = !obs.static_codes.is_empty();
    let dyn_err = !obs.dyn_codes.is_empty();
    match (static_err, dyn_err) {
        (false, false) => Classified {
            polarity: Polarity::AgreedClean,
            class_keys: vec!["agreed-clean".to_string()],
        },
        (true, true) => Classified {
            polarity: Polarity::AgreedError,
            class_keys: vec![format!("agreed-error:{}", obs.static_codes.join("+"))],
        },
        (true, false) => Classified {
            polarity: Polarity::StaticOnly,
            class_keys: obs
                .static_codes
                .iter()
                .map(|c| format!("static-only:{c}"))
                .collect(),
        },
        (false, true) => Classified {
            polarity: Polarity::DynamicOnly,
            class_keys: vec![format!(
                "dynamic-only:{}",
                top_family(&obs.dyn_codes).expect("non-empty dyn codes")
            )],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(st: &[&str], dy: &[&str]) -> Observation {
        Observation {
            static_codes: st.iter().map(|s| s.to_string()).collect(),
            dyn_codes: dy.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn four_polarities() {
        assert_eq!(classify(&obs(&[], &[])).polarity, Polarity::AgreedClean);
        assert_eq!(
            classify(&obs(&["collective-mismatch"], &["cc-mismatch"])).polarity,
            Polarity::AgreedError
        );
        assert_eq!(
            classify(&obs(&["collective-mismatch"], &[])).polarity,
            Polarity::StaticOnly
        );
        assert_eq!(
            classify(&obs(&[], &["wait-cycle"])).polarity,
            Polarity::DynamicOnly
        );
    }

    #[test]
    fn static_only_contributes_one_class_per_code() {
        let c = classify(&obs(&["collective-mismatch", "unmatched-p2p"], &[]));
        assert_eq!(
            c.class_keys,
            vec![
                "static-only:collective-mismatch".to_string(),
                "static-only:unmatched-p2p".to_string()
            ]
        );
        assert!(c.class_keys.iter().all(|k| is_disagreement(k)));
    }

    #[test]
    fn dynamic_family_priority_prefers_specific_diagnoses() {
        // A mismatch detected on one rank while another timed out is a
        // collective-class disagreement, not a deadlock-class one.
        let c = classify(&obs(&[], &["cc-mismatch", "mpi-timeout"]));
        assert_eq!(c.class_keys, vec!["dynamic-only:collective".to_string()]);
    }

    #[test]
    fn agreed_keys_are_not_disagreements() {
        assert!(!is_disagreement("agreed-clean"));
        assert!(!is_disagreement("agreed-error:collective-mismatch"));
        assert!(is_disagreement("dynamic-only:deadlock"));
    }
}
