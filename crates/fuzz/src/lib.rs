//! # parcoach-fuzz — differential fuzzing of the checker itself
//!
//! The paper evaluates PARCOACH on a handful of hand-picked benchmarks;
//! the catalogue inherits that limitation. This crate measures the
//! checker instead of the programs: it generates thousands of random
//! MiniHPC scenarios ([`parcoach_testutil::scenario`]), runs the static
//! phases *and* the instrumented simulator on each, and diffs the two
//! verdicts:
//!
//! * **agreed** — both clean, or both report an error;
//! * **static-only** — a warning with a clean instrumented run: a
//!   false-positive candidate (or a latent error the schedule cannot
//!   reach — the census narrows those);
//! * **dynamic-only** — a clean static report but a failing run: a
//!   false-negative candidate, the interesting soundness signal.
//!
//! Disagreements are bucketed into **classes** (warning code for
//! static-only, error family for dynamic-only), a campaign loops until
//! `K` consecutive rounds surface no new class (*dry-out*), and a
//! delta-debugging [`minimize()`] pass shrinks one exemplar per class to
//! a minimal reproducer fit for the catalogue.
//!
//! Everything is deterministic: module seeds derive from
//! `(campaign seed, module index)` only, so a campaign's records are
//! identical at any `--jobs` width, any `--workers` process count, and
//! any round budget that covers the same indices.

pub mod campaign;
pub mod classify;
pub mod minimize;
pub mod oracle;
pub mod summary;

pub use campaign::{
    apply_dry, module_seed, run_campaign, CampaignConfig, CampaignResult, DryTracker, ModuleRecord,
};
pub use classify::{classify, dyn_family, is_disagreement, Classified, Polarity};
pub use minimize::minimize;
pub use oracle::{observe, observe_module, Observation, OracleConfig, OracleOutcome};
pub use summary::{parse_expected, ClassStat, Summary};
