//! The differential oracle: one generated module in, one observation
//! out — the static warning codes and the instrumented run's error
//! codes, gathered under a per-module watchdog.

use parcoach_core::{instrument_module, AnalysisSession, InstrumentMode};
use parcoach_front::parse_and_check;
use parcoach_interp::{Executor, RunConfig};
use parcoach_ir::lower::lower_program;
use parcoach_ir::Module;
use std::sync::mpsc;
use std::time::Duration;

/// Oracle knobs. The defaults match the catalogue's detection runs
/// (2 ranks × 2 threads, fast-fail timeouts) plus a per-module watchdog
/// an order of magnitude above the worst expected case.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Simulated MPI ranks.
    pub ranks: usize,
    /// Default team width for `parallel` regions.
    pub threads: usize,
    /// Hard wall-clock cap per module; a run that exceeds it is
    /// recorded as the synthetic dynamic code `hang`.
    pub watchdog: Duration,
    /// Context-propagation driver for the static side: the incremental
    /// worklist (default) or, when `false`, the legacy full-re-walk
    /// round loop — so the campaign can pin both against the simulator.
    pub incr_fixpoint: bool,
    /// Module-level memo for the comm/request/p2p match tables: the
    /// fingerprint-keyed path (default) or, when `false`, direct
    /// recomputation — so the campaign can pin the keyed tables against
    /// the simulator too.
    pub module_memo: bool,
    /// Run the simulated MPI on its legacy single-world-lock engine
    /// instead of the sharded one — so the campaign can pin the sharded
    /// matching spaces against the ablation baseline.
    pub legacy_world_lock: bool,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            ranks: 2,
            threads: 2,
            watchdog: Duration::from_secs(10),
            incr_fixpoint: true,
            module_memo: true,
            legacy_world_lock: false,
        }
    }
}

impl OracleConfig {
    fn run_config(&self) -> RunConfig {
        let mut cfg = RunConfig::fast_fail(self.ranks, self.threads);
        cfg.legacy_world_lock = self.legacy_world_lock;
        cfg
    }
}

/// What the two sides said about one module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// Static warning codes, sorted and deduplicated.
    pub static_codes: Vec<String>,
    /// Dynamic error codes of the instrumented run, sorted and
    /// deduplicated; the synthetic code `hang` when the watchdog fired.
    pub dyn_codes: Vec<String>,
}

/// Oracle verdict: a valid module's observation, or the compile error.
/// An invalid module is a **generator bug**, never a disagreement — the
/// campaign counts these separately and the CI gate fails on any.
#[derive(Debug, Clone)]
pub enum OracleOutcome {
    /// The module compiled; here is what both sides said.
    Valid(Observation),
    /// Parse/type/lowering/verification failure (rendered diagnostics).
    Invalid(String),
}

/// Run the full differential pipeline on one module: parse → lower →
/// verify → analyze → instrument (selective) → execute under the
/// watchdog. The module is lowered exactly once; the static and
/// instrumented phases both work from that lowering via
/// [`observe_module`].
pub fn observe(name: &str, src: &str, cfg: &OracleConfig) -> OracleOutcome {
    let unit = match parse_and_check(name, src) {
        Ok(u) => u,
        Err((diags, sm)) => return OracleOutcome::Invalid(diags.render(&sm)),
    };
    let module = lower_program(&unit.program, &unit.signatures);
    let verify = parcoach_ir::verify_module(&module);
    if !verify.is_empty() {
        return OracleOutcome::Invalid(format!("IR verification failed: {verify:?}"));
    }
    OracleOutcome::Valid(observe_module(&module, cfg))
}

/// The post-frontend half of [`observe`]: static analysis, selective
/// instrumentation and the watchdogged execution of one already-lowered
/// (and verified) module. Callers that hold a lowered module — the
/// micro-benchmarks, batched replays — skip the parse entirely.
pub fn observe_module(module: &Module, cfg: &OracleConfig) -> Observation {
    let report = AnalysisSession::builder()
        .incr_fixpoint(cfg.incr_fixpoint)
        .module_memo(cfg.module_memo)
        .build()
        .check_module(module);
    let mut static_codes: Vec<String> = report
        .warnings
        .iter()
        .map(|w| w.kind.code().to_string())
        .collect();
    static_codes.sort_unstable();
    static_codes.dedup();

    let (instrumented, _stats) = instrument_module(module, &report, InstrumentMode::Selective);
    let run_cfg = cfg.run_config();
    // The executor joins its rank threads before returning, so a stuck
    // schedule would stall the campaign without this watchdog. The run
    // is dispatched to a parked cache worker instead of a fresh OS
    // thread — the steady-state campaign pays zero thread spawns — and
    // on timeout the worker is abandoned, not the thread: if the run
    // ever finishes, the worker re-parks and serves later modules.
    let (tx, rx) = mpsc::channel();
    parcoach_pool::thread_cache().spawn(move || {
        let _ = tx.send(Executor::new(instrumented, run_cfg).run());
    });
    let mut dyn_codes: Vec<String> = match rx.recv_timeout(cfg.watchdog) {
        Ok(run) => run
            .errors
            .iter()
            .map(|e| e.kind.code().to_string())
            .collect(),
        Err(_) => vec!["hang".to_string()],
    };
    dyn_codes.sort_unstable();
    dyn_codes.dedup();
    Observation {
        static_codes,
        dyn_codes,
    }
}
