//! Seeded property test: the sharded simulator engine and its legacy
//! single-world-lock ablation baseline agree on every generated module.
//!
//! 100 scenario-generator modules go through the full differential
//! pipeline on both engines; the static codes must match exactly and
//! the dynamic codes must match at error-family granularity (the
//! granularity the fuzz classifier uses — within a family, e.g.
//! deadlock vs. rank-finished-early, the precise code is
//! schedule-dependent in *both* engines). Some modules are
//! schedule-dependent *across* families too: two different dynamic
//! checks race to observe the same underlying bug (e.g. a thread-level
//! violation vs. the collective mismatch it causes), on either engine.
//! A first-try mismatch therefore triggers a resample: each engine runs
//! the module several more times, and the engines are equivalent iff
//! their observed verdict sets intersect — a genuine divergence (one
//! engine *cannot* produce what the other does) stays disjoint and
//! fails. The sweep also runs at pool widths 1 and 4 to pin
//! jobs-independence of the comparison itself.

use parcoach_fuzz::{dyn_family, module_seed, observe, OracleConfig, OracleOutcome};
use parcoach_pool::{Pool, PoolConfig};
use parcoach_testutil::Scenario;
use std::collections::BTreeSet;

const SEED: u64 = 4242;
const MODULES: u64 = 100;
const RESAMPLES: usize = 5;

/// (static codes, dynamic error families) of one module.
type Verdict = (Vec<String>, BTreeSet<String>);

fn source(i: u64) -> String {
    Scenario::generate(module_seed(SEED, i)).render()
}

fn observe_one(i: u64, src: &str, legacy_world_lock: bool) -> Verdict {
    let cfg = OracleConfig {
        legacy_world_lock,
        ..OracleConfig::default()
    };
    match observe(&format!("eq_{i}.mh"), src, &cfg) {
        OracleOutcome::Valid(obs) => {
            let families: BTreeSet<String> = obs
                .dyn_codes
                .iter()
                .map(|c| dyn_family(c).to_string())
                .collect();
            (obs.static_codes, families)
        }
        OracleOutcome::Invalid(diag) => panic!("generator produced invalid module {i}: {diag}"),
    }
}

fn observe_all(jobs: usize, legacy_world_lock: bool) -> Vec<Verdict> {
    let pool = Pool::new(PoolConfig {
        jobs,
        ..PoolConfig::default()
    });
    let indices: Vec<u64> = (0..MODULES).collect();
    pool.par_map(&indices, |&i| observe_one(i, &source(i), legacy_world_lock))
}

/// On a first-try mismatch, resample both engines: the module is
/// equivalent across engines iff some verdict is reachable by both.
fn assert_agree(i: u64, first_a: &Verdict, first_b: &Verdict) {
    if first_a == first_b {
        return;
    }
    let src = source(i);
    let mut seen_a: BTreeSet<Verdict> = [first_a.clone()].into();
    let mut seen_b: BTreeSet<Verdict> = [first_b.clone()].into();
    for _ in 0..RESAMPLES {
        seen_a.insert(observe_one(i, &src, false));
        seen_b.insert(observe_one(i, &src, true));
        if seen_a.intersection(&seen_b).next().is_some() {
            return;
        }
    }
    panic!(
        "module {i} (seed {}): disjoint verdicts — sharded {seen_a:?} vs legacy world lock \
         {seen_b:?}",
        module_seed(SEED, i)
    );
}

#[test]
fn sharded_and_legacy_world_lock_agree() {
    let sharded = observe_all(4, false);
    let legacy = observe_all(4, true);
    for (i, (s, l)) in sharded.iter().zip(legacy.iter()).enumerate() {
        assert_agree(i as u64, s, l);
    }
}

#[test]
fn static_side_is_jobs_independent() {
    // The static half of every verdict must not depend on the pool
    // width the sweep ran at: the analysis is deterministic, and a
    // width-dependent static code would mean the sweep layout leaks
    // into the comparison. The dynamic half is deliberately *not*
    // pinned across widths — a racing module's dynamic verdict is a
    // sample of a schedule distribution, and pool width is part of the
    // schedule; cross-engine dynamic equivalence is the first test's
    // job, with resampling on both sides.
    for legacy in [false, true] {
        let narrow = observe_all(1, legacy);
        let wide = observe_all(4, legacy);
        for (i, (n, w)) in narrow.iter().zip(wide.iter()).enumerate() {
            assert_eq!(
                n.0, w.0,
                "module {i} (legacy={legacy}): static codes changed with pool width"
            );
        }
    }
}
