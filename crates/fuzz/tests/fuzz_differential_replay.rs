//! Tier-1 replay gate for the differential fuzzing campaign (E11).
//!
//! A pinned-seed campaign prefix must (a) replay byte-identically,
//! (b) produce zero generator-invalid modules, and (c) surface no
//! disagreement class missing from the checked-in `FUZZ_expected.txt`.
//! Budgets scale with `PARCOACH_PROP_BUDGET` like the other property
//! suites.

use parcoach_fuzz::{
    classify, minimize, module_seed, observe, parse_expected, run_campaign, CampaignConfig,
    OracleConfig, OracleOutcome, Summary,
};
use parcoach_pool::{Pool, PoolConfig};
use parcoach_testutil::{case_budget, Scenario};
use std::collections::BTreeSet;

fn pool(jobs: usize) -> Pool {
    Pool::new(PoolConfig {
        jobs,
        deterministic: true,
        seed: 42,
    })
}

fn expected_classes() -> BTreeSet<String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../FUZZ_expected.txt");
    parse_expected(&std::fs::read_to_string(path).expect("FUZZ_expected.txt at the repo root"))
}

/// Pinned-seed replay: same seed, same summary — and every disagreement
/// class is already recorded. Because module seeds depend only on
/// `(campaign_seed, index)`, this prefix is a strict subset of the
/// canonical 2000-module run that produced `FUZZ_expected.txt`.
#[test]
fn replay_campaign_stays_within_recorded_classes() {
    let cfg = CampaignConfig {
        seed: 42,
        rounds: case_budget(2) as usize,
        dry_rounds: 0,
        ..CampaignConfig::default()
    };
    let p = pool(2);
    let a = Summary::from_result(&cfg, &run_campaign(&cfg, &p, |_, _, _| {}));
    let b = Summary::from_result(&cfg, &run_campaign(&cfg, &p, |_, _, _| {}));
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "same seed must replay byte-identically"
    );
    assert_eq!(a.invalid, 0, "generator produced invalid modules");
    assert_eq!(a.modules, (cfg.rounds * cfg.modules_per_round) as u64);
    let unexpected = a.unexpected_classes(&expected_classes());
    assert!(
        unexpected.is_empty(),
        "disagreement classes missing from FUZZ_expected.txt: {unexpected:?}"
    );
}

/// In-process sharding must not change results: a single-lane pool and
/// a four-lane pool produce byte-identical summaries.
#[test]
fn pool_shape_does_not_change_results() {
    let cfg = CampaignConfig {
        rounds: 1,
        dry_rounds: 0,
        ..CampaignConfig::default()
    };
    let s1 = Summary::from_result(&cfg, &run_campaign(&cfg, &pool(1), |_, _, _| {}));
    let s4 = Summary::from_result(&cfg, &run_campaign(&cfg, &pool(4), |_, _, _| {}));
    assert_eq!(s1.to_json(), s4.to_json());
}

/// Every generated module must pass the front end and the IR verifier:
/// an `Invalid` oracle outcome is always a generator bug, never noise.
#[test]
fn every_generated_module_is_frontend_valid() {
    for i in 0..case_budget(200) {
        let seed = module_seed(0xF00D, i);
        let src = Scenario::generate(seed).render();
        let unit = parcoach_front::parse_and_check("gen.mh", &src)
            .unwrap_or_else(|(d, sm)| panic!("seed {seed}: {}", d.render(&sm)));
        let module = parcoach_ir::lower::lower_program(&unit.program, &unit.signatures);
        let errs = parcoach_ir::verify_module(&module);
        assert!(errs.is_empty(), "seed {seed}: {errs:?}");
    }
}

/// Scenario rendering is pure: the same seeds pushed through
/// differently shaped pools yield byte-identical sources.
#[test]
fn generation_is_independent_of_pool_shape() {
    let idx: Vec<u64> = (0..64).collect();
    let render = |p: &Pool| {
        p.par_map(&idx, |&i| Scenario::generate(module_seed(42, i)).render())
            .concat()
    };
    assert_eq!(render(&pool(1)), render(&pool(4)));
}

/// The minimizer must shrink the canonical uniform-guard FP exemplar
/// (module #5 of the seed-42 campaign) while preserving its
/// disagreement class.
#[test]
fn minimizer_preserves_class_while_shrinking() {
    let key = "static-only:collective-mismatch";
    let sc = Scenario::generate(module_seed(42, 5));
    let (min, probes) = minimize(&sc, key, &OracleConfig::default());
    assert!(probes > 0);
    assert!(min.stmt_count() <= sc.stmt_count());
    match observe("min.mh", &min.render(), &OracleConfig::default()) {
        OracleOutcome::Valid(o) => {
            let keys = classify(&o).class_keys;
            assert!(keys.iter().any(|k| k == key), "lost {key}: {keys:?}");
        }
        OracleOutcome::Invalid(e) => panic!("minimized module no longer compiles: {e}"),
    }
}
