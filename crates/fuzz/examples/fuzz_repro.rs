//! Reproduce one fuzz module: `fuzz_repro <generator-seed>` regenerates
//! and re-observes a module by seed; `fuzz_repro <path.mh>` observes a
//! source file (e.g. a minimized corpus entry). Prints the source and
//! six repeated observations — any variation across them is a
//! determinism bug.

use parcoach_fuzz::{observe, OracleConfig, OracleOutcome};
use parcoach_testutil::Scenario;

fn main() {
    let arg = std::env::args()
        .nth(1)
        .expect("usage: fuzz_repro <seed|file.mh>");
    let src = match arg.parse::<u64>() {
        Ok(seed) => Scenario::generate(seed).render(),
        Err(_) => std::fs::read_to_string(&arg).expect("readable source file"),
    };
    println!("{src}");
    for i in 0..6 {
        match observe("repro.mh", &src, &OracleConfig::default()) {
            OracleOutcome::Valid(o) => {
                println!("run {i}: static={:?} dyn={:?}", o.static_codes, o.dyn_codes)
            }
            OracleOutcome::Invalid(e) => println!("run {i}: INVALID {e}"),
        }
    }
}
