//! # parcoach-sync — parking_lot-compatible shim over `std::sync`
//!
//! The simulators (`parcoach-mpisim`, `parcoach-ompsim`) and the
//! interpreter were written against the `parking_lot` API: `lock()`
//! returns a guard directly (no poisoning `Result`), and `Condvar::wait*`
//! takes the guard by `&mut` instead of by value. This crate provides the
//! small subset of that API they use, implemented purely on `std::sync`,
//! so the workspace builds with zero external dependencies. Consumers
//! depend on it under the rename `parking_lot` (see their `Cargo.toml`),
//! which keeps the simulator sources byte-compatible with the real crate.
//!
//! Poisoning is deliberately swallowed (`PoisonError::into_inner`): a
//! panicking simulator thread is itself the error condition under test,
//! and the deadlock census must keep running to report it.
//!
//! Provided: [`Mutex`], [`RwLock`], [`Condvar`] (`wait`, `wait_until`,
//! `notify_one`, `notify_all`), [`ReentrantMutex`] (used for `critical`
//! sections, which OpenMP defines as reentrant per-name locks).

use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::{self as ss};
use std::thread::{self, ThreadId};
use std::time::Instant;

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized>(ss::Mutex<T>);

/// RAII guard for [`Mutex`]. Holds the inner std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take ownership through `&mut`.
pub struct MutexGuard<'a, T: ?Sized>(Option<ss::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(ss::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(ss::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(ss::PoisonError::into_inner),
        ))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(ss::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&self.0).finish()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

/// Outcome of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable whose waits take the guard by `&mut`
/// (parking_lot style) instead of by value (std style).
#[derive(Default)]
pub struct Condvar(ss::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(ss::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        guard.0 = Some(
            self.0
                .wait(inner)
                .unwrap_or_else(ss::PoisonError::into_inner),
        );
    }

    /// Block until `condition` returns false (parking_lot's
    /// `wait_while`): re-checks after every wakeup, so spurious wakeups
    /// and notify-storms are absorbed here instead of at every caller.
    pub fn wait_while<T, F>(&self, guard: &mut MutexGuard<'_, T>, mut condition: F)
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(&mut *guard) {
            self.wait(guard);
        }
    }

    /// Wait until `deadline`; returns whether the wait timed out. A
    /// deadline already in the past degenerates to a zero-length wait,
    /// which reports a timeout unless the condvar is already signalled.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let inner = guard.0.take().expect("guard already taken");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

/// Reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized>(ss::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(ss::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(ss::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> ss::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(ss::PoisonError::into_inner)
    }

    pub fn write(&self) -> ss::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(ss::PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// A mutex the owning thread may lock any number of times, as OpenMP
/// requires of `critical` sections guarding recursive code.
pub struct ReentrantMutex<T: ?Sized> {
    state: ss::Mutex<ReentrantState>,
    cv: ss::Condvar,
    data: T,
}

struct ReentrantState {
    owner: Option<ThreadId>,
    depth: usize,
}

/// RAII guard for [`ReentrantMutex`]. `!Send`: the lock must be released
/// on the thread that acquired it.
pub struct ReentrantMutexGuard<'a, T: ?Sized> {
    lock: &'a ReentrantMutex<T>,
    _not_send: PhantomData<*const ()>,
}

unsafe impl<T: ?Sized + Send> Send for ReentrantMutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for ReentrantMutex<T> {}

impl<T> ReentrantMutex<T> {
    pub fn new(data: T) -> Self {
        ReentrantMutex {
            state: ss::Mutex::new(ReentrantState {
                owner: None,
                depth: 0,
            }),
            cv: ss::Condvar::new(),
            data,
        }
    }
}

impl<T: ?Sized> ReentrantMutex<T> {
    pub fn lock(&self) -> ReentrantMutexGuard<'_, T> {
        let me = thread::current().id();
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(ss::PoisonError::into_inner);
        loop {
            match st.owner {
                None => {
                    st.owner = Some(me);
                    st.depth = 1;
                    break;
                }
                Some(owner) if owner == me => {
                    st.depth += 1;
                    break;
                }
                Some(_) => {
                    st = self.cv.wait(st).unwrap_or_else(ss::PoisonError::into_inner);
                }
            }
        }
        ReentrantMutexGuard {
            lock: self,
            _not_send: PhantomData,
        }
    }
}

impl<T: ?Sized> Deref for ReentrantMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.lock.data
    }
}

impl<T: ?Sized> Drop for ReentrantMutexGuard<'_, T> {
    fn drop(&mut self) {
        let mut st = self
            .lock
            .state
            .lock()
            .unwrap_or_else(ss::PoisonError::into_inner);
        st.depth -= 1;
        if st.depth == 0 {
            st.owner = None;
            self.lock.cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        assert!(*done);
        h.join().unwrap();
    }

    #[test]
    fn wait_while_blocks_until_condition_clears() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            for _ in 0..3 {
                *m.lock() += 1;
                cv.notify_all();
            }
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        cv.wait_while(&mut g, |v| *v < 3);
        assert_eq!(*g, 3);
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn reentrant_lock_is_reentrant() {
        let m = ReentrantMutex::new(());
        let _a = m.lock();
        let _b = m.lock(); // must not deadlock
    }

    #[test]
    fn reentrant_lock_excludes_other_threads() {
        let m = Arc::new(ReentrantMutex::new(()));
        let counter = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    let _g = m.lock();
                    let mut c = counter.lock();
                    let old = *c;
                    thread::yield_now();
                    *c = old + 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 400);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
