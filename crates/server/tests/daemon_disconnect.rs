//! Regression: a client disconnecting mid-request must cost its own
//! connection, not the daemon.
//!
//! The old accept loop propagated any per-connection I/O error out of
//! `serve_socket`, so a client vanishing between request and response
//! (broken pipe on the reply write) killed the whole process and every
//! other client with it. This drives the real binary over a unix
//! socket: connect, fire a `check`, slam the socket shut without
//! reading, then prove a second client still gets served.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const DIVERGENT: &str = "fn main() { if (rank() == 0) { MPI_Barrier(); } }";

struct Daemon {
    child: Child,
    path: String,
}

impl Daemon {
    fn spawn() -> Daemon {
        let path = std::env::temp_dir()
            .join(format!("parcoachd_disc_{}.sock", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let child = Command::new(env!("CARGO_BIN_EXE_parcoachd"))
            .args(["--socket", &path, "--deterministic", "--jobs", "1"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn parcoachd");
        // Wait for the listener to come up.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !std::path::Path::new(&path).exists() {
            assert!(Instant::now() < deadline, "daemon never bound {path}");
            std::thread::sleep(Duration::from_millis(10));
        }
        Daemon { child, path }
    }

    fn connect(&self) -> UnixStream {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match UnixStream::connect(&self.path) {
                Ok(s) => return s,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10))
                }
                Err(e) => panic!("connect {}: {e}", self.path),
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.path);
    }
}

fn send(conn: &mut UnixStream, line: &str) {
    conn.write_all(line.as_bytes()).unwrap();
    conn.write_all(b"\n").unwrap();
    conn.flush().unwrap();
}

fn call(conn: &mut UnixStream, reader: &mut BufReader<UnixStream>, line: &str) -> String {
    send(conn, line);
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert!(!resp.is_empty(), "daemon closed the connection");
    resp.trim_end().to_string()
}

fn open_params(uri: &str) -> String {
    format!(
        r#"{{"jsonrpc":"2.0","id":1,"method":"open","params":{{"uri":"{uri}","text":"{}"}}}}"#,
        DIVERGENT.replace('"', "\\\"")
    )
}

#[test]
fn client_disconnect_mid_request_does_not_kill_the_daemon() {
    let daemon = Daemon::spawn();

    // Client 1: handshake, open, fire a check — then vanish without
    // reading the response. The daemon's reply hits a dead socket.
    {
        let mut conn = daemon.connect();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let resp = call(
            &mut conn,
            &mut reader,
            r#"{"jsonrpc":"2.0","id":0,"method":"initialize","params":{"protocolVersion":2}}"#,
        );
        assert!(resp.contains(r#""result""#), "{resp}");
        let resp = call(&mut conn, &mut reader, &open_params("drop.mh"));
        assert!(resp.contains(r#""functions""#), "{resp}");
        send(
            &mut conn,
            r#"{"jsonrpc":"2.0","id":2,"method":"check","params":{"uri":"drop.mh"}}"#,
        );
        // conn + reader dropped here: disconnect with the check in flight.
    }

    // Client 2: the daemon must still accept and serve.
    let mut conn = daemon.connect();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let resp = call(
        &mut conn,
        &mut reader,
        r#"{"jsonrpc":"2.0","id":0,"method":"initialize","params":{"protocolVersion":2}}"#,
    );
    assert!(
        resp.contains(r#""result""#),
        "daemon died with client 1: {resp}"
    );
    let resp = call(&mut conn, &mut reader, &open_params("alive.mh"));
    assert!(resp.contains(r#""functions""#), "{resp}");
    let resp = call(
        &mut conn,
        &mut reader,
        r#"{"jsonrpc":"2.0","id":2,"method":"check","params":{"uri":"alive.mh"}}"#,
    );
    assert!(resp.contains(r#""clean":false"#), "{resp}");

    // And shutdown still drains the daemon cleanly.
    let resp = call(
        &mut conn,
        &mut reader,
        r#"{"jsonrpc":"2.0","id":3,"method":"shutdown","params":{}}"#,
    );
    assert!(resp.contains(r#""result":null"#), "{resp}");
    // The process exits on its own (drain), well before the kill in Drop.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut daemon = daemon;
    loop {
        match daemon.child.try_wait().unwrap() {
            Some(status) => {
                assert!(status.success(), "daemon exited with {status}");
                break;
            }
            None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            None => panic!("daemon did not exit after shutdown"),
        }
    }
}
