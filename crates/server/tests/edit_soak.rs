//! Seeded edit-soak property, in-process.
//!
//! Two warm servers (pool widths 1 and 4, both deterministic) receive
//! the same stream of random single-function edits. After every
//! accepted edit, their `check` responses must be byte-identical to
//! each other AND to a cold oracle: a from-scratch [`Document::open`]
//! of the mirrored text checked by a fresh one-shot session. This is
//! the same differential the `daemon_soak` binary runs against a live
//! process, kept here in miniature so `cargo test` guards the property
//! without spawning anything.

use parcoach_core::AnalysisSession;
use parcoach_server::json::{obj, Value};
use parcoach_server::{check_result_json, proto, Document, Server, ServerConfig};
use parcoach_testutil::{Rng, Scenario, ScenarioConfig};

const SEED: u64 = 7;
const EDITS: usize = 25;

fn server(jobs: usize) -> Server {
    let mut srv = Server::new(ServerConfig {
        jobs: Some(jobs),
        deterministic: true,
        seed: 42,
        ..ServerConfig::default()
    });
    let resp = srv.handle_line(
        r#"{"jsonrpc":"2.0","id":0,"method":"initialize","params":{"protocolVersion":1}}"#,
    );
    assert!(resp.contains(r#""result""#), "{resp}");
    srv
}

fn request(id: i64, method: &str, params: Value) -> String {
    obj([
        ("jsonrpc", Value::from("2.0")),
        ("id", Value::from(id)),
        ("method", Value::from(method)),
        ("params", params),
    ])
    .to_line()
}

/// Render one helper as an `edit` payload, body donated by another
/// scenario's helper (same prologue the generator emits, so the donor
/// statements' locals resolve).
fn render_helper(name: &str, stmts: &[String]) -> String {
    let mut out = format!("fn {name}() {{\n");
    out.push_str("    let acc = 1;\n");
    out.push_str("    let peer = size() - 1 - rank();\n");
    for s in stmts {
        out.push_str(&format!("    {s}\n"));
    }
    out.push('}');
    out
}

#[test]
fn warm_checks_match_cold_oracle_at_jobs_1_and_4() {
    let cfg = ScenarioConfig {
        max_helpers: 4,
        max_main_stmts: 6,
        max_helper_stmts: 3,
    };
    let base = (SEED..)
        .map(|s| Scenario::generate_with(s, &cfg))
        .find(|sc| sc.helpers.len() >= 2)
        .unwrap();
    let text = base.render();
    let helper_names: Vec<String> = base.helpers.iter().map(|h| h.name.clone()).collect();
    let uri = "soak.mh";

    let mut narrow = server(1);
    let mut wide = server(4);
    let open = request(
        1,
        "open",
        obj([
            ("uri", Value::from(uri)),
            ("text", Value::from(text.as_str())),
        ]),
    );
    assert_eq!(narrow.handle_line(&open), wide.handle_line(&open));

    // The oracle mirror tracks the text the servers hold; its session is
    // a scratch — the oracle itself always compiles cold.
    let mut mirror = Document::open(uri, &text).unwrap();
    let mut scratch = AnalysisSession::builder().build();

    let mut rng = Rng::new(SEED ^ 0x50AC);
    let mut donor_seed = SEED.wrapping_mul(31).wrapping_add(1000);
    let mut id = 1i64;
    let (mut accepted, mut rejected, mut incremental) = (0usize, 0usize, 0usize);

    while accepted < EDITS {
        assert!(rejected < 50 * EDITS + 100, "generator stalled");
        donor_seed += 1;
        let donor = Scenario::generate_with(donor_seed, &cfg);
        let Some(dh) = donor.helpers.first() else {
            continue;
        };
        let func = rng.pick(&helper_names).clone();
        let new_text = render_helper(&func, &dh.stmts);

        id += 1;
        let edit = request(
            id,
            "edit",
            obj([
                ("uri", Value::from(uri)),
                ("func", Value::from(func.as_str())),
                ("text", Value::from(new_text.as_str())),
            ]),
        );
        let resp_n = narrow.handle_line(&edit);
        let resp_w = wide.handle_line(&edit);
        assert_eq!(resp_n, resp_w, "edit #{accepted} of `{func}`");
        if resp_n.contains(r#""error""#) {
            // Both servers rejected; the mirror must agree.
            assert!(
                mirror.edit(&mut scratch, &func, &new_text).is_err(),
                "servers rejected an edit the oracle accepts: {func}"
            );
            rejected += 1;
            continue;
        }
        incremental += resp_n.contains(r#""incremental":true"#) as usize;
        mirror.edit(&mut scratch, &func, &new_text).unwrap();
        accepted += 1;

        id += 1;
        let check = request(id, "check", obj([("uri", Value::from(uri))]));
        let warm_n = narrow.handle_line(&check);
        let warm_w = wide.handle_line(&check);
        assert_eq!(
            warm_n, warm_w,
            "pool width changed bytes after edit #{accepted}"
        );

        let fresh = Document::open(uri, mirror.text()).unwrap();
        let mut cold = AnalysisSession::builder()
            .jobs(1)
            .deterministic(true)
            .seed(42)
            .build();
        let report = cold.check_module(fresh.module());
        let rendered = report.render(fresh.source_map());
        let want = proto::ok(&Value::from(id), check_result_json(&report, rendered));
        assert_eq!(
            warm_n, want,
            "warm/cold divergence after edit #{accepted} of `{func}`"
        );
    }

    // The soak must actually exercise the fast path, not fall back to
    // reopen every time.
    assert!(
        incremental * 2 >= accepted,
        "only {incremental}/{accepted} edits took the incremental path"
    );
}
