//! Concurrent edit-soak property, in-process.
//!
//! N client views over ONE shared server state interleave
//! open/edit/check on their own documents from N OS threads. The
//! responses each client records must be byte-identical to a *serial
//! replay* of the same per-client request scripts against a fresh
//! shared server — i.e. contention changes scheduling, never bytes.
//! Checked at pool widths 1 and 4, and across widths (the deterministic
//! pipeline promises width-independence too).

use parcoach_server::json::{obj, Value};
use parcoach_server::{Server, ServerConfig, ServerShared};
use parcoach_testutil::{Rng, Scenario, ScenarioConfig};
use std::sync::Arc;

const CLIENTS: usize = 4;
const ATTEMPTS: usize = 8;

fn request(id: i64, method: &str, params: Value) -> String {
    obj([
        ("jsonrpc", Value::from("2.0")),
        ("id", Value::from(id)),
        ("method", Value::from(method)),
        ("params", params),
    ])
    .to_line()
}

/// Render one helper as an `edit` payload (same prologue the scenario
/// generator emits, so donated statements' locals resolve).
fn render_helper(name: &str, stmts: &[String]) -> String {
    let mut out = format!("fn {name}() {{\n");
    out.push_str("    let acc = 1;\n");
    out.push_str("    let peer = size() - 1 - rank();\n");
    for s in stmts {
        out.push_str(&format!("    {s}\n"));
    }
    out.push('}');
    out
}

/// The deterministic request script of client `k`: open its own
/// document, then interleave donated edits with checks. Rejected edits
/// stay in the script — their error responses must replay identically
/// too.
fn client_script(k: usize) -> Vec<String> {
    let cfg = ScenarioConfig {
        max_helpers: 4,
        max_main_stmts: 6,
        max_helper_stmts: 3,
    };
    let seed = 100 + k as u64 * 17;
    let base = (seed..)
        .map(|s| Scenario::generate_with(s, &cfg))
        .find(|sc| !sc.helpers.is_empty())
        .unwrap();
    let text = base.render();
    let helpers: Vec<String> = base.helpers.iter().map(|h| h.name.clone()).collect();
    let uri = format!("soak_{k}.mh");
    let mut rng = Rng::new(seed ^ 0xC0FFEE);
    let mut lines = vec![
        request(
            0,
            "initialize",
            obj([("protocolVersion", Value::from(2i64))]),
        ),
        request(
            1,
            "open",
            obj([
                ("uri", Value::from(uri.as_str())),
                ("text", Value::from(text.as_str())),
            ]),
        ),
        request(2, "check", obj([("uri", Value::from(uri.as_str()))])),
    ];
    let mut donor_seed = seed.wrapping_mul(31).wrapping_add(1);
    let mut id = 2i64;
    for _ in 0..ATTEMPTS {
        donor_seed += 1;
        let donor = Scenario::generate_with(donor_seed, &cfg);
        let Some(dh) = donor.helpers.first() else {
            continue;
        };
        let func = rng.pick(&helpers).clone();
        let new_text = render_helper(&func, &dh.stmts);
        id += 1;
        lines.push(request(
            id,
            "edit",
            obj([
                ("uri", Value::from(uri.as_str())),
                ("func", Value::from(func.as_str())),
                ("text", Value::from(new_text.as_str())),
            ]),
        ));
        id += 1;
        lines.push(request(
            id,
            "check",
            obj([("uri", Value::from(uri.as_str()))]),
        ));
    }
    lines
}

fn shared(jobs: usize) -> Arc<ServerShared> {
    ServerShared::new(ServerConfig {
        jobs: Some(jobs),
        deterministic: true,
        seed: 42,
        ..ServerConfig::default()
    })
}

fn run_concurrent(jobs: usize, scripts: &[Vec<String>]) -> Vec<Vec<String>> {
    let state = shared(jobs);
    std::thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| {
                let state = Arc::clone(&state);
                scope.spawn(move || {
                    let mut srv = Server::with_shared(state);
                    script
                        .iter()
                        .map(|l| srv.handle_line(l))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

fn run_serial(jobs: usize, scripts: &[Vec<String>]) -> Vec<Vec<String>> {
    let state = shared(jobs);
    scripts
        .iter()
        .map(|script| {
            let mut srv = Server::with_shared(Arc::clone(&state));
            script.iter().map(|l| srv.handle_line(l)).collect()
        })
        .collect()
}

#[test]
fn concurrent_clients_match_serial_replay_at_jobs_1_and_4() {
    let scripts: Vec<Vec<String>> = (0..CLIENTS).map(client_script).collect();
    // The scripts must exercise real work: every client gets at least
    // one accepted edit + check round.
    assert!(scripts.iter().all(|s| s.len() > 3));
    let mut per_jobs = Vec::new();
    for jobs in [1usize, 4] {
        let concurrent = run_concurrent(jobs, &scripts);
        let serial = run_serial(jobs, &scripts);
        assert_eq!(
            concurrent, serial,
            "contention changed bytes at jobs={jobs}"
        );
        // Sanity: the transcripts contain successful checks, not a wall
        // of errors that would vacuously match.
        let checks = concurrent
            .iter()
            .flatten()
            .filter(|r| r.contains(r#""clean":"#))
            .count();
        assert!(checks >= CLIENTS, "only {checks} checks ran");
        per_jobs.push(concurrent);
    }
    assert_eq!(
        per_jobs[0], per_jobs[1],
        "pool width changed bytes under contention"
    );
}
