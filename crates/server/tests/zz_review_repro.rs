//! Review repro: whitespace-only interior edit keeps the fingerprint
//! green but moves spans inside the edited function.

use parcoach_core::AnalysisSession;
use parcoach_server::Document;

fn det_session(incremental: bool) -> AnalysisSession {
    AnalysisSession::builder()
        .jobs(1)
        .deterministic(true)
        .seed(1)
        .incremental(incremental)
        .build()
}

#[test]
fn whitespace_interior_edit_keeps_warm_equal_to_cold() {
    let src = "fn helper() {\n    parallel { if (thread_num() == 0) { barrier; } }\n}\nfn main() {\n    MPI_Init();\n    helper();\n    MPI_Finalize();\n}\n";
    let mut s = det_session(true);
    let mut doc = Document::open("t.mh", src).unwrap();
    let _ = s.check_module(doc.module());

    // Same structure, extra interior indentation: spans inside `helper`
    // move by 4 bytes, fingerprint is unchanged.
    let replacement = "fn helper() {\n        parallel { if (thread_num() == 0) { barrier; } }\n}";
    let out = doc.edit(&mut s, "helper", replacement).unwrap();
    assert!(out.incremental, "expected the incremental path");

    let warm = format!("{:?}", s.check_module(doc.module()));
    let fresh = Document::open("t.mh", doc.text()).unwrap();
    let cold = format!("{:?}", det_session(false).check_module(fresh.module()));
    assert_eq!(
        warm, cold,
        "warm check diverged from cold after a whitespace-only edit"
    );
}
