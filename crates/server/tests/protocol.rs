//! Protocol golden tests: the wire contract, as bytes.
//!
//! These drive [`Server::handle_line`] directly — no process spawn, no
//! sockets — because the contract under test is *textual*: for a given
//! request history, a deterministic server must produce these exact
//! response lines. Malformed input maps to typed JSON-RPC errors, never
//! a panic or a dropped connection.

use parcoach_server::{json, Server, ServerConfig};

fn server() -> Server {
    Server::new(ServerConfig {
        jobs: Some(1),
        deterministic: true,
        seed: 42,
        ..ServerConfig::default()
    })
}

fn init(srv: &mut Server) {
    let resp = srv.handle_line(
        r#"{"jsonrpc":"2.0","id":0,"method":"initialize","params":{"protocolVersion":1}}"#,
    );
    assert!(resp.contains(r#""result""#), "{resp}");
}

const DIVERGENT: &str = "fn main() { if (rank() == 0) { MPI_Barrier(); } }";

fn open(srv: &mut Server, text: &str) -> String {
    let params = json::obj([
        ("uri", json::Value::from("t.mh")),
        ("text", json::Value::from(text)),
    ]);
    srv.handle_line(&format!(
        r#"{{"jsonrpc":"2.0","id":1,"method":"open","params":{}}}"#,
        params.to_line()
    ))
}

#[test]
fn initialize_golden_response() {
    let mut srv = server();
    let resp = srv.handle_line(
        r#"{"jsonrpc":"2.0","id":7,"method":"initialize","params":{"protocolVersion":1}}"#,
    );
    assert_eq!(
        resp,
        format!(
            r#"{{"jsonrpc":"2.0","id":7,"result":{{"protocolVersion":1,"serverName":"parcoachd","serverVersion":"{}","capabilities":{{"incrementalEdits":true,"deterministic":true}}}}}}"#,
            env!("CARGO_PKG_VERSION")
        )
    );
}

#[test]
fn initialize_v2_golden_response() {
    let mut srv = server();
    let resp = srv.handle_line(
        r#"{"jsonrpc":"2.0","id":7,"method":"initialize","params":{"protocolVersion":2}}"#,
    );
    assert_eq!(
        resp,
        format!(
            r#"{{"jsonrpc":"2.0","id":7,"result":{{"protocolVersion":2,"serverName":"parcoachd","serverVersion":"{}","capabilities":{{"incrementalEdits":true,"deterministic":true,"positionEncoding":"utf-8","cancelRequest":true,"deadlineMs":true,"concurrentClients":true}}}}}}"#,
            env!("CARGO_PKG_VERSION")
        )
    );
}

#[test]
fn v2_diagnostics_carry_ranges_severity_and_related() {
    let mut srv = server();
    let resp = srv.handle_line(
        r#"{"jsonrpc":"2.0","id":0,"method":"initialize","params":{"protocolVersion":2}}"#,
    );
    assert!(resp.contains(r#""result""#), "{resp}");
    let resp = open(&mut srv, DIVERGENT);
    assert!(resp.contains(r#""functions""#), "{resp}");
    let diag = srv
        .handle_line(r#"{"jsonrpc":"2.0","id":2,"method":"diagnostics","params":{"uri":"t.mh"}}"#);
    // DIVERGENT is one line: `fn main() { if (rank() == 0) { MPI_Barrier(); } }`
    // The barrier call starts at 0-based character 31 on line 0.
    assert!(diag.contains(r#""severity":1"#), "{diag}");
    assert!(
        diag.contains(r#""range":{"start":{"line":0,"character":31}"#),
        "{diag}"
    );
    assert!(diag.contains(r#""relatedInformation":[{"range""#), "{diag}");
    // v1 byte-offset keys are gone from the v2 shape.
    assert!(!diag.contains(r#""lo":"#), "{diag}");

    // The same document over a sibling v1 connection keeps the frozen
    // v1 shape — negotiation is per connection, state is shared.
    let mut v1 = parcoach_server::Server::with_shared(srv.shared());
    let resp = v1.handle_line(
        r#"{"jsonrpc":"2.0","id":0,"method":"initialize","params":{"protocolVersion":1}}"#,
    );
    assert!(resp.contains(r#""protocolVersion":1"#), "{resp}");
    let old = v1
        .handle_line(r#"{"jsonrpc":"2.0","id":3,"method":"diagnostics","params":{"uri":"t.mh"}}"#);
    assert!(old.contains(r#""lo":"#), "{old}");
    assert!(!old.contains(r#""severity""#), "{old}");
}

#[test]
fn expired_deadline_is_request_cancelled() {
    let mut srv = server();
    let resp = srv.handle_line(
        r#"{"jsonrpc":"2.0","id":0,"method":"initialize","params":{"protocolVersion":2}}"#,
    );
    assert!(resp.contains(r#""result""#), "{resp}");
    let _ = open(&mut srv, DIVERGENT);
    let resp = srv.handle_line(
        r#"{"jsonrpc":"2.0","id":2,"method":"check","params":{"uri":"t.mh","deadlineMs":0}}"#,
    );
    assert!(resp.contains(r#""code":-32800"#), "{resp}");
    // A later unbounded check on the same connection succeeds: the
    // deadline bounded only that request's token view.
    let resp =
        srv.handle_line(r#"{"jsonrpc":"2.0","id":3,"method":"check","params":{"uri":"t.mh"}}"#);
    assert!(resp.contains(r#""clean":false"#), "{resp}");
}

#[test]
fn version_mismatch_is_rejected_with_32002() {
    let mut srv = server();
    for params in [
        r#"{"protocolVersion":99}"#,
        r#"{"protocolVersion":"1"}"#,
        r#"{}"#,
    ] {
        let resp = srv.handle_line(&format!(
            r#"{{"jsonrpc":"2.0","id":1,"method":"initialize","params":{params}}}"#
        ));
        assert!(resp.contains(r#""code":-32002"#), "{params} → {resp}");
        // A failed handshake does not initialize the server.
        let resp = srv.handle_line(r#"{"jsonrpc":"2.0","id":2,"method":"timings","params":{}}"#);
        assert!(resp.contains(r#""code":-32001"#), "{resp}");
    }
}

#[test]
fn malformed_input_maps_to_typed_errors() {
    let mut srv = server();
    init(&mut srv);
    // Not JSON at all → parse error, id null.
    let resp = srv.handle_line("{this is not json");
    assert!(
        resp.starts_with(r#"{"jsonrpc":"2.0","id":null,"error":{"code":-32700"#),
        "{resp}"
    );
    // Valid JSON, wrong shape → invalid request.
    for bad in ["[1,2,3]", r#""check""#, "42", r#"{"id":1,"params":{}}"#] {
        let resp = srv.handle_line(bad);
        assert!(resp.contains(r#""code":-32600"#), "{bad} → {resp}");
    }
    // Unknown method → method not found.
    let resp = srv.handle_line(r#"{"jsonrpc":"2.0","id":9,"method":"frobnicate","params":{}}"#);
    assert!(resp.contains(r#""code":-32601"#), "{resp}");
    assert!(resp.contains("frobnicate"), "{resp}");
    // Known method, missing params → invalid params.
    let resp = srv.handle_line(r#"{"jsonrpc":"2.0","id":10,"method":"check","params":{}}"#);
    assert!(resp.contains(r#""code":-32602"#), "{resp}");
}

#[test]
fn requests_before_initialize_are_rejected() {
    let mut srv = server();
    for method in [
        "open",
        "edit",
        "check",
        "diagnostics",
        "timings",
        "shutdown",
    ] {
        let resp = srv.handle_line(&format!(
            r#"{{"jsonrpc":"2.0","id":1,"method":"{method}"}}"#
        ));
        assert!(resp.contains(r#""code":-32001"#), "{method} → {resp}");
    }
    // And the server did not shut down from the rejected `shutdown`.
    assert!(!srv.is_shut_down());
}

#[test]
fn open_check_diagnostics_flow() {
    let mut srv = server();
    init(&mut srv);
    let resp = open(&mut srv, DIVERGENT);
    assert_eq!(
        resp,
        r#"{"jsonrpc":"2.0","id":1,"result":{"functions":["main"]}}"#
    );
    let check =
        srv.handle_line(r#"{"jsonrpc":"2.0","id":2,"method":"check","params":{"uri":"t.mh"}}"#);
    assert!(check.contains(r#""clean":false"#), "{check}");
    assert!(check.contains(r#""code":"collective-mismatch""#), "{check}");
    assert!(check.contains(r#""rendered":""#), "{check}");
    // `diagnostics` is `check` minus the rendered text.
    let diag = srv
        .handle_line(r#"{"jsonrpc":"2.0","id":3,"method":"diagnostics","params":{"uri":"t.mh"}}"#);
    assert!(diag.contains(r#""code":"collective-mismatch""#), "{diag}");
    assert!(!diag.contains(r#""rendered""#), "{diag}");
    // `timings` is now available and saw the cache at work.
    let t = srv.handle_line(r#"{"jsonrpc":"2.0","id":4,"method":"timings","params":{}}"#);
    assert!(t.contains(r#""available":true"#), "{t}");
    assert!(t.contains(r#""cache""#), "{t}");
}

#[test]
fn open_compile_error_is_32003_with_diagnostics() {
    let mut srv = server();
    init(&mut srv);
    let resp = open(&mut srv, "fn main( {");
    assert!(resp.contains(r#""code":-32003"#), "{resp}");
    assert!(resp.contains(r#""diagnostics""#), "{resp}");
    // The document is not resident after a failed open.
    let check =
        srv.handle_line(r#"{"jsonrpc":"2.0","id":2,"method":"check","params":{"uri":"t.mh"}}"#);
    assert!(check.contains(r#""code":-32004"#), "{check}");
}

#[test]
fn edit_unknown_targets_are_32004() {
    let mut srv = server();
    init(&mut srv);
    let _ = open(&mut srv, DIVERGENT);
    let resp = srv.handle_line(
        r#"{"jsonrpc":"2.0","id":2,"method":"edit","params":{"uri":"nope.mh","func":"main","text":"fn main() {}"}}"#,
    );
    assert!(resp.contains(r#""code":-32004"#), "{resp}");
    let resp = srv.handle_line(
        r#"{"jsonrpc":"2.0","id":3,"method":"edit","params":{"uri":"t.mh","func":"ghost","text":"fn ghost() {}"}}"#,
    );
    assert!(resp.contains(r#""code":-32004"#), "{resp}");
    assert!(resp.contains("ghost"), "{resp}");
}

#[test]
fn warm_check_after_edit_matches_cold_server_bytes() {
    let mut warm = server();
    init(&mut warm);
    let src = "fn helper() {\n    MPI_Barrier();\n}\nfn main() {\n    helper();\n    if (rank() == 0) { MPI_Barrier(); }\n}\n";
    let _ = open(&mut warm, src);
    let _ =
        warm.handle_line(r#"{"jsonrpc":"2.0","id":2,"method":"check","params":{"uri":"t.mh"}}"#);
    // Edit helper incrementally, then re-check warm.
    let edit = warm.handle_line(
        r#"{"jsonrpc":"2.0","id":3,"method":"edit","params":{"uri":"t.mh","func":"helper","text":"fn helper() {\n    MPI_Barrier();\n    MPI_Barrier();\n}"}}"#,
    );
    assert!(edit.contains(r#""incremental":true"#), "{edit}");
    let warm_check =
        warm.handle_line(r#"{"jsonrpc":"2.0","id":4,"method":"check","params":{"uri":"t.mh"}}"#);

    // A cold server opening the edited text directly must answer with
    // byte-identical results.
    let edited = src.replace(
        "fn helper() {\n    MPI_Barrier();\n}",
        "fn helper() {\n    MPI_Barrier();\n    MPI_Barrier();\n}",
    );
    let mut cold = server();
    init(&mut cold);
    let _ = open(&mut cold, &edited);
    let cold_check =
        cold.handle_line(r#"{"jsonrpc":"2.0","id":4,"method":"check","params":{"uri":"t.mh"}}"#);
    assert_eq!(warm_check, cold_check);
}

#[test]
fn shutdown_acknowledges_and_flags() {
    let mut srv = server();
    init(&mut srv);
    let resp = srv.handle_line(r#"{"jsonrpc":"2.0","id":5,"method":"shutdown","params":{}}"#);
    assert_eq!(resp, r#"{"jsonrpc":"2.0","id":5,"result":null}"#);
    assert!(srv.is_shut_down());
}
