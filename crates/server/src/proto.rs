//! Wire protocol: line-delimited JSON-RPC 2.0 over stdio or a unix
//! socket.
//!
//! Each request is one line — `{"jsonrpc":"2.0","id":1,"method":"check",
//! "params":{...}}` — and produces exactly one response line. Verbs:
//!
//! | method             | params                      | result |
//! |--------------------|-----------------------------|--------|
//! | `initialize`       | `{protocolVersion}`         | server name/version, capabilities |
//! | `open`             | `{uri, text}`               | function list |
//! | `edit`             | `{uri, func, text}`         | `{incremental, delta}` |
//! | `check`            | `{uri[, deadlineMs]}`       | rendered report + structured warnings |
//! | `diagnostics`      | `{uri[, deadlineMs]}`       | structured warnings only |
//! | `timings`          | `{}`                        | per-phase ns of the last check |
//! | `shutdown`         | `{}`                        | `null`, then the server drains |
//! | `$/cancelRequest`  | `{id}`                      | *notification* — no response; the named request answers [`code::REQUEST_CANCELLED`] |
//!
//! Two revisions are spoken (negotiated per connection at `initialize`):
//! **v1** warnings carry raw byte offsets (`lo`/`hi`) and the response
//! bytes are frozen; **v2** is LSP-shaped — warnings carry `severity`,
//! zero-based `{line, character}` ranges and `relatedInformation`, and
//! `check`/`diagnostics` accept a `deadlineMs` budget. `$/cancelRequest`
//! and `deadlineMs` are honored on concurrent connections (see
//! [`crate::sched`]).
//!
//! Error codes follow JSON-RPC where a standard code exists and use the
//! `-320xx` application range for the rest (see [`code`]). Responses are
//! built with ordered keys ([`crate::json`]) so a deterministic session
//! produces byte-identical transcripts.

use crate::json::{self, obj, Value};

/// Current protocol revision. `initialize` accepts this or
/// [`PROTOCOL_VERSION_LEGACY`] and rejects anything else with
/// [`code::VERSION_MISMATCH`]: a one-line protocol has no room for
/// silent downgrades.
pub const PROTOCOL_VERSION: i64 = 2;

/// The frozen v1 revision, still accepted behind the version gate so
/// existing clients keep their exact bytes.
pub const PROTOCOL_VERSION_LEGACY: i64 = 1;

/// Typed JSON-RPC error codes.
pub mod code {
    /// Request line was not valid JSON.
    pub const PARSE_ERROR: i64 = -32700;
    /// Valid JSON but not a well-formed request object.
    pub const INVALID_REQUEST: i64 = -32600;
    /// Unknown method.
    pub const METHOD_NOT_FOUND: i64 = -32601;
    /// Params missing or of the wrong shape.
    pub const INVALID_PARAMS: i64 = -32602;
    /// Any request before a successful `initialize`.
    pub const NOT_INITIALIZED: i64 = -32001;
    /// `initialize` with an unsupported `protocolVersion`.
    pub const VERSION_MISMATCH: i64 = -32002;
    /// `open`/`edit` text that does not compile (details in `data`).
    pub const COMPILE_ERROR: i64 = -32003;
    /// `edit`/`check` naming a function or document the server has
    /// never seen.
    pub const UNKNOWN_TARGET: i64 = -32004;
    /// The connection's bounded request queue is full; retry after an
    /// in-flight request completes.
    pub const SERVER_BUSY: i64 = -32005;
    /// The request was cancelled (`$/cancelRequest` or an expired
    /// `deadlineMs`) before or while running. Mirrors LSP's
    /// `RequestCancelled`.
    pub const REQUEST_CANCELLED: i64 = -32800;
}

/// A decoded request: id is echoed verbatim in the response (JSON-RPC
/// allows strings, numbers or null).
#[derive(Debug, Clone)]
pub struct Request {
    pub id: Value,
    pub method: String,
    pub params: Value,
}

/// Decode one request line. On error, returns the `(code, message)` the
/// caller should answer with (paired with `id: null` when the id was
/// unparseable).
pub fn parse_request(line: &str) -> Result<Request, (i64, String)> {
    let v = json::parse(line).map_err(|e| (code::PARSE_ERROR, format!("parse error: {e}")))?;
    let Value::Obj(_) = v else {
        return Err((code::INVALID_REQUEST, "request must be an object".into()));
    };
    let method = v
        .get("method")
        .and_then(Value::as_str)
        .ok_or((
            code::INVALID_REQUEST,
            "missing or non-string `method`".to_string(),
        ))?
        .to_string();
    let id = v.get("id").cloned().unwrap_or(Value::Null);
    let params = v.get("params").cloned().unwrap_or(Value::Obj(Vec::new()));
    Ok(Request { id, method, params })
}

/// A success response line.
pub fn ok(id: &Value, result: Value) -> String {
    obj([
        ("jsonrpc", Value::from("2.0")),
        ("id", id.clone()),
        ("result", result),
    ])
    .to_line()
}

/// An error response line; `data` carries structured detail (rendered
/// diagnostics for compile errors) when present.
pub fn err(id: &Value, code: i64, message: &str, data: Option<Value>) -> String {
    let mut fields = vec![
        ("code".to_string(), Value::from(code)),
        ("message".to_string(), Value::from(message)),
    ];
    if let Some(d) = data {
        fields.push(("data".to_string(), d));
    }
    obj([
        ("jsonrpc", Value::from("2.0")),
        ("id", id.clone()),
        ("error", Value::Obj(fields)),
    ])
    .to_line()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_a_minimal_request() {
        let r = parse_request(r#"{"jsonrpc":"2.0","id":3,"method":"check","params":{"uri":"a"}}"#)
            .unwrap();
        assert_eq!(r.method, "check");
        assert_eq!(r.id.as_i64(), Some(3));
        assert_eq!(r.params.get("uri").and_then(Value::as_str), Some("a"));
    }

    #[test]
    fn missing_method_is_invalid_request() {
        let (c, _) = parse_request(r#"{"id":1}"#).unwrap_err();
        assert_eq!(c, code::INVALID_REQUEST);
        let (c, _) = parse_request("[1,2]").unwrap_err();
        assert_eq!(c, code::INVALID_REQUEST);
    }

    #[test]
    fn garbage_is_parse_error() {
        let (c, msg) = parse_request("{not json").unwrap_err();
        assert_eq!(c, code::PARSE_ERROR);
        assert!(msg.contains("parse error"));
    }

    #[test]
    fn responses_have_stable_key_order() {
        assert_eq!(
            ok(&Value::from(1i64), Value::Null),
            r#"{"jsonrpc":"2.0","id":1,"result":null}"#
        );
        assert_eq!(
            err(&Value::Null, code::METHOD_NOT_FOUND, "no such method", None),
            r#"{"jsonrpc":"2.0","id":null,"error":{"code":-32601,"message":"no such method"}}"#
        );
    }
}
