//! A resident compilation unit: source text plus the parsed, checked
//! and lowered artifacts, kept consistent across per-function edits.
//!
//! The daemon's latency story lives here. `open` pays the full
//! front-end once; [`Document::edit`] then tries the **incremental
//! path**: reparse *only* the replacement function (padded with blanks
//! so its spans land at absolute file offsets), sema-check it against
//! the existing signature table, re-lower it in isolation, and rebase
//! the spans of every function after the splice point by the byte
//! delta. The analysis session is told exactly what moved
//! ([`parcoach_core::AnalysisSession::mark_edited`] /
//! [`shift_function`](parcoach_core::AnalysisSession::shift_function)),
//! so a following `check` re-derives one function's facts and reuses
//! the rest.
//!
//! The incremental path declines (falling back to a full reopen of the
//! spliced text) when the edit is not a drop-in replacement: the new
//! text is not exactly one function, keeps a different name, or changes
//! the signature — any of which can change how *callers* lower, not
//! just the edited body.

use parcoach_core::AnalysisSession;
use parcoach_front::{parser, sema, Function, Program, SourceMap, Span};
use parcoach_ir::lower::{lower_function, lower_program};
use parcoach_ir::Module;
use std::collections::HashMap;

/// Why an `open`/`edit` was rejected. The document is left exactly as
/// it was — a failed edit never corrupts the resident state.
#[derive(Debug)]
pub enum DocError {
    /// The target function does not exist in the document.
    UnknownFunction(String),
    /// The (spliced) text does not compile; `rendered` is the full
    /// diagnostic text, ready for the wire.
    Compile { rendered: String },
}

/// What an `edit` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditOutcome {
    /// Whether the single-function incremental path applied (`false`
    /// means the document was reopened from the spliced text and the
    /// session cache fully invalidated).
    pub incremental: bool,
    /// Signed byte growth of the document.
    pub delta: i64,
}

/// A resident source file and its derived artifacts.
#[derive(Debug)]
pub struct Document {
    uri: String,
    text: String,
    program: Program,
    signatures: HashMap<String, sema::Signature>,
    source_map: SourceMap,
    module: Module,
}

impl Document {
    /// Compile `text` from scratch. This is the cold path `parcoachc
    /// check` pays once per invocation and the daemon pays once per
    /// `open`.
    pub fn open(uri: &str, text: &str) -> Result<Document, DocError> {
        let (program, signatures, source_map, module) = compile(uri, text)?;
        Ok(Document {
            uri: uri.to_string(),
            text: text.to_string(),
            program,
            signatures,
            source_map,
            module,
        })
    }

    pub fn uri(&self) -> &str {
        &self.uri
    }

    pub fn text(&self) -> &str {
        &self.text
    }

    /// Function names in definition order.
    pub fn functions(&self) -> Vec<String> {
        self.program
            .functions
            .iter()
            .map(|f| f.name.name.clone())
            .collect()
    }

    pub fn module(&self) -> &Module {
        &self.module
    }

    pub fn source_map(&self) -> &SourceMap {
        &self.source_map
    }

    /// Replace the definition of `func` with `new_text` (which must
    /// contain the full replacement definition, `fn` keyword included).
    ///
    /// `session` is kept in sync: the edited function is marked dirty
    /// and later functions' cached facts are span-rebased, or — on the
    /// full-reopen fallback — the whole cache is invalidated.
    pub fn edit(
        &mut self,
        session: &mut AnalysisSession,
        func: &str,
        new_text: &str,
    ) -> Result<EditOutcome, DocError> {
        let idx = self
            .program
            .functions
            .iter()
            .position(|f| f.name.name == func)
            .ok_or_else(|| DocError::UnknownFunction(func.to_string()))?;
        let old_span = self.program.functions[idx].span;
        let (lo, hi) = (old_span.lo as usize, old_span.hi as usize);
        let delta = new_text.len() as i64 - (hi - lo) as i64;

        let mut spliced = String::with_capacity(self.text.len() + new_text.len());
        spliced.push_str(&self.text[..lo]);
        spliced.push_str(new_text);
        spliced.push_str(&self.text[hi..]);

        if let Some((new_fn, new_ir)) = self.try_incremental(func, idx, lo, new_text) {
            self.text = spliced;
            self.source_map = SourceMap::new(&self.uri, &self.text);
            self.program.functions[idx] = new_fn;
            for later in &mut self.program.functions[idx + 1..] {
                shift_ast_function(later, delta);
            }
            self.module.funcs[idx] = new_ir;
            for later in &mut self.module.funcs[idx + 1..] {
                parcoach_ir::shift_spans(later, delta);
                session.shift_function(&later.name, delta);
            }
            session.mark_edited(func);
            return Ok(EditOutcome {
                incremental: true,
                delta,
            });
        }

        // Fallback: whole-document recompile. Anything may have changed
        // shape, so the session cache starts over (a failed compile
        // leaves both document and session untouched).
        let (program, signatures, source_map, module) = compile(&self.uri, &spliced)?;
        self.text = spliced;
        self.program = program;
        self.signatures = signatures;
        self.source_map = source_map;
        self.module = module;
        session.invalidate_all();
        Ok(EditOutcome {
            incremental: false,
            delta,
        })
    }

    /// The single-function path: parse `new_text` alone (padded to
    /// absolute offsets), and accept it only if it is a drop-in
    /// replacement — same name, same signature, sema-clean against the
    /// existing signature table.
    fn try_incremental(
        &self,
        func: &str,
        idx: usize,
        offset: usize,
        new_text: &str,
    ) -> Option<(Function, parcoach_ir::FuncIr)> {
        let padded = format!("{}{}", " ".repeat(offset), new_text);
        let (prog, diags) = parser::parse_program(&padded);
        if diags.has_errors() || prog.functions.len() != 1 {
            return None;
        }
        let new_fn = prog.functions.into_iter().next().unwrap();
        if new_fn.name.name != func {
            return None;
        }
        let old_sig = &self.signatures[func];
        if sema::signature_of(&new_fn) != *old_sig {
            return None;
        }
        let mut diags = parcoach_front::Diagnostics::new();
        sema::check_function(&new_fn, &self.signatures, &mut diags);
        if diags.has_errors() {
            return None;
        }
        let new_ir = lower_function(&new_fn, &self.signatures);
        debug_assert_eq!(self.module.funcs[idx].name, new_ir.name);
        Some((new_fn, new_ir))
    }
}

/// Full front-end: parse, sema, lower, verify.
fn compile(
    uri: &str,
    text: &str,
) -> Result<(Program, HashMap<String, sema::Signature>, SourceMap, Module), DocError> {
    let unit =
        parcoach_front::parse_and_check(uri, text).map_err(|(diags, sm)| DocError::Compile {
            rendered: diags.render(&sm),
        })?;
    let module = lower_program(&unit.program, &unit.signatures);
    let errs = parcoach_ir::verify_module(&module);
    if !errs.is_empty() {
        return Err(DocError::Compile {
            rendered: format!("internal IR verification failure: {errs:?}"),
        });
    }
    Ok((unit.program, unit.signatures, unit.source_map, module))
}

/// Rebase the one AST span a later fast-path edit reads: the span of
/// the whole definition (used to locate the splice). Inner AST spans of
/// untouched functions are never consumed again — a future incremental
/// edit reparses from text, and a fallback reopen rebuilds the AST.
fn shift_ast_function(f: &mut Function, delta: i64) {
    if f.span == Span::DUMMY {
        return;
    }
    let lo = (f.span.lo as i64 + delta).max(0) as u32;
    let hi = (f.span.hi as i64 + delta).max(0) as u32;
    f.span = Span::new(lo, hi);
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
fn helper() {
    MPI_Barrier();
}
fn main() {
    MPI_Init();
    helper();
    if (rank() == 0) { MPI_Barrier(); }
    MPI_Finalize();
}
";

    fn session() -> AnalysisSession {
        AnalysisSession::builder()
            .jobs(1)
            .deterministic(true)
            .seed(1)
            .incremental(true)
            .build()
    }

    #[test]
    fn open_lists_functions_in_order() {
        let doc = Document::open("t.mh", SRC).unwrap();
        assert_eq!(doc.functions(), ["helper", "main"]);
    }

    #[test]
    fn open_rejects_bad_source() {
        match Document::open("t.mh", "fn main( {").unwrap_err() {
            DocError::Compile { rendered } => assert!(!rendered.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn incremental_edit_matches_full_recompile() {
        let mut s = session();
        let mut doc = Document::open("t.mh", SRC).unwrap();
        let _ = s.check_module(doc.module());

        let replacement = "fn helper() {\n    MPI_Barrier();\n    MPI_Barrier();\n}";
        let out = s_edit(&mut doc, &mut s, "helper", replacement);
        assert!(out.incremental);
        assert!(out.delta > 0);

        // The edited document equals a from-scratch compile of its text,
        // module spans included (the shift rebased `main`). Compare the
        // function vector, not the whole module: `by_name` is a HashMap
        // whose Debug order is not part of the contract.
        let fresh = Document::open("t.mh", doc.text()).unwrap();
        assert_eq!(
            format!("{:?}", doc.module().funcs),
            format!("{:?}", fresh.module().funcs)
        );
        assert_eq!(doc.module().by_name, fresh.module().by_name);

        // And a warm check is byte-identical to a cold one.
        let warm = format!("{:?}", s.check_module(doc.module()));
        let cold = format!(
            "{:?}",
            AnalysisSession::builder()
                .jobs(1)
                .deterministic(true)
                .seed(1)
                .build()
                .check_module(fresh.module())
        );
        assert_eq!(warm, cold);
    }

    #[test]
    fn signature_change_falls_back_to_reopen() {
        let mut s = session();
        let mut doc = Document::open("t.mh", SRC).unwrap();
        let _ = s.check_module(doc.module());
        // helper() -> helper(x: int) changes the signature, but the call
        // site `helper();` would no longer compile — so change both via
        // an edit of `main`... which *renames* nothing but the helper
        // edit alone must decline the incremental path and then fail to
        // compile the spliced text. The document must stay untouched.
        let before = doc.text().to_string();
        let bad = doc.edit(
            &mut s,
            "helper",
            "fn helper(x: int) {\n    MPI_Barrier();\n}\n",
        );
        assert!(matches!(bad, Err(DocError::Compile { .. })));
        assert_eq!(doc.text(), before);

        // A body edit of `main` that adds a second function is also not
        // a drop-in replacement: full reopen, still correct.
        let out = s_edit(
            &mut doc,
            &mut s,
            "main",
            "fn extra() { MPI_Barrier(); }\nfn main() {\n    MPI_Init();\n    helper();\n    extra();\n    MPI_Finalize();\n}",
        );
        assert!(!out.incremental);
        assert_eq!(doc.functions(), ["helper", "extra", "main"]);
    }

    #[test]
    fn unknown_function_is_rejected() {
        let mut s = session();
        let mut doc = Document::open("t.mh", SRC).unwrap();
        assert!(matches!(
            doc.edit(&mut s, "nope", "fn nope() {}"),
            Err(DocError::UnknownFunction(_))
        ));
    }

    fn s_edit(doc: &mut Document, s: &mut AnalysisSession, func: &str, text: &str) -> EditOutcome {
        doc.edit(s, func, text).unwrap()
    }
}
