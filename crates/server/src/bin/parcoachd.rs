//! `parcoachd` — the long-running analysis daemon.
//!
//! ```text
//! parcoachd [--stdio] [--socket PATH] [--jobs N] [--deterministic] [--seed S]
//! ```
//!
//! Speaks line-delimited JSON-RPC (see `parcoach_server::proto`).
//! `--stdio` (the default) serves one session over stdin/stdout —
//! the shape editors and the soak harness use. `--socket PATH` binds a
//! unix listener and serves connections one at a time, each with its
//! own protocol session over the shared resident state.
//!
//! Exit codes: 0 on `shutdown`/EOF, 3 on usage errors.

use parcoach_server::{Server, ServerConfig};
use std::io::BufReader;
use std::process::ExitCode;

const USAGE: &str = "\
parcoachd — resident MPI/OpenMP collective-analysis service

USAGE:
    parcoachd [--stdio] [--socket PATH] [--jobs N] [--deterministic] [--seed S]

    --stdio           serve stdin/stdout (default)
    --socket PATH     bind a unix socket and serve connections serially
    --jobs N          analysis pool width (>= 1; default: machine parallelism)
    --deterministic   reproducible scheduling + byte-stable transcripts
    --seed S          pool seed under --deterministic (default 42)
";

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("parcoachd: {msg}\n{USAGE}");
            ExitCode::from(3)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut config = ServerConfig {
        seed: 42,
        ..ServerConfig::default()
    };
    let mut socket: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{}: missing value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--stdio" => socket = None,
            "--socket" => socket = Some(take(&mut i)?),
            "--jobs" => {
                let v = take(&mut i)?;
                let n: usize = v.parse().map_err(|e| format!("--jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs: value must be at least 1".into());
                }
                config.jobs = Some(n);
            }
            "--deterministic" => config.deterministic = true,
            "--seed" => {
                config.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }

    let mut server = Server::new(config);
    match socket {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            server
                .serve(stdin.lock(), stdout.lock())
                .map_err(|e| format!("stdio: {e}"))
        }
        Some(path) => serve_socket(&mut server, &path),
    }
}

/// Accept connections one at a time; resident documents and the warm
/// cache survive across connections, so a reconnecting client keeps
/// its latency profile.
fn serve_socket(server: &mut Server, path: &str) -> Result<(), String> {
    let _ = std::fs::remove_file(path); // stale socket from a dead daemon
    let listener =
        std::os::unix::net::UnixListener::bind(path).map_err(|e| format!("bind {path}: {e}"))?;
    eprintln!("parcoachd: listening on {path}");
    for conn in listener.incoming() {
        let conn = conn.map_err(|e| format!("accept: {e}"))?;
        let reader = BufReader::new(conn.try_clone().map_err(|e| format!("socket: {e}"))?);
        server
            .serve(reader, conn)
            .map_err(|e| format!("serve: {e}"))?;
        if server.is_shut_down() {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}
