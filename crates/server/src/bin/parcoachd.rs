//! `parcoachd` — the long-running analysis daemon.
//!
//! ```text
//! parcoachd [--stdio] [--socket PATH] [--jobs N] [--deterministic] [--seed S]
//!           [--queue N]
//! ```
//!
//! Speaks line-delimited JSON-RPC, protocol v1 and v2 (see
//! `parcoach_server::proto`). `--stdio` (the default) serves one session
//! over stdin/stdout — the shape editors and the soak harness use.
//! `--socket PATH` binds a unix listener and serves connections
//! **concurrently**, each on a cached worker pair over the shared
//! resident state: different documents analyze in parallel, and a
//! client disconnecting mid-request costs only its own connection —
//! never the daemon. `shutdown` from any client drains in-flight
//! requests and exits.
//!
//! Exit codes: 0 on `shutdown`/EOF, 3 on usage errors.

use parcoach_server::{drive_connection, Server, ServerConfig, ServerShared};
use std::io::BufReader;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
parcoachd — resident MPI/OpenMP collective-analysis service

USAGE:
    parcoachd [--stdio] [--socket PATH] [--jobs N] [--deterministic] [--seed S]
              [--queue N]

    --stdio           serve stdin/stdout (default)
    --socket PATH     bind a unix socket and serve connections concurrently
    --jobs N          analysis pool width (>= 1; default: machine parallelism)
    --deterministic   reproducible scheduling + byte-stable transcripts
    --seed S          pool seed under --deterministic (default 42)
    --queue N         per-connection request-queue bound (default 64;
                      overflow answers -32005 ServerBusy)
";

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("parcoachd: {msg}\n{USAGE}");
            ExitCode::from(3)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut config = ServerConfig {
        seed: 42,
        ..ServerConfig::default()
    };
    let mut socket: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{}: missing value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--stdio" => socket = None,
            "--socket" => socket = Some(take(&mut i)?),
            "--jobs" => {
                let v = take(&mut i)?;
                let n: usize = v.parse().map_err(|e| format!("--jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs: value must be at least 1".into());
                }
                config.jobs = Some(n);
            }
            "--deterministic" => config.deterministic = true,
            "--seed" => {
                config.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--queue" => {
                let n: usize = take(&mut i)?.parse().map_err(|e| format!("--queue: {e}"))?;
                if n == 0 {
                    return Err("--queue: value must be at least 1".into());
                }
                config.queue_capacity = n;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }

    let shared = ServerShared::new(config);
    match socket {
        None => {
            let stdin = std::io::stdin();
            let server = Server::with_shared(shared);
            drive_connection(server, stdin.lock(), std::io::stdout())
                .map_err(|e| format!("stdio: {e}"))
        }
        Some(path) => serve_socket(shared, &path),
    }
}

/// Accept connections concurrently; resident documents and their warm
/// caches survive across connections, so a reconnecting client keeps
/// its latency profile. A per-connection I/O error (client vanished
/// mid-request) is logged and costs that connection only — the accept
/// loop, and every other client, keep going. `shutdown` drains:
/// accepting stops, in-flight connections finish.
fn serve_socket(shared: Arc<ServerShared>, path: &str) -> Result<(), String> {
    let _ = std::fs::remove_file(path); // stale socket from a dead daemon
    let listener =
        std::os::unix::net::UnixListener::bind(path).map_err(|e| format!("bind {path}: {e}"))?;
    // Non-blocking accept so a `shutdown` from any connection is
    // observed promptly, without needing one more client to connect.
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("socket: {e}"))?;
    eprintln!("parcoachd: listening on {path}");
    while !shared.is_draining() {
        match listener.accept() {
            Ok((conn, _addr)) => {
                if conn.set_nonblocking(false).is_err() {
                    continue;
                }
                let reader = match conn.try_clone() {
                    Ok(c) => BufReader::new(c),
                    Err(e) => {
                        eprintln!("parcoachd: socket clone failed: {e}");
                        continue;
                    }
                };
                let shared = Arc::clone(&shared);
                shared.connection_opened();
                parcoach_pool::thread_cache().spawn(move || {
                    let server = Server::with_shared(Arc::clone(&shared));
                    if let Err(e) = drive_connection(server, reader, conn) {
                        // The bugfix this daemon carries: a client gone
                        // mid-request is that client's problem.
                        eprintln!("parcoachd: connection error (client dropped?): {e}");
                    }
                    shared.connection_closed();
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => eprintln!("parcoachd: accept: {e}"),
        }
    }
    // Graceful drain: connections already accepted run to completion
    // (bounded, so a wedged client cannot hold the process forever).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while shared.active_connections() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}
