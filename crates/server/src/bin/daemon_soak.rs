//! `daemon_soak` — the edit-soak differential client for `parcoachd`.
//!
//! Spawns a real daemon process, opens a seeded random program, then
//! hammers it with single-function edits. After every accepted edit it
//! issues a warm `check` and compares the response — byte for byte —
//! against a cold oracle computed in-process: a from-scratch compile of
//! the mirrored text through a fresh one-shot session with identical
//! pool settings. Any divergence is a correctness bug in the
//! incremental layer (span rebasing, red-green invalidation, module
//! memo keying) and fails the run.
//!
//! `--clients N` (N > 1) switches to the concurrent mode: the daemon is
//! driven over a unix socket by N client threads, each soaking its own
//! document with its own mirror and cold oracle. Byte-identity under
//! contention IS the serial-replay property — every response is
//! compared against an oracle computed with no other client in sight.
//!
//! `--cancel-storm R` appends R rounds per client that race
//! cancellation against real work: checks under `deadlineMs:0` must
//! answer `-32800`, checks raced with `$/cancelRequest` must answer
//! either the byte-exact oracle result or `-32800`, and a final quiet
//! check must match the oracle exactly — cancellation may drop work,
//! never corrupt it.
//!
//! ```text
//! daemon_soak [--server PATH] [--edits N] [--duration SECS] [--seed S]
//!             [--jobs N] [--clients N] [--cancel-storm R] [--out FILE]
//! ```
//!
//! Writes a latency histogram (warm-check microseconds, client-side
//! wall clock including the protocol round-trip) to `--out` as JSON —
//! the artifact the `daemon-soak` CI job uploads.
//!
//! Exit codes: 0 = clean, 1 = divergent response, 3 = usage/spawn error.

use parcoach_core::AnalysisSession;
use parcoach_server::json::{obj, parse, Value};
use parcoach_server::server::check_result_json_v2;
use parcoach_server::Document;
use parcoach_testutil::{Rng, Scenario, ScenarioConfig};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

const USAGE: &str = "\
daemon_soak — differential edit-soak client for parcoachd

USAGE:
    daemon_soak [--server PATH] [--edits N] [--duration SECS] [--seed S]
                [--jobs N] [--clients N] [--cancel-storm R] [--out FILE]

    --server PATH     parcoachd binary (default: next to this executable)
    --edits N         stop after N accepted edits per client (default 200)
    --duration SECS   stop after SECS seconds, whichever comes first
    --seed S          generator seed (default 1)
    --jobs N          pool width for daemon AND oracle (default 2)
    --clients N       concurrent client threads over a unix socket
                      (default 1 = single client over stdio)
    --cancel-storm R  R cancellation rounds per client after the soak
    --out FILE        latency histogram JSON (default soak_histogram.json)
";

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("daemon_soak: {msg}\n{USAGE}");
            ExitCode::from(3)
        }
    }
}

#[derive(Clone)]
struct Opts {
    server: Option<String>,
    edits: usize,
    duration: Option<Duration>,
    seed: u64,
    jobs: usize,
    clients: usize,
    cancel_storm: usize,
    out: String,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        server: None,
        edits: 200,
        duration: None,
        seed: 1,
        jobs: 2,
        clients: 1,
        cancel_storm: 0,
        out: "soak_histogram.json".to_string(),
    };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{}: missing value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--server" => o.server = Some(take(&mut i)?),
            "--edits" => o.edits = num(&take(&mut i)?, "--edits")?,
            "--duration" => {
                o.duration = Some(Duration::from_secs(
                    num(&take(&mut i)?, "--duration")? as u64
                ))
            }
            "--seed" => o.seed = num(&take(&mut i)?, "--seed")? as u64,
            "--jobs" => o.jobs = num(&take(&mut i)?, "--jobs")?.max(1),
            "--clients" => o.clients = num(&take(&mut i)?, "--clients")?.max(1),
            "--cancel-storm" => o.cancel_storm = num(&take(&mut i)?, "--cancel-storm")?,
            "--out" => o.out = take(&mut i)?,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    Ok(o)
}

fn num(v: &str, flag: &str) -> Result<usize, String> {
    v.parse().map_err(|e| format!("{flag}: {e}"))
}

/// A line-delimited JSON-RPC connection — child stdio or unix socket.
struct Conn {
    w: Box<dyn Write + Send>,
    r: Box<dyn BufRead + Send>,
    next_id: i64,
}

impl Conn {
    fn send_raw(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.w, "{line}").map_err(|e| format!("write: {e}"))?;
        self.w.flush().map_err(|e| format!("flush: {e}"))
    }

    /// Write one request; the caller pairs it with [`Conn::recv`].
    fn send(&mut self, method: &str, params: Value) -> Result<i64, String> {
        self.next_id += 1;
        let line = obj([
            ("jsonrpc", Value::from("2.0")),
            ("id", Value::from(self.next_id)),
            ("method", Value::from(method)),
            ("params", params),
        ])
        .to_line();
        self.send_raw(&line)?;
        Ok(self.next_id)
    }

    /// A notification: no id, no response.
    fn notify(&mut self, method: &str, params: Value) -> Result<(), String> {
        let line = obj([
            ("jsonrpc", Value::from("2.0")),
            ("method", Value::from(method)),
            ("params", params),
        ])
        .to_line();
        self.send_raw(&line)
    }

    fn recv(&mut self) -> Result<Value, String> {
        let mut resp = String::new();
        self.r
            .read_line(&mut resp)
            .map_err(|e| format!("read: {e}"))?;
        if resp.is_empty() {
            return Err("daemon closed the connection".into());
        }
        parse(resp.trim_end()).map_err(|e| format!("bad response JSON: {e}"))
    }

    /// One request, one response.
    fn call(&mut self, method: &str, params: Value) -> Result<Value, String> {
        self.send(method, params)?;
        self.recv()
    }
}

/// The daemon process and how clients reach it.
struct Daemon {
    child: Child,
    socket: Option<String>,
    /// Taken by the single stdio client.
    stdio: Option<Conn>,
}

impl Daemon {
    fn spawn(server: &str, opts: &Opts) -> Result<Daemon, String> {
        if opts.clients == 1 {
            let mut child = Command::new(server)
                .args([
                    "--stdio",
                    "--deterministic",
                    "--jobs",
                    &opts.jobs.to_string(),
                ])
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .map_err(|e| format!("spawn {server}: {e}"))?;
            let w = Box::new(child.stdin.take().unwrap());
            let r = Box::new(BufReader::new(child.stdout.take().unwrap()));
            Ok(Daemon {
                child,
                socket: None,
                stdio: Some(Conn { w, r, next_id: 0 }),
            })
        } else {
            let path = std::env::temp_dir()
                .join(format!("parcoachd_soak_{}.sock", std::process::id()))
                .to_string_lossy()
                .into_owned();
            let _ = std::fs::remove_file(&path);
            let child = Command::new(server)
                .args([
                    "--socket",
                    &path,
                    "--deterministic",
                    "--jobs",
                    &opts.jobs.to_string(),
                ])
                .stderr(Stdio::null())
                .spawn()
                .map_err(|e| format!("spawn {server}: {e}"))?;
            let deadline = Instant::now() + Duration::from_secs(10);
            while !std::path::Path::new(&path).exists() {
                if Instant::now() >= deadline {
                    return Err(format!("daemon never bound {path}"));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Ok(Daemon {
                child,
                socket: Some(path),
                stdio: None,
            })
        }
    }

    fn connect(&self) -> Result<Conn, String> {
        connect(self.socket.as_ref().expect("socket mode"))
    }

    fn shutdown(mut self) -> Result<(), String> {
        let mut conn = match self.stdio.take() {
            Some(c) => c,
            None => {
                let mut c = self.connect()?;
                expect_ok(&c.call("initialize", obj([("protocolVersion", Value::from(2i64))]))?)?;
                c
            }
        };
        let _ = conn.call("shutdown", Value::Obj(Vec::new()));
        let _ = self.child.wait();
        Ok(())
    }
}

fn connect(path: &str) -> Result<Conn, String> {
    let s = UnixStream::connect(path).map_err(|e| format!("connect {path}: {e}"))?;
    let r = Box::new(BufReader::new(
        s.try_clone().map_err(|e| format!("socket: {e}"))?,
    ));
    Ok(Conn {
        w: Box::new(s),
        r,
        next_id: 0,
    })
}

/// What one client measured.
#[derive(Default)]
struct ClientStats {
    latencies_us: Vec<u64>,
    accepted: usize,
    rejected: usize,
    incremental: usize,
    divergent: usize,
    cancelled: usize,
}

/// Generate a scenario with at least two helper functions (the editable
/// surface), scanning seeds upward from `seed`.
fn base_scenario(seed: u64, cfg: &ScenarioConfig) -> Scenario {
    (seed..)
        .map(|s| Scenario::generate_with(s, cfg))
        .find(|sc| sc.helpers.len() >= 2)
        .unwrap()
}

/// Render one helper as a full function definition (the `edit` payload),
/// body statements donated by another scenario's helper.
fn render_helper(name: &str, stmts: &[String]) -> String {
    let mut out = format!("fn {name}() {{\n");
    out.push_str("    let acc = 1;\n");
    out.push_str("    let peer = size() - 1 - rank();\n");
    for s in stmts {
        out.push_str(&format!("    {s}\n"));
    }
    out.push('}');
    out
}

/// The per-client differential soak: edit, warm-check over the wire,
/// cold oracle in-process, compare bytes. `seed` differentiates clients
/// so concurrent documents differ.
fn soak_client(conn: &mut Conn, uri: &str, seed: u64, opts: &Opts) -> Result<ClientStats, String> {
    let cfg = ScenarioConfig {
        max_helpers: 4,
        max_main_stmts: 6,
        max_helper_stmts: 3,
    };
    let base = base_scenario(seed, &cfg);
    let text = base.render();
    let helper_names: Vec<String> = base.helpers.iter().map(|h| h.name.clone()).collect();

    expect_ok(&conn.call("initialize", obj([("protocolVersion", Value::from(2i64))]))?)?;
    expect_ok(&conn.call(
        "open",
        obj([
            ("uri", Value::from(uri)),
            ("text", Value::from(text.as_str())),
        ]),
    )?)?;

    // The client-side mirror: same Document type the daemon uses, so
    // splices and fallbacks stay in lockstep; its session is a scratch
    // (the oracle compiles cold every time).
    let mut mirror = Document::open(uri, &text).map_err(|e| format!("mirror open: {e:?}"))?;
    let mut scratch = AnalysisSession::builder().build();

    let mut rng = Rng::new(seed ^ 0x50AC);
    let mut donor_seed = seed.wrapping_mul(31).wrapping_add(1000);
    let started = Instant::now();
    let mut st = ClientStats::default();

    while st.accepted < opts.edits {
        if let Some(d) = opts.duration {
            if started.elapsed() >= d {
                break;
            }
        }
        if st.rejected > 50 * opts.edits + 100 {
            return Err("generator stalled: too many rejected edits".into());
        }
        // Donate a replacement body from a fresh scenario's helper.
        donor_seed += 1;
        let donor = Scenario::generate_with(donor_seed, &cfg);
        let Some(dh) = donor.helpers.first() else {
            continue;
        };
        let func = rng.pick(&helper_names).clone();
        let new_text = render_helper(&func, &dh.stmts);

        let resp = conn.call(
            "edit",
            obj([
                ("uri", Value::from(uri)),
                ("func", Value::from(func.as_str())),
                ("text", Value::from(new_text.as_str())),
            ]),
        )?;
        if resp.get("error").is_some() {
            // The daemon rejected the edit (donor body illegal in this
            // program); the mirror must agree and stay unchanged.
            if mirror.edit(&mut scratch, &func, &new_text).is_ok() {
                eprintln!("daemon rejected an edit the oracle accepts: {func}");
                st.divergent += 1;
            }
            st.rejected += 1;
            continue;
        }
        let inc = resp
            .get("result")
            .and_then(|r| r.get("incremental"))
            .and_then(Value::as_bool)
            .unwrap_or(false);
        st.incremental += inc as usize;
        mirror
            .edit(&mut scratch, &func, &new_text)
            .map_err(|e| format!("oracle rejected an edit the daemon accepted: {e:?}"))?;
        st.accepted += 1;

        // Warm check over the wire, cold oracle in-process.
        let t0 = Instant::now();
        let resp = conn.call("check", obj([("uri", Value::from(uri))]))?;
        st.latencies_us.push(t0.elapsed().as_micros() as u64);
        let got = resp
            .get("result")
            .ok_or("check returned an error")?
            .to_line();
        if got != oracle_check(uri, mirror.text(), opts.jobs)? {
            st.divergent += 1;
            eprintln!(
                "DIVERGENCE after edit #{} of `{func}` in {uri}:\n  warm: {got}",
                st.accepted
            );
        }
    }

    storm_client(
        conn,
        uri,
        &mut mirror,
        &mut scratch,
        &mut st,
        opts,
        &mut rng,
    )?;
    Ok(st)
}

/// The cancellation storm: cancellation must be able to drop work but
/// never corrupt it. Each round alternates an expired-deadline check
/// (must cancel) with a `$/cancelRequest` race (either outcome), and
/// closes with a quiet check that must match the oracle exactly.
fn storm_client(
    conn: &mut Conn,
    uri: &str,
    mirror: &mut Document,
    scratch: &mut AnalysisSession,
    st: &mut ClientStats,
    opts: &Opts,
    rng: &mut Rng,
) -> Result<(), String> {
    if opts.cancel_storm == 0 {
        return Ok(());
    }
    let helper_names: Vec<String> = mirror
        .functions()
        .into_iter()
        .filter(|f| f != "main")
        .collect();
    let cfg = ScenarioConfig {
        max_helpers: 4,
        max_main_stmts: 6,
        max_helper_stmts: 3,
    };
    let mut donor_seed = 0x57AB ^ opts.seed;
    let mut round = 0usize;
    while round < opts.cancel_storm {
        donor_seed += 1;
        let donor = Scenario::generate_with(donor_seed, &cfg);
        let Some(dh) = donor.helpers.first() else {
            continue;
        };
        let func = rng.pick(&helper_names).clone();
        let new_text = render_helper(&func, &dh.stmts);
        let resp = conn.call(
            "edit",
            obj([
                ("uri", Value::from(uri)),
                ("func", Value::from(func.as_str())),
                ("text", Value::from(new_text.as_str())),
            ]),
        )?;
        if resp.get("error").is_some() {
            continue; // illegal donor; try another
        }
        mirror
            .edit(scratch, &func, &new_text)
            .map_err(|e| format!("storm: oracle rejected accepted edit: {e:?}"))?;
        round += 1;

        if round % 2 == 1 {
            // Cache is cold after the edit, so an already-expired budget
            // must cancel at the first phase boundary.
            let resp = conn.call(
                "check",
                obj([("uri", Value::from(uri)), ("deadlineMs", Value::from(0i64))]),
            )?;
            let code = resp
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_i64);
            if code != Some(-32800) {
                st.divergent += 1;
                eprintln!(
                    "storm: deadline 0 answered {} instead of -32800",
                    resp.to_line()
                );
            } else {
                st.cancelled += 1;
            }
        } else {
            // Race a cancel notification against the check: either the
            // oracle bytes or a clean cancellation — nothing else.
            let id = conn.send("check", obj([("uri", Value::from(uri))]))?;
            conn.notify("$/cancelRequest", obj([("id", Value::from(id))]))?;
            let resp = conn.recv()?;
            match resp
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_i64)
            {
                Some(-32800) => st.cancelled += 1,
                Some(c) => {
                    st.divergent += 1;
                    eprintln!("storm: cancel race answered error {c}");
                }
                None => {
                    let got = resp.get("result").ok_or("no result")?.to_line();
                    if got != oracle_check(uri, mirror.text(), opts.jobs)? {
                        st.divergent += 1;
                        eprintln!("storm: cancel race returned divergent bytes");
                    }
                }
            }
        }

        // The quiet check after the dust settles must be exact.
        let resp = conn.call("check", obj([("uri", Value::from(uri))]))?;
        let got = resp
            .get("result")
            .ok_or("storm: final check errored")?
            .to_line();
        if got != oracle_check(uri, mirror.text(), opts.jobs)? {
            st.divergent += 1;
            eprintln!("storm: post-cancellation check diverged in {uri}");
        }
    }
    Ok(())
}

/// The expected v2 `check` result bytes for `text`, computed cold.
fn oracle_check(uri: &str, text: &str, jobs: usize) -> Result<String, String> {
    let fresh = Document::open(uri, text).map_err(|e| format!("oracle recompile: {e:?}"))?;
    let mut cold = AnalysisSession::builder()
        .jobs(jobs)
        .deterministic(true)
        .seed(42)
        .build();
    let report = cold.check_module(fresh.module());
    let rendered = report.render(fresh.source_map());
    Ok(check_result_json_v2(&report, rendered, fresh.source_map()).to_line())
}

fn run(args: &[String]) -> Result<bool, String> {
    let opts = parse_opts(args)?;
    let server = match &opts.server {
        Some(p) => p.clone(),
        None => {
            let mut p = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
            p.set_file_name("parcoachd");
            p.to_string_lossy().into_owned()
        }
    };

    let mut daemon = Daemon::spawn(&server, &opts)?;
    let stats: Vec<ClientStats> = if opts.clients == 1 {
        let mut conn = daemon.stdio.take().expect("stdio conn");
        let st = soak_client(&mut conn, "soak.mh", opts.seed, &opts)?;
        daemon.stdio = Some(conn);
        vec![st]
    } else {
        let path = daemon.socket.clone().expect("socket mode");
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..opts.clients)
                .map(|k| {
                    let path = &path;
                    let opts = &opts;
                    scope.spawn(move || {
                        let mut conn = connect(path)?;
                        let uri = format!("soak_{k}.mh");
                        soak_client(&mut conn, &uri, opts.seed + 101 * k as u64, opts)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(|_| "client panicked".to_string())?)
                .collect::<Result<Vec<_>, String>>()
        })?
    };
    daemon.shutdown()?;

    let mut latencies_us: Vec<u64> = stats.iter().flat_map(|s| s.latencies_us.clone()).collect();
    let (accepted, rejected, incremental, divergent, cancelled) =
        stats.iter().fold((0, 0, 0, 0, 0), |(a, r, i, d, c), s| {
            (
                a + s.accepted,
                r + s.rejected,
                i + s.incremental,
                d + s.divergent,
                c + s.cancelled,
            )
        });
    latencies_us.sort_unstable();
    let histogram = histogram_json(
        &latencies_us,
        opts.clients,
        accepted,
        rejected,
        incremental,
        divergent,
        cancelled,
    );
    std::fs::write(&opts.out, histogram.to_line())
        .map_err(|e| format!("write {}: {e}", opts.out))?;
    println!(
        "soak: {} clients, {accepted} edits ({incremental} incremental, {rejected} rejected), \
         {divergent} divergent, {cancelled} cancelled, p50 {}us p99 {}us — wrote {}",
        opts.clients,
        pct(&latencies_us, 50),
        pct(&latencies_us, 99),
        opts.out
    );
    Ok(divergent == 0 && accepted > 0)
}

fn expect_ok(resp: &Value) -> Result<(), String> {
    match resp.get("error") {
        None => Ok(()),
        Some(e) => Err(format!("request failed: {}", e.to_line())),
    }
}

/// Percentile over sorted samples (nearest-rank).
fn pct(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len()).div_ceil(100).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

fn histogram_json(
    sorted_us: &[u64],
    clients: usize,
    accepted: usize,
    rejected: usize,
    incremental: usize,
    divergent: usize,
    cancelled: usize,
) -> Value {
    // Power-of-two latency buckets: `le_us` upper bounds with counts.
    let mut buckets: Vec<(String, Value)> = Vec::new();
    let mut bound = 64u64;
    let mut idx = 0usize;
    while idx < sorted_us.len() {
        let upto = sorted_us.partition_point(|&v| v <= bound);
        if upto > idx {
            buckets.push((format!("le_{bound}us"), Value::from((upto - idx) as u64)));
        }
        idx = upto;
        if bound > 1 << 40 {
            buckets.push((
                "le_inf".to_string(),
                Value::from((sorted_us.len() - idx) as u64),
            ));
            break;
        }
        bound *= 2;
    }
    obj([
        ("clients", Value::from(clients)),
        ("edits_accepted", Value::from(accepted)),
        ("edits_rejected", Value::from(rejected)),
        ("edits_incremental", Value::from(incremental)),
        ("divergent", Value::from(divergent)),
        ("cancelled", Value::from(cancelled)),
        ("samples", Value::from(sorted_us.len())),
        ("p50_us", Value::from(pct(sorted_us, 50))),
        ("p90_us", Value::from(pct(sorted_us, 90))),
        ("p99_us", Value::from(pct(sorted_us, 99))),
        (
            "max_us",
            Value::from(sorted_us.last().copied().unwrap_or(0)),
        ),
        ("buckets", Value::Obj(buckets)),
    ])
}
