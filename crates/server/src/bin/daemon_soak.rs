//! `daemon_soak` — the edit-soak differential client for `parcoachd`.
//!
//! Spawns a real daemon process, opens a seeded random program, then
//! hammers it with single-function edits. After every accepted edit it
//! issues a warm `check` and compares the response — byte for byte —
//! against a cold oracle computed in-process: a from-scratch compile of
//! the mirrored text through a fresh one-shot session with identical
//! pool settings. Any divergence is a correctness bug in the
//! incremental layer (span rebasing, red-green invalidation, cache
//! keying) and fails the run.
//!
//! ```text
//! daemon_soak [--server PATH] [--edits N] [--duration SECS] [--seed S]
//!             [--jobs N] [--out FILE]
//! ```
//!
//! Writes a latency histogram (warm-check microseconds, client-side
//! wall clock including the protocol round-trip) to `--out` as JSON —
//! the artifact the `daemon-soak` CI job uploads.
//!
//! Exit codes: 0 = clean, 1 = divergent response, 3 = usage/spawn error.

use parcoach_core::AnalysisSession;
use parcoach_server::json::{obj, parse, Value};
use parcoach_server::server::check_result_json;
use parcoach_server::Document;
use parcoach_testutil::{Rng, Scenario, ScenarioConfig};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

const USAGE: &str = "\
daemon_soak — differential edit-soak client for parcoachd

USAGE:
    daemon_soak [--server PATH] [--edits N] [--duration SECS] [--seed S]
                [--jobs N] [--out FILE]

    --server PATH    parcoachd binary (default: next to this executable)
    --edits N        stop after N accepted edits (default 200)
    --duration SECS  stop after SECS seconds, whichever comes first
    --seed S         generator seed (default 1)
    --jobs N         pool width for daemon AND oracle (default 2)
    --out FILE       latency histogram JSON (default soak_histogram.json)
";

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("daemon_soak: {msg}\n{USAGE}");
            ExitCode::from(3)
        }
    }
}

struct Opts {
    server: Option<String>,
    edits: usize,
    duration: Option<Duration>,
    seed: u64,
    jobs: usize,
    out: String,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        server: None,
        edits: 200,
        duration: None,
        seed: 1,
        jobs: 2,
        out: "soak_histogram.json".to_string(),
    };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{}: missing value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--server" => o.server = Some(take(&mut i)?),
            "--edits" => o.edits = num(&take(&mut i)?, "--edits")?,
            "--duration" => {
                o.duration = Some(Duration::from_secs(
                    num(&take(&mut i)?, "--duration")? as u64
                ))
            }
            "--seed" => o.seed = num(&take(&mut i)?, "--seed")? as u64,
            "--jobs" => o.jobs = num(&take(&mut i)?, "--jobs")?.max(1),
            "--out" => o.out = take(&mut i)?,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    Ok(o)
}

fn num(v: &str, flag: &str) -> Result<usize, String> {
    v.parse().map_err(|e| format!("{flag}: {e}"))
}

/// A line-delimited JSON-RPC connection to a child daemon.
struct Client {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    next_id: i64,
}

impl Client {
    fn spawn(server: &str, jobs: usize) -> Result<Client, String> {
        let mut child = Command::new(server)
            .args(["--stdio", "--deterministic", "--jobs", &jobs.to_string()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn {server}: {e}"))?;
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Ok(Client {
            child,
            stdin,
            stdout,
            next_id: 0,
        })
    }

    /// One request, one response. Returns the raw response `Value`.
    fn call(&mut self, method: &str, params: Value) -> Result<Value, String> {
        self.next_id += 1;
        let line = obj([
            ("jsonrpc", Value::from("2.0")),
            ("id", Value::from(self.next_id)),
            ("method", Value::from(method)),
            ("params", params),
        ])
        .to_line();
        writeln!(self.stdin, "{line}").map_err(|e| format!("write: {e}"))?;
        self.stdin.flush().map_err(|e| format!("flush: {e}"))?;
        let mut resp = String::new();
        self.stdout
            .read_line(&mut resp)
            .map_err(|e| format!("read: {e}"))?;
        if resp.is_empty() {
            return Err("daemon closed the connection".into());
        }
        parse(resp.trim_end()).map_err(|e| format!("bad response JSON: {e}"))
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        let _ = self.call("shutdown", Value::Obj(Vec::new()));
        let _ = self.child.wait();
    }
}

/// Generate a scenario with at least two helper functions (the editable
/// surface), scanning seeds upward from `seed`.
fn base_scenario(seed: u64, cfg: &ScenarioConfig) -> Scenario {
    (seed..)
        .map(|s| Scenario::generate_with(s, cfg))
        .find(|sc| sc.helpers.len() >= 2)
        .unwrap()
}

/// Render one helper as a full function definition (the `edit` payload),
/// body statements donated by another scenario's helper.
fn render_helper(name: &str, stmts: &[String]) -> String {
    let mut out = format!("fn {name}() {{\n");
    out.push_str("    let acc = 1;\n");
    out.push_str("    let peer = size() - 1 - rank();\n");
    for s in stmts {
        out.push_str(&format!("    {s}\n"));
    }
    out.push('}');
    out
}

fn run(args: &[String]) -> Result<bool, String> {
    let opts = parse_opts(args)?;
    let server = match &opts.server {
        Some(p) => p.clone(),
        None => {
            let mut p = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
            p.set_file_name("parcoachd");
            p.to_string_lossy().into_owned()
        }
    };

    let cfg = ScenarioConfig {
        max_helpers: 4,
        max_main_stmts: 6,
        max_helper_stmts: 3,
    };
    let base = base_scenario(opts.seed, &cfg);
    let text = base.render();
    let helper_names: Vec<String> = base.helpers.iter().map(|h| h.name.clone()).collect();
    let uri = "soak.mh";

    let mut client = Client::spawn(&server, opts.jobs)?;
    expect_ok(&client.call("initialize", obj([("protocolVersion", Value::from(1i64))]))?)?;
    expect_ok(&client.call(
        "open",
        obj([
            ("uri", Value::from(uri)),
            ("text", Value::from(text.as_str())),
        ]),
    )?)?;

    // The client-side mirror: same Document type the daemon uses, so
    // splices and fallbacks stay in lockstep; its session is a scratch
    // (the oracle compiles cold every time).
    let mut mirror = Document::open(uri, &text).map_err(|e| format!("mirror open: {e:?}"))?;
    let mut scratch = AnalysisSession::builder().build();

    let mut rng = Rng::new(opts.seed ^ 0x50AC);
    let mut donor_seed = opts.seed.wrapping_mul(31).wrapping_add(1000);
    let started = Instant::now();
    let mut latencies_us: Vec<u64> = Vec::new();
    let (mut accepted, mut rejected, mut divergent, mut incremental) =
        (0usize, 0usize, 0usize, 0usize);

    while accepted < opts.edits {
        if let Some(d) = opts.duration {
            if started.elapsed() >= d {
                break;
            }
        }
        if rejected > 50 * opts.edits + 100 {
            return Err("generator stalled: too many rejected edits".into());
        }
        // Donate a replacement body from a fresh scenario's helper.
        donor_seed += 1;
        let donor = Scenario::generate_with(donor_seed, &cfg);
        let Some(dh) = donor.helpers.first() else {
            continue;
        };
        let func = rng.pick(&helper_names).clone();
        let new_text = render_helper(&func, &dh.stmts);

        let resp = client.call(
            "edit",
            obj([
                ("uri", Value::from(uri)),
                ("func", Value::from(func.as_str())),
                ("text", Value::from(new_text.as_str())),
            ]),
        )?;
        if resp.get("error").is_some() {
            // The daemon rejected the edit (donor body illegal in this
            // program); the mirror must agree and stay unchanged.
            if mirror.edit(&mut scratch, &func, &new_text).is_ok() {
                eprintln!("daemon rejected an edit the oracle accepts: {func}");
                divergent += 1;
            }
            rejected += 1;
            continue;
        }
        let inc = resp
            .get("result")
            .and_then(|r| r.get("incremental"))
            .and_then(Value::as_bool)
            .unwrap_or(false);
        incremental += inc as usize;
        mirror
            .edit(&mut scratch, &func, &new_text)
            .map_err(|e| format!("oracle rejected an edit the daemon accepted: {e:?}"))?;
        accepted += 1;

        // Warm check over the wire, cold oracle in-process.
        let t0 = Instant::now();
        let resp = client.call("check", obj([("uri", Value::from(uri))]))?;
        latencies_us.push(t0.elapsed().as_micros() as u64);
        let got = resp
            .get("result")
            .ok_or("check returned an error")?
            .to_line();

        let fresh =
            Document::open(uri, mirror.text()).map_err(|e| format!("oracle recompile: {e:?}"))?;
        let mut cold = AnalysisSession::builder()
            .jobs(opts.jobs)
            .deterministic(true)
            .seed(42)
            .build();
        let report = cold.check_module(fresh.module());
        let rendered = report.render(fresh.source_map());
        let want = check_result_json(&report, rendered).to_line();
        if got != want {
            divergent += 1;
            eprintln!(
                "DIVERGENCE after edit #{accepted} of `{func}`:\n  warm: {got}\n  cold: {want}"
            );
        }
    }

    latencies_us.sort_unstable();
    let histogram = histogram_json(&latencies_us, accepted, rejected, incremental, divergent);
    std::fs::write(&opts.out, histogram.to_line())
        .map_err(|e| format!("write {}: {e}", opts.out))?;
    println!(
        "soak: {accepted} edits ({incremental} incremental, {rejected} rejected), \
         {divergent} divergent, p50 {}us p99 {}us — wrote {}",
        pct(&latencies_us, 50),
        pct(&latencies_us, 99),
        opts.out
    );
    Ok(divergent == 0 && accepted > 0)
}

fn expect_ok(resp: &Value) -> Result<(), String> {
    match resp.get("error") {
        None => Ok(()),
        Some(e) => Err(format!("request failed: {}", e.to_line())),
    }
}

/// Percentile over sorted samples (nearest-rank).
fn pct(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len()).div_ceil(100).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

fn histogram_json(
    sorted_us: &[u64],
    accepted: usize,
    rejected: usize,
    incremental: usize,
    divergent: usize,
) -> Value {
    // Power-of-two latency buckets: `le_us` upper bounds with counts.
    let mut buckets: Vec<(String, Value)> = Vec::new();
    let mut bound = 64u64;
    let mut idx = 0usize;
    while idx < sorted_us.len() {
        let upto = sorted_us.partition_point(|&v| v <= bound);
        if upto > idx {
            buckets.push((format!("le_{bound}us"), Value::from((upto - idx) as u64)));
        }
        idx = upto;
        if bound > 1 << 40 {
            buckets.push((
                "le_inf".to_string(),
                Value::from((sorted_us.len() - idx) as u64),
            ));
            break;
        }
        bound *= 2;
    }
    obj([
        ("edits_accepted", Value::from(accepted)),
        ("edits_rejected", Value::from(rejected)),
        ("edits_incremental", Value::from(incremental)),
        ("divergent", Value::from(divergent)),
        ("samples", Value::from(sorted_us.len())),
        ("p50_us", Value::from(pct(sorted_us, 50))),
        ("p90_us", Value::from(pct(sorted_us, 90))),
        ("p99_us", Value::from(pct(sorted_us, 99))),
        (
            "max_us",
            Value::from(sorted_us.last().copied().unwrap_or(0)),
        ),
        ("buckets", Value::Obj(buckets)),
    ])
}
