//! The `parcoachd` dispatcher: decode → dispatch → encode, one line per
//! request, one line per response.
//!
//! A [`Server`] is a *per-connection view* over the process-wide
//! [`ServerShared`]: it holds only the connection's negotiated protocol
//! version and shutdown flag, while documents — each paired with its own
//! incremental [`AnalysisSession`](parcoach_core::AnalysisSession) and
//! an epoch-keyed result cache — live in the shared map (see
//! [`crate::sched`]). Any number of connections dispatch concurrently:
//! different documents in parallel, same-document requests serialized on
//! the document lock.
//!
//! Two protocol revisions are spoken (see [`PROTOCOL_VERSION`]):
//! v1 responses are byte-frozen (golden-tested), v2 is LSP-shaped —
//! warnings carry `severity`, zero-based `{line, character}` ranges and
//! `relatedInformation`, and requests may carry a `deadlineMs` budget.
//!
//! Every response except `timings` is a pure function of the request
//! history of its document, so a `--deterministic` server produces
//! byte-identical transcripts across runs and pool widths (`timings`
//! reports measured wall clock, which no scheduler can promise twice).

use crate::document::{DocError, Document};
use crate::json::{obj, Value};
use crate::proto::{self, code, Request, PROTOCOL_VERSION, PROTOCOL_VERSION_LEGACY};
use crate::sched::{CheckCache, ServerShared};
use parcoach_core::{CancelToken, StaticReport, WarningKind};
use parcoach_front::{SourceMap, Span};
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

/// Configuration mirrored from the daemon's command line.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Analysis pool width (`None`: the process-wide default).
    pub jobs: Option<usize>,
    /// Deterministic pool scheduling and byte-stable transcripts.
    pub deterministic: bool,
    /// Pool seed under `deterministic`.
    pub seed: u64,
    /// Per-connection request-queue bound; overflow answers
    /// [`code::SERVER_BUSY`].
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            jobs: None,
            deterministic: false,
            seed: 0,
            queue_capacity: 64,
        }
    }
}

/// One connection's view of the resident analysis service.
pub struct Server {
    shared: Arc<ServerShared>,
    /// Negotiated protocol version; `None` until a successful
    /// `initialize`.
    protocol: Option<i64>,
    /// Document of this connection's last `check` (what `timings`
    /// reports on).
    last_checked: Option<String>,
    shutdown: bool,
}

impl Server {
    /// A standalone server with its own state (one-connection deployments
    /// and tests). Multi-connection daemons build one [`ServerShared`]
    /// and a [`Server::with_shared`] view per connection.
    pub fn new(config: ServerConfig) -> Server {
        Server::with_shared(ServerShared::new(config))
    }

    /// A view over existing shared state; the connection starts
    /// uninitialized, whatever other connections have negotiated.
    pub fn with_shared(shared: Arc<ServerShared>) -> Server {
        Server {
            shared,
            protocol: None,
            last_checked: None,
            shutdown: false,
        }
    }

    /// The shared state, for spawning sibling connection views.
    pub fn shared(&self) -> Arc<ServerShared> {
        Arc::clone(&self.shared)
    }

    /// Whether `shutdown` has been acknowledged on this connection.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown
    }

    pub(crate) fn queue_capacity(&self) -> usize {
        self.shared.config().queue_capacity.max(1)
    }

    /// Handle one request line, producing one response line.
    pub fn handle_line(&mut self, line: &str) -> String {
        self.handle_line_cancellable(line, &CancelToken::new())
    }

    /// [`Server::handle_line`] under a cancellation token: a `check`/
    /// `diagnostics` in flight observes the token at analysis phase
    /// boundaries and answers [`code::REQUEST_CANCELLED`] if it fires.
    pub fn handle_line_cancellable(&mut self, line: &str, token: &CancelToken) -> String {
        let req = match proto::parse_request(line) {
            Ok(r) => r,
            Err((c, msg)) => return proto::err(&Value::Null, c, &msg, None),
        };
        self.dispatch(&req, token)
    }

    fn dispatch(&mut self, req: &Request, token: &CancelToken) -> String {
        if self.protocol.is_none() && req.method != "initialize" {
            return proto::err(
                &req.id,
                code::NOT_INITIALIZED,
                "server not initialized (send `initialize` first)",
                None,
            );
        }
        match req.method.as_str() {
            "initialize" => self.initialize(req),
            "open" => self.open(req),
            "edit" => self.edit(req),
            "check" => self.check(req, token),
            "diagnostics" => self.diagnostics(req, token),
            "timings" => self.timings(req),
            "shutdown" => {
                self.shutdown = true;
                self.shared.begin_drain();
                proto::ok(&req.id, Value::Null)
            }
            other => proto::err(
                &req.id,
                code::METHOD_NOT_FOUND,
                &format!("unknown method `{other}`"),
                None,
            ),
        }
    }

    fn initialize(&mut self, req: &Request) -> String {
        let version = req.params.get("protocolVersion").and_then(Value::as_i64);
        let version = match version {
            Some(v) if v == PROTOCOL_VERSION || v == PROTOCOL_VERSION_LEGACY => v,
            other => {
                return proto::err(
                    &req.id,
                    code::VERSION_MISMATCH,
                    &format!(
                        "unsupported protocolVersion {other:?} (server speaks \
                         {PROTOCOL_VERSION_LEGACY} and {PROTOCOL_VERSION})"
                    ),
                    None,
                );
            }
        };
        self.protocol = Some(version);
        let deterministic = self.shared.config().deterministic;
        // The v1 response shape is frozen: bytes golden-tested since
        // protocol 1 shipped. v2 adds the capabilities new clients probe.
        let capabilities = if version == PROTOCOL_VERSION_LEGACY {
            obj([
                ("incrementalEdits", Value::from(true)),
                ("deterministic", Value::from(deterministic)),
            ])
        } else {
            obj([
                ("incrementalEdits", Value::from(true)),
                ("deterministic", Value::from(deterministic)),
                ("positionEncoding", Value::from("utf-8")),
                ("cancelRequest", Value::from(true)),
                ("deadlineMs", Value::from(true)),
                ("concurrentClients", Value::from(true)),
            ])
        };
        proto::ok(
            &req.id,
            obj([
                ("protocolVersion", Value::from(version)),
                ("serverName", Value::from("parcoachd")),
                ("serverVersion", Value::from(env!("CARGO_PKG_VERSION"))),
                ("capabilities", capabilities),
            ]),
        )
    }

    fn open(&mut self, req: &Request) -> String {
        let Some(uri) = req.params.get("uri").and_then(Value::as_str) else {
            return invalid_params(&req.id, "open: missing string `uri`");
        };
        let Some(text) = req.params.get("text").and_then(Value::as_str) else {
            return invalid_params(&req.id, "open: missing string `text`");
        };
        match Document::open(uri, text) {
            Ok(doc) => {
                let functions = doc
                    .functions()
                    .into_iter()
                    .map(Value::from)
                    .collect::<Vec<_>>();
                // A re-open replaces the entry wholesale: fresh session,
                // fresh epoch — exactly what a cold daemon would hold.
                self.shared.insert_doc(uri, doc);
                proto::ok(&req.id, obj([("functions", Value::Arr(functions))]))
            }
            Err(e) => doc_error(&req.id, e),
        }
    }

    fn edit(&mut self, req: &Request) -> String {
        let Some(uri) = req.params.get("uri").and_then(Value::as_str) else {
            return invalid_params(&req.id, "edit: missing string `uri`");
        };
        let Some(func) = req.params.get("func").and_then(Value::as_str) else {
            return invalid_params(&req.id, "edit: missing string `func`");
        };
        let Some(text) = req.params.get("text").and_then(Value::as_str) else {
            return invalid_params(&req.id, "edit: missing string `text`");
        };
        let Some(entry) = self.shared.doc(uri) else {
            return unknown_doc(&req.id, uri);
        };
        let mut st = entry.state.lock().unwrap();
        let st = &mut *st;
        match st.doc.edit(&mut st.session, func, text) {
            Ok(out) => {
                // New snapshot: concurrent readers either saw the old
                // epoch's cache or will recompute against the new text.
                st.epoch += 1;
                st.cache = None;
                proto::ok(
                    &req.id,
                    obj([
                        ("incremental", Value::from(out.incremental)),
                        ("delta", Value::from(out.delta)),
                    ]),
                )
            }
            Err(e) => doc_error(&req.id, e),
        }
    }

    fn check(&mut self, req: &Request, token: &CancelToken) -> String {
        match self.run_check(req, token) {
            Ok((clean, warnings, rendered)) => proto::ok(
                &req.id,
                obj([
                    ("clean", Value::from(clean)),
                    ("warnings", warnings),
                    ("rendered", Value::from(rendered)),
                ]),
            ),
            Err(resp) => resp,
        }
    }

    fn diagnostics(&mut self, req: &Request, token: &CancelToken) -> String {
        match self.run_check(req, token) {
            Ok((clean, warnings, _)) => proto::ok(
                &req.id,
                obj([("clean", Value::from(clean)), ("warnings", warnings)]),
            ),
            Err(resp) => resp,
        }
    }

    /// Shared `check`/`diagnostics` body. Serves the epoch-keyed cache
    /// when the document has not changed since the last analysis
    /// (concurrent readers of a quiet document never recompute);
    /// otherwise runs the analysis under the document lock, honoring the
    /// connection token tightened by an optional `deadlineMs` budget.
    fn run_check(
        &mut self,
        req: &Request,
        token: &CancelToken,
    ) -> Result<(bool, Value, String), String> {
        let Some(uri) = req.params.get("uri").and_then(Value::as_str) else {
            return Err(invalid_params(&req.id, "check: missing string `uri`"));
        };
        let Some(entry) = self.shared.doc(uri) else {
            return Err(unknown_doc(&req.id, uri));
        };
        let token = match req.params.get("deadlineMs").and_then(Value::as_i64) {
            Some(ms) => token.bounded(Duration::from_millis(ms.max(0) as u64)),
            None => token.clone(),
        };
        let mut st = entry.state.lock().unwrap();
        let st = &mut *st;
        if st.cache.as_ref().is_none_or(|c| c.epoch != st.epoch) {
            let report = st
                .session
                .check_module_cancellable(st.doc.module(), &token)
                .map_err(|_| {
                    proto::err(&req.id, code::REQUEST_CANCELLED, "request cancelled", None)
                })?;
            let rendered = report.render(st.doc.source_map());
            st.cache = Some(CheckCache {
                epoch: st.epoch,
                report,
                rendered,
            });
        }
        self.last_checked = Some(uri.to_string());
        let cache = st.cache.as_ref().expect("cache just filled");
        let warnings = if self.protocol == Some(PROTOCOL_VERSION_LEGACY) {
            warnings_json(&cache.report)
        } else {
            warnings_json_v2(&cache.report, st.doc.source_map())
        };
        Ok((cache.report.is_clean(), warnings, cache.rendered.clone()))
    }

    fn timings(&mut self, req: &Request) -> String {
        let entry = self.last_checked.as_ref().and_then(|u| self.shared.doc(u));
        let Some(entry) = entry else {
            return proto::ok(&req.id, obj([("available", Value::from(false))]));
        };
        let st = entry.state.lock().unwrap();
        let Some(t) = st.session.timings() else {
            return proto::ok(&req.id, obj([("available", Value::from(false))]));
        };
        let phases = t
            .lines()
            .iter()
            .map(|(name, dur)| (format!("{name}_ns"), Value::from(dur.as_nanos() as u64)))
            .collect::<Vec<_>>();
        let stats = st.session.query_stats();
        proto::ok(
            &req.id,
            obj([
                ("available", Value::from(true)),
                ("phases", Value::Obj(phases)),
                (
                    "cache",
                    obj([
                        ("pwHits", Value::from(stats.pw_hits)),
                        ("pwMisses", Value::from(stats.pw_misses)),
                        ("cfgHits", Value::from(stats.cfg_hits)),
                        ("cfgMisses", Value::from(stats.cfg_misses)),
                        ("moduleHits", Value::from(stats.comm_hits + stats.req_hits)),
                        (
                            "moduleMisses",
                            Value::from(stats.comm_misses + stats.req_misses),
                        ),
                        ("p2pHits", Value::from(stats.p2p_hits)),
                        ("p2pMisses", Value::from(stats.p2p_misses)),
                        ("greened", Value::from(stats.greened)),
                        ("invalidated", Value::from(stats.invalidated)),
                    ]),
                ),
            ]),
        )
    }

    /// Serve line-delimited requests from `input`, writing one response
    /// line each to `output`, until EOF or `shutdown`. This is the
    /// simple *serial* driver; concurrent connections with cancellation
    /// and backpressure go through
    /// [`drive_connection`](crate::sched::drive_connection).
    pub fn serve<R: BufRead, W: Write>(&mut self, input: R, mut output: W) -> std::io::Result<()> {
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let resp = self.handle_line(&line);
            output.write_all(resp.as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
            if self.shutdown {
                break;
            }
        }
        Ok(())
    }
}

/// The protocol-v1 `check` result object. Public so the soak client can
/// construct the *expected* response from an independently compiled
/// document and compare transcripts byte-for-byte.
pub fn check_result_json(report: &StaticReport, rendered: String) -> Value {
    obj([
        ("clean", Value::from(report.is_clean())),
        ("warnings", warnings_json(report)),
        ("rendered", Value::from(rendered)),
    ])
}

/// The protocol-v2 `check` result object ([`check_result_json`] with
/// LSP-shaped warnings).
pub fn check_result_json_v2(report: &StaticReport, rendered: String, sm: &SourceMap) -> Value {
    obj([
        ("clean", Value::from(report.is_clean())),
        ("warnings", warnings_json_v2(report, sm)),
        ("rendered", Value::from(rendered)),
    ])
}

/// The protocol-v1 structured warning array shared by `check` and
/// `diagnostics` (and printed by `parcoachc diagnostics`): discovery
/// order, which the deterministic pipeline fixes across pool widths.
pub fn warnings_json(report: &StaticReport) -> Value {
    Value::Arr(
        report
            .warnings
            .iter()
            .map(|w| {
                obj([
                    ("func", Value::from(w.func.as_str())),
                    ("code", Value::from(w.kind.code())),
                    ("lo", Value::from(w.span.lo)),
                    ("hi", Value::from(w.span.hi)),
                    ("message", Value::from(w.message.as_str())),
                ])
            })
            .collect(),
    )
}

/// The protocol-v2 warning array: LSP-shaped, with `severity`,
/// zero-based `{line, character}` ranges resolved through the source
/// map, and `relatedInformation` for the secondary locations.
pub fn warnings_json_v2(report: &StaticReport, sm: &SourceMap) -> Value {
    Value::Arr(
        report
            .warnings
            .iter()
            .map(|w| {
                let related = w
                    .related
                    .iter()
                    .map(|(span, msg)| {
                        obj([
                            ("range", range_json(sm, *span)),
                            ("message", Value::from(msg.as_str())),
                        ])
                    })
                    .collect();
                obj([
                    ("func", Value::from(w.func.as_str())),
                    ("code", Value::from(w.kind.code())),
                    ("severity", Value::from(severity(w.kind))),
                    ("range", range_json(sm, w.span)),
                    ("message", Value::from(w.message.as_str())),
                    ("relatedInformation", Value::Arr(related)),
                ])
            })
            .collect(),
    )
}

/// LSP `DiagnosticSeverity`: 1 = Error for the kinds that describe a
/// deadlock or an invariant violation, 2 = Warning for the hazard kinds
/// (nondeterministic order, risky context) the analysis reports
/// conservatively.
fn severity(kind: WarningKind) -> i64 {
    match kind {
        WarningKind::CollectiveMismatch
        | WarningKind::BarrierDivergence
        | WarningKind::InsufficientThreadLevel
        | WarningKind::UnmatchedP2p
        | WarningKind::P2pOrder
        | WarningKind::UnwaitedRequest
        | WarningKind::WaitWithoutPost => 1,
        WarningKind::MultithreadedCollective
        | WarningKind::NestedParallelismCollective
        | WarningKind::MultithreadedCall
        | WarningKind::ConcurrentCollectives
        | WarningKind::SelfConcurrentRegion => 2,
    }
}

/// A zero-based LSP range for `span` (the source map reports 1-based
/// line/column).
fn range_json(sm: &SourceMap, span: Span) -> Value {
    let pos = |offset: u32| {
        let lc = sm.line_col(offset);
        obj([
            ("line", Value::from(lc.line.saturating_sub(1))),
            ("character", Value::from(lc.col.saturating_sub(1))),
        ])
    };
    obj([("start", pos(span.lo)), ("end", pos(span.hi))])
}

fn invalid_params(id: &Value, msg: &str) -> String {
    proto::err(id, code::INVALID_PARAMS, msg, None)
}

fn unknown_doc(id: &Value, uri: &str) -> String {
    proto::err(
        id,
        code::UNKNOWN_TARGET,
        &format!("no open document `{uri}`"),
        None,
    )
}

fn doc_error(id: &Value, e: DocError) -> String {
    match e {
        DocError::UnknownFunction(f) => proto::err(
            id,
            code::UNKNOWN_TARGET,
            &format!("no function `{f}` in document"),
            None,
        ),
        DocError::Compile { rendered } => proto::err(
            id,
            code::COMPILE_ERROR,
            "text does not compile",
            Some(obj([("diagnostics", Value::from(rendered))])),
        ),
    }
}
