//! The `parcoachd` request loop: decode → dispatch → encode, one line
//! per request, one line per response.
//!
//! All state lives in [`Server`]: the resident [`Document`]s and one
//! incremental [`AnalysisSession`] whose query cache serves the *active*
//! document (the last one checked). Checking a different document
//! invalidates the cache first — the per-function memo is keyed by
//! function name, and two documents may disagree about what `main` is.
//! The expected deployment is one hot document per daemon (an editor
//! buffer, a CI shard), where the cache survives every edit.
//!
//! Every response except `timings` is a pure function of the request
//! history, so a `--deterministic` server produces byte-identical
//! transcripts across runs and pool widths (`timings` reports measured
//! wall clock, which no scheduler can promise twice).

use crate::document::{DocError, Document};
use crate::json::{obj, Value};
use crate::proto::{self, code, Request, PROTOCOL_VERSION};
use parcoach_core::{AnalysisSession, StaticReport};
use std::collections::HashMap;
use std::io::{BufRead, Write};

/// Configuration mirrored from the daemon's command line.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Analysis pool width (`None`: the process-wide default).
    pub jobs: Option<usize>,
    /// Deterministic pool scheduling and byte-stable transcripts.
    pub deterministic: bool,
    /// Pool seed under `deterministic`.
    pub seed: u64,
}

/// A resident analysis service.
pub struct Server {
    config: ServerConfig,
    session: AnalysisSession,
    docs: HashMap<String, Document>,
    /// The document the session cache currently describes.
    active_uri: Option<String>,
    initialized: bool,
    shutdown: bool,
}

impl Server {
    pub fn new(config: ServerConfig) -> Server {
        let mut b = AnalysisSession::builder().incremental(true);
        if let Some(jobs) = config.jobs {
            b = b.jobs(jobs);
        }
        if config.deterministic {
            b = b.deterministic(true).seed(config.seed);
        }
        Server {
            config,
            session: b.build(),
            docs: HashMap::new(),
            active_uri: None,
            initialized: false,
            shutdown: false,
        }
    }

    /// Whether `shutdown` has been acknowledged.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown
    }

    /// Handle one request line, producing one response line.
    pub fn handle_line(&mut self, line: &str) -> String {
        let req = match proto::parse_request(line) {
            Ok(r) => r,
            Err((c, msg)) => return proto::err(&Value::Null, c, &msg, None),
        };
        self.dispatch(&req)
    }

    fn dispatch(&mut self, req: &Request) -> String {
        if !self.initialized && req.method != "initialize" {
            return proto::err(
                &req.id,
                code::NOT_INITIALIZED,
                "server not initialized (send `initialize` first)",
                None,
            );
        }
        match req.method.as_str() {
            "initialize" => self.initialize(req),
            "open" => self.open(req),
            "edit" => self.edit(req),
            "check" => self.check(req),
            "diagnostics" => self.diagnostics(req),
            "timings" => self.timings(req),
            "shutdown" => {
                self.shutdown = true;
                proto::ok(&req.id, Value::Null)
            }
            other => proto::err(
                &req.id,
                code::METHOD_NOT_FOUND,
                &format!("unknown method `{other}`"),
                None,
            ),
        }
    }

    fn initialize(&mut self, req: &Request) -> String {
        let version = req.params.get("protocolVersion").and_then(Value::as_i64);
        match version {
            Some(v) if v == PROTOCOL_VERSION => {}
            other => {
                return proto::err(
                    &req.id,
                    code::VERSION_MISMATCH,
                    &format!(
                        "unsupported protocolVersion {:?} (server speaks {PROTOCOL_VERSION})",
                        other
                    ),
                    None,
                );
            }
        }
        self.initialized = true;
        proto::ok(
            &req.id,
            obj([
                ("protocolVersion", Value::from(PROTOCOL_VERSION)),
                ("serverName", Value::from("parcoachd")),
                ("serverVersion", Value::from(env!("CARGO_PKG_VERSION"))),
                (
                    "capabilities",
                    obj([
                        ("incrementalEdits", Value::from(true)),
                        ("deterministic", Value::from(self.config.deterministic)),
                    ]),
                ),
            ]),
        )
    }

    fn open(&mut self, req: &Request) -> String {
        let Some(uri) = req.params.get("uri").and_then(Value::as_str) else {
            return invalid_params(&req.id, "open: missing string `uri`");
        };
        let Some(text) = req.params.get("text").and_then(Value::as_str) else {
            return invalid_params(&req.id, "open: missing string `text`");
        };
        match Document::open(uri, text) {
            Ok(doc) => {
                let functions = doc
                    .functions()
                    .into_iter()
                    .map(Value::from)
                    .collect::<Vec<_>>();
                // Re-opening the active document resets its cache.
                if self.active_uri.as_deref() == Some(uri) {
                    self.session.invalidate_all();
                }
                self.docs.insert(uri.to_string(), doc);
                proto::ok(&req.id, obj([("functions", Value::Arr(functions))]))
            }
            Err(e) => doc_error(&req.id, e),
        }
    }

    fn edit(&mut self, req: &Request) -> String {
        let Some(uri) = req.params.get("uri").and_then(Value::as_str) else {
            return invalid_params(&req.id, "edit: missing string `uri`");
        };
        let Some(func) = req.params.get("func").and_then(Value::as_str) else {
            return invalid_params(&req.id, "edit: missing string `func`");
        };
        let Some(text) = req.params.get("text").and_then(Value::as_str) else {
            return invalid_params(&req.id, "edit: missing string `text`");
        };
        let Some(doc) = self.docs.get_mut(uri) else {
            return unknown_doc(&req.id, uri);
        };
        // An edit to a non-active document must not poison the active
        // cache; the session is only consulted for the active one.
        if self.active_uri.as_deref() == Some(uri) {
            match doc.edit(&mut self.session, func, text) {
                Ok(out) => proto::ok(
                    &req.id,
                    obj([
                        ("incremental", Value::from(out.incremental)),
                        ("delta", Value::from(out.delta)),
                    ]),
                ),
                Err(e) => doc_error(&req.id, e),
            }
        } else {
            let mut scratch = AnalysisSession::builder().build();
            match doc.edit(&mut scratch, func, text) {
                Ok(out) => proto::ok(
                    &req.id,
                    obj([
                        ("incremental", Value::from(out.incremental)),
                        ("delta", Value::from(out.delta)),
                    ]),
                ),
                Err(e) => doc_error(&req.id, e),
            }
        }
    }

    fn check(&mut self, req: &Request) -> String {
        match self.run_check(req) {
            Ok((report, rendered)) => proto::ok(&req.id, check_result_json(&report, rendered)),
            Err(resp) => resp,
        }
    }

    fn diagnostics(&mut self, req: &Request) -> String {
        match self.run_check(req) {
            Ok((report, _)) => proto::ok(
                &req.id,
                obj([
                    ("clean", Value::from(report.is_clean())),
                    ("warnings", warnings_json(&report)),
                ]),
            ),
            Err(resp) => resp,
        }
    }

    /// Shared `check`/`diagnostics` body: activate the document (cache
    /// reset if it changed), analyze, render.
    fn run_check(&mut self, req: &Request) -> Result<(StaticReport, String), String> {
        let Some(uri) = req.params.get("uri").and_then(Value::as_str) else {
            return Err(invalid_params(&req.id, "check: missing string `uri`"));
        };
        let Some(doc) = self.docs.get(uri) else {
            return Err(unknown_doc(&req.id, uri));
        };
        if self.active_uri.as_deref() != Some(uri) {
            self.session.invalidate_all();
            self.active_uri = Some(uri.to_string());
        }
        let report = self.session.check_module(doc.module());
        let rendered = report.render(doc.source_map());
        Ok((report, rendered))
    }

    fn timings(&mut self, req: &Request) -> String {
        let Some(t) = self.session.timings() else {
            return proto::ok(&req.id, obj([("available", Value::from(false))]));
        };
        let phases = t
            .lines()
            .iter()
            .map(|(name, dur)| (format!("{name}_ns"), Value::from(dur.as_nanos() as u64)))
            .collect::<Vec<_>>();
        let stats = self.session.query_stats();
        proto::ok(
            &req.id,
            obj([
                ("available", Value::from(true)),
                ("phases", Value::Obj(phases)),
                (
                    "cache",
                    obj([
                        ("pwHits", Value::from(stats.pw_hits)),
                        ("pwMisses", Value::from(stats.pw_misses)),
                        ("cfgHits", Value::from(stats.cfg_hits)),
                        ("cfgMisses", Value::from(stats.cfg_misses)),
                        ("greened", Value::from(stats.greened)),
                        ("invalidated", Value::from(stats.invalidated)),
                    ]),
                ),
            ]),
        )
    }

    /// Serve line-delimited requests from `input`, writing one response
    /// line each to `output`, until EOF or `shutdown`.
    pub fn serve<R: BufRead, W: Write>(&mut self, input: R, mut output: W) -> std::io::Result<()> {
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let resp = self.handle_line(&line);
            output.write_all(resp.as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
            if self.shutdown {
                break;
            }
        }
        Ok(())
    }
}

/// The `check` result object. Public so the soak client can construct
/// the *expected* response from an independently compiled document and
/// compare transcripts byte-for-byte.
pub fn check_result_json(report: &StaticReport, rendered: String) -> Value {
    obj([
        ("clean", Value::from(report.is_clean())),
        ("warnings", warnings_json(report)),
        ("rendered", Value::from(rendered)),
    ])
}

/// The structured warning array shared by `check` and `diagnostics`
/// (and printed by `parcoachc diagnostics`): discovery order, which the
/// deterministic pipeline fixes across pool widths.
pub fn warnings_json(report: &StaticReport) -> Value {
    Value::Arr(
        report
            .warnings
            .iter()
            .map(|w| {
                obj([
                    ("func", Value::from(w.func.as_str())),
                    ("code", Value::from(w.kind.code())),
                    ("lo", Value::from(w.span.lo)),
                    ("hi", Value::from(w.span.hi)),
                    ("message", Value::from(w.message.as_str())),
                ])
            })
            .collect(),
    )
}

fn invalid_params(id: &Value, msg: &str) -> String {
    proto::err(id, code::INVALID_PARAMS, msg, None)
}

fn unknown_doc(id: &Value, uri: &str) -> String {
    proto::err(
        id,
        code::UNKNOWN_TARGET,
        &format!("no open document `{uri}`"),
        None,
    )
}

fn doc_error(id: &Value, e: DocError) -> String {
    match e {
        DocError::UnknownFunction(f) => proto::err(
            id,
            code::UNKNOWN_TARGET,
            &format!("no function `{f}` in document"),
            None,
        ),
        DocError::Compile { rendered } => proto::err(
            id,
            code::COMPILE_ERROR,
            "text does not compile",
            Some(obj([("diagnostics", Value::from(rendered))])),
        ),
    }
}
