//! Minimal JSON for the wire protocol — no external dependencies.
//!
//! Two properties matter more than generality:
//!
//! * **Ordered objects.** [`Value::Obj`] is a `Vec<(String, Value)>`, not
//!   a map: writing preserves insertion order, so a response built the
//!   same way is the same *bytes* — the substrate of the protocol's
//!   byte-determinism guarantee (`--deterministic` daemon runs are
//!   diffable line-by-line).
//! * **Total parsing.** Any input either parses or returns a positioned
//!   [`ParseError`]; the server maps the latter to JSON-RPC `-32700`
//!   without panicking, whatever the client sends.
//!
//! Numbers are kept as `f64` (like JavaScript); integers up to 2^53
//! round-trip exactly, which covers every id, count and nanosecond
//! duration the protocol carries. Writing renders integral values
//! without a decimal point so `17` stays `17`.

use std::fmt::Write as _;

/// A JSON value with insertion-ordered objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match; objects built by this crate
    /// never contain duplicate keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an integer, if it is a number with no fractional
    /// part (protocol ids and versions travel this way).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize to a single line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_num(*n, out),
            Value::Str(s) => write_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

/// Build an ordered object literal: `obj([("a", 1.into()), ...])`.
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn write_num(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

/// Recursion guard: protocol messages are shallow; anything deeper is
/// hostile or broken input, and rejecting it beats a stack overflow.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_lit(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.expect_lit("null", Value::Null),
            Some(b't') => self.expect_lit("true", Value::Bool(true)),
            Some(b'f') => self.expect_lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `]`"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // {
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:`"));
            }
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Obj(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `}`"));
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // "
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte stream: back up and
                    // take the full code point.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("bad hex digit in \\u escape")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_ordered_object() {
        let v = obj([
            ("b", Value::from(2i64)),
            ("a", Value::Arr(vec![Value::Null, Value::Bool(true)])),
            ("s", Value::from("x\"y\nz")),
        ]);
        let line = v.to_line();
        assert_eq!(line, r#"{"b":2,"a":[null,true],"s":"x\"y\nz"}"#);
        assert_eq!(parse(&line).unwrap(), v);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Value::from(17i64).to_line(), "17");
        assert_eq!(Value::Num(1.5).to_line(), "1.5");
        assert_eq!(Value::from(u64::from(u32::MAX)).to_line(), "4294967295");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""aé😀\t""#).unwrap();
        assert_eq!(v, Value::Str("aé😀\t".to_string()));
    }

    #[test]
    fn rejects_malformed_input_with_position() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "nul", "1 2", "{'a':1}"] {
            let err = parse(bad).unwrap_err();
            assert!(!err.message.is_empty(), "{bad}");
        }
        // Deep nesting is rejected, not overflowed.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn duplicate_free_get_and_typed_accessors() {
        let v = parse(r#"{"id":7,"ok":true,"name":"d","x":1.25}"#).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_i64), Some(7));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("name").and_then(Value::as_str), Some("d"));
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(1.25));
        assert_eq!(v.get("x").and_then(Value::as_i64), None);
        assert_eq!(v.get("missing"), None);
    }
}
