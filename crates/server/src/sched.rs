//! Shared server state and the per-connection scheduler.
//!
//! Two halves:
//!
//! * [`ServerShared`] — the state every connection's [`Server`] view
//!   dispatches against: a read-write map of resident documents, each
//!   behind its own [`DocEntry`]. The *snapshot scheme* is epoch-based:
//!   every mutation (`open`, `edit`) bumps the entry's epoch, and a
//!   `check` whose epoch matches the cached one is served straight from
//!   the cache under the entry lock — concurrent readers of an unchanged
//!   document never re-run the analysis. Different documents proceed in
//!   parallel; same-document requests serialize on the entry lock, which
//!   is what byte-deterministic transcripts per document require.
//! * [`drive_connection`] — the per-connection request scheduler: the
//!   calling thread reads lines and enqueues them on a *bounded* queue
//!   (overflow answers [`code::SERVER_BUSY`] immediately), a cached
//!   worker thread drains the queue in order, and `$/cancelRequest`
//!   notifications bypass the queue to flip the [`CancelToken`] of the
//!   matching in-flight or queued request. EOF, `shutdown` and write
//!   errors (client gone) all end the connection gracefully — never the
//!   process.

use crate::document::Document;
use crate::json::Value;
use crate::proto::{self, code};
use crate::server::{Server, ServerConfig};
use parcoach_core::{AnalysisSession, CancelToken, StaticReport};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// Build the per-document analysis session a [`ServerConfig`] asks for.
pub(crate) fn build_session(config: &ServerConfig) -> AnalysisSession {
    let mut b = AnalysisSession::builder().incremental(true);
    if let Some(jobs) = config.jobs {
        b = b.jobs(jobs);
    }
    if config.deterministic {
        b = b.deterministic(true).seed(config.seed);
    }
    b.build()
}

/// A `check` result memoized at the epoch it was computed for.
pub(crate) struct CheckCache {
    pub(crate) epoch: u64,
    pub(crate) report: StaticReport,
    pub(crate) rendered: String,
}

/// One resident document plus everything derived from it. The analysis
/// session lives *with* the document (its memo store is keyed by this
/// document's function names), so switching documents never poisons a
/// cache — there is no "active" document any more.
pub struct DocEntry {
    pub(crate) state: Mutex<DocState>,
}

pub(crate) struct DocState {
    pub(crate) doc: Document,
    pub(crate) session: AnalysisSession,
    /// Bumped by every successful `open`/`edit`; the snapshot counter
    /// [`CheckCache`] is keyed by.
    pub(crate) epoch: u64,
    pub(crate) cache: Option<CheckCache>,
}

impl DocEntry {
    fn new(doc: Document, config: &ServerConfig) -> DocEntry {
        DocEntry {
            state: Mutex::new(DocState {
                doc,
                session: build_session(config),
                epoch: 0,
                cache: None,
            }),
        }
    }
}

/// State shared by every connection of one daemon process.
pub struct ServerShared {
    config: ServerConfig,
    docs: RwLock<HashMap<String, Arc<DocEntry>>>,
    draining: AtomicBool,
    active_connections: AtomicUsize,
}

impl ServerShared {
    pub fn new(config: ServerConfig) -> Arc<ServerShared> {
        Arc::new(ServerShared {
            config,
            docs: RwLock::new(HashMap::new()),
            draining: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
        })
    }

    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Look up a resident document (read lock only).
    pub(crate) fn doc(&self, uri: &str) -> Option<Arc<DocEntry>> {
        self.docs.read().unwrap().get(uri).map(Arc::clone)
    }

    /// Install (or replace) a document; a re-open starts a fresh session
    /// and epoch, exactly like a cold daemon would.
    pub(crate) fn insert_doc(&self, uri: &str, doc: Document) {
        let entry = Arc::new(DocEntry::new(doc, &self.config));
        self.docs.write().unwrap().insert(uri.to_string(), entry);
    }

    /// Enter drain mode: accept loops stop taking connections; in-flight
    /// requests run to completion.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
    }

    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Connection accounting for graceful drain.
    pub fn connection_opened(&self) {
        self.active_connections.fetch_add(1, Ordering::Relaxed);
    }

    pub fn connection_closed(&self) {
        self.active_connections.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn active_connections(&self) -> usize {
        self.active_connections.load(Ordering::Relaxed)
    }
}

/// One queued request: the raw line (re-parsed by the dispatcher), the
/// cancellation token minted for it, and the rendered id for error
/// replies issued without dispatch.
struct Job {
    line: String,
    id: Value,
    token: CancelToken,
}

/// Bounded FIFO between the reader and the worker.
struct Queue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl Queue {
    fn new(capacity: usize) -> Arc<Queue> {
        Arc::new(Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        })
    }

    /// Enqueue, or return the job back if the queue is full.
    fn push(&self, job: Job) -> Result<(), Job> {
        let mut st = self.state.lock().unwrap();
        if st.jobs.len() >= self.capacity {
            return Err(job);
        }
        st.jobs.push_back(job);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue; `None` once the queue is closed *and* drained.
    fn pop(&self) -> Option<Job> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(j) = st.jobs.pop_front() {
                return Some(j);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap();
        }
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// Live tokens, keyed by the request id's wire rendering. A token stays
/// registered while its request is queued or in flight, so a
/// `$/cancelRequest` races correctly with both.
type CancelRegistry = Arc<Mutex<HashMap<String, CancelToken>>>;

fn write_line<W: Write>(w: &Mutex<W>, line: &str) -> std::io::Result<()> {
    let mut w = w.lock().unwrap();
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Serve one connection: read lines on the calling thread, dispatch on a
/// cached worker thread, answer in request order. Returns when the
/// client disconnects (EOF), after a `shutdown` request, or on a write
/// error (client gone mid-response) — all of which are *per-connection*
/// outcomes the caller may log and survive.
pub fn drive_connection<R, W>(mut server: Server, reader: R, writer: W) -> std::io::Result<()>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let queue = Queue::new(server.queue_capacity());
    let registry: CancelRegistry = Arc::new(Mutex::new(HashMap::new()));
    let writer = Arc::new(Mutex::new(writer));
    let done = Arc::new((Mutex::new(false), Condvar::new()));

    let worker = {
        let queue = Arc::clone(&queue);
        let registry = Arc::clone(&registry);
        let writer = Arc::clone(&writer);
        let done = Arc::clone(&done);
        move || {
            while let Some(job) = queue.pop() {
                let resp = if job.token.is_cancelled() {
                    proto::err(&job.id, code::REQUEST_CANCELLED, "request cancelled", None)
                } else {
                    server.handle_line_cancellable(&job.line, &job.token)
                };
                registry.lock().unwrap().remove(&job.id.to_line());
                if write_line(&writer, &resp).is_err() {
                    // Client went away mid-response: stop answering, let
                    // the reader observe EOF. Nothing here is fatal to
                    // the daemon.
                    break;
                }
                if server.is_shut_down() {
                    break;
                }
            }
            let (flag, cv) = &*done;
            *flag.lock().unwrap() = true;
            cv.notify_all();
        }
    };
    parcoach_pool::thread_cache().spawn(worker);

    let mut result = Ok(());
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                result = Err(e);
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        // Cheap pre-parse: enough to route notifications and mint ids.
        let (id, method) = match proto::parse_request(&line) {
            Ok(req) => (req.id.clone(), req.method.clone()),
            Err(_) => (Value::Null, String::new()), // dispatcher re-answers
        };
        if method == "$/cancelRequest" {
            // A notification: cancel the matching request, no response.
            if let Ok(req) = proto::parse_request(&line) {
                if let Some(target) = req.params.get("id") {
                    if let Some(token) = registry.lock().unwrap().get(&target.to_line()) {
                        token.cancel();
                    }
                }
            }
            continue;
        }
        let token = CancelToken::new();
        registry.lock().unwrap().insert(id.to_line(), token.clone());
        let is_shutdown = method == "shutdown";
        if let Err(job) = queue.push(Job { line, id, token }) {
            registry.lock().unwrap().remove(&job.id.to_line());
            let busy = proto::err(
                &job.id,
                code::SERVER_BUSY,
                "server busy: request queue is full",
                None,
            );
            if write_line(&writer, &busy).is_err() {
                break;
            }
            continue;
        }
        if is_shutdown {
            // Stop reading; the worker drains everything queued (the
            // graceful part of the drain) and answers `shutdown` last.
            break;
        }
    }

    queue.close();
    let (flag, cv) = &*done;
    let mut finished = flag.lock().unwrap();
    while !*finished {
        finished = cv.wait(finished).unwrap();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: i64, method: &str, params: &str) -> String {
        format!(r#"{{"jsonrpc":"2.0","id":{id},"method":"{method}","params":{params}}}"#)
    }

    #[test]
    fn drive_connection_answers_in_order_and_honors_shutdown() {
        let shared = ServerShared::new(ServerConfig {
            jobs: Some(1),
            deterministic: true,
            seed: 42,
            ..ServerConfig::default()
        });
        let input = [
            req(0, "initialize", r#"{"protocolVersion":2}"#),
            req(
                1,
                "open",
                r#"{"uri":"a.mh","text":"fn main() { MPI_Barrier(); }"}"#,
            ),
            req(2, "check", r#"{"uri":"a.mh"}"#),
            req(3, "shutdown", "{}"),
            req(4, "check", r#"{"uri":"a.mh"}"#), // never read: after shutdown
        ]
        .join("\n");
        let out: Arc<Mutex<Vec<u8>>> = Arc::default();
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let server = Server::with_shared(Arc::clone(&shared));
        drive_connection(server, input.as_bytes(), SharedBuf(Arc::clone(&out))).unwrap();
        let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        for (i, l) in lines.iter().enumerate() {
            assert!(l.contains(&format!(r#""id":{i}"#)), "{l}");
        }
        assert!(lines[3].contains(r#""result":null"#), "{}", lines[3]);
    }

    #[test]
    fn cancel_request_notification_cancels_a_queued_request() {
        // A queue of capacity 1 cannot be raced reliably in a unit test,
        // so drive the registry path directly: a token registered for id
        // 5 flips when the reader sees `$/cancelRequest` for 5.
        let registry: CancelRegistry = Arc::default();
        let token = CancelToken::new();
        registry
            .lock()
            .unwrap()
            .insert(Value::from(5i64).to_line(), token.clone());
        let req = proto::parse_request(
            r#"{"jsonrpc":"2.0","method":"$/cancelRequest","params":{"id":5}}"#,
        )
        .unwrap();
        let target = req.params.get("id").unwrap();
        registry
            .lock()
            .unwrap()
            .get(&target.to_line())
            .unwrap()
            .cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn queue_overflow_is_reported_busy() {
        let q = Queue::new(1);
        let mk = || Job {
            line: String::new(),
            id: Value::Null,
            token: CancelToken::new(),
        };
        assert!(q.push(mk()).is_ok());
        assert!(q.push(mk()).is_err(), "second push exceeds capacity");
        q.close();
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }
}
