//! # parcoach-server — `parcoachd`, analysis-as-a-service
//!
//! The batch pipeline answers "is this program safe?"; this crate
//! answers it *repeatedly*, for a program being edited, without paying
//! the whole pipeline per keystroke. Three layers:
//!
//! * [`document`] — a resident compilation unit. `open` pays the full
//!   front-end once; a per-function `edit` reparses and re-lowers only
//!   the replaced function, rebases spans after the splice point, and
//!   tells the analysis session exactly which facts died.
//! * [`server`] — the JSON-RPC dispatcher: `initialize` (protocol v1 or
//!   v2), `open`, `edit`, `check`, `diagnostics`, `timings`,
//!   `shutdown`, `$/cancelRequest`. Each [`Server`] is a per-connection
//!   view over the process-wide [`ServerShared`].
//! * [`sched`] — the concurrency layer: the shared document map (each
//!   document paired with its own incremental
//!   [`parcoach_core::AnalysisSession`] and an epoch-keyed result
//!   cache), plus the per-connection scheduler — bounded request queue
//!   with `SERVER_BUSY` backpressure, a cached worker thread, and
//!   cooperative cancellation (`$/cancelRequest`, `deadlineMs`).
//! * [`json`] / [`proto`] — a dependency-free, insertion-ordered JSON
//!   layer, so a `--deterministic` daemon emits byte-identical
//!   transcripts (the property the edit-soak CI job asserts).
//!
//! `parcoachc check` is a one-shot client of the same [`Document`]
//! object, so batch and server modes cannot drift.
//!
//! ```
//! use parcoach_server::{Server, ServerConfig};
//!
//! let mut srv = Server::new(ServerConfig::default());
//! let resp = srv.handle_line(
//!     r#"{"jsonrpc":"2.0","id":1,"method":"initialize","params":{"protocolVersion":1}}"#,
//! );
//! assert!(resp.contains(r#""serverName":"parcoachd""#));
//! ```

pub mod document;
pub mod json;
pub mod proto;
pub mod sched;
pub mod server;

pub use document::{DocError, Document, EditOutcome};
pub use json::Value;
pub use proto::{PROTOCOL_VERSION, PROTOCOL_VERSION_LEGACY};
pub use sched::{drive_connection, ServerShared};
pub use server::{
    check_result_json, check_result_json_v2, warnings_json, warnings_json_v2, Server, ServerConfig,
};
