//! # parcoach-server — `parcoachd`, analysis-as-a-service
//!
//! The batch pipeline answers "is this program safe?"; this crate
//! answers it *repeatedly*, for a program being edited, without paying
//! the whole pipeline per keystroke. Three layers:
//!
//! * [`document`] — a resident compilation unit. `open` pays the full
//!   front-end once; a per-function `edit` reparses and re-lowers only
//!   the replaced function, rebases spans after the splice point, and
//!   tells the analysis session exactly which facts died.
//! * [`server`] — the JSON-RPC dispatcher over one incremental
//!   [`parcoach_core::AnalysisSession`]: `initialize`, `open`, `edit`,
//!   `check`, `diagnostics`, `timings`, `shutdown`.
//! * [`json`] / [`proto`] — a dependency-free, insertion-ordered JSON
//!   layer, so a `--deterministic` daemon emits byte-identical
//!   transcripts (the property the edit-soak CI job asserts).
//!
//! `parcoachc check` is a one-shot client of the same [`Document`]
//! object, so batch and server modes cannot drift.
//!
//! ```
//! use parcoach_server::{Server, ServerConfig};
//!
//! let mut srv = Server::new(ServerConfig::default());
//! let resp = srv.handle_line(
//!     r#"{"jsonrpc":"2.0","id":1,"method":"initialize","params":{"protocolVersion":1}}"#,
//! );
//! assert!(resp.contains(r#""serverName":"parcoachd""#));
//! ```

pub mod document;
pub mod json;
pub mod proto;
pub mod server;

pub use document::{DocError, Document, EditOutcome};
pub use json::Value;
pub use proto::PROTOCOL_VERSION;
pub use server::{check_result_json, warnings_json, Server, ServerConfig};
