//! Integration tests of the hybrid executor: language semantics, OpenMP
//! model, MPI collectives, and — the paper's point — error detection
//! with and without PARCOACH instrumentation.

use parcoach_interp::{check_and_run, RunConfig, RunErrorKind, RunReport};
use parcoach_mpisim::MpiError;

fn run_plain(src: &str, ranks: usize, threads: usize) -> RunReport {
    let cfg = RunConfig {
        ranks,
        default_threads: threads,
        ..RunConfig::default()
    };
    let (_, report) = check_and_run("t.mh", src, cfg, false).expect("valid program");
    report
}

fn run_instr(src: &str, ranks: usize, threads: usize) -> RunReport {
    let cfg = RunConfig::fast_fail(ranks, threads);
    let (_, report) = check_and_run("t.mh", src, cfg, true).expect("valid program");
    report
}

fn run_fast(src: &str, ranks: usize, threads: usize) -> RunReport {
    let cfg = RunConfig::fast_fail(ranks, threads);
    let (_, report) = check_and_run("t.mh", src, cfg, false).expect("valid program");
    report
}

// ---- sequential language semantics ---------------------------------

#[test]
fn arithmetic_and_print() {
    let r = run_plain(
        "fn main() { let x = 2 + 3 * 4; print(x, x - 1, float_of(x) / 2.0); }",
        1,
        1,
    );
    assert!(r.is_clean(), "{:?}", r.errors);
    assert_eq!(r.output, vec!["[rank 0] 14 13 7"]);
}

#[test]
fn control_flow_loops() {
    let r = run_plain(
        "fn main() {
            let acc = 0;
            for (i in 0..10) { if (i % 2 == 0) { acc = acc + i; } }
            let j = 0;
            while (j < 3) { j = j + 1; }
            print(acc, j);
        }",
        1,
        1,
    );
    assert_eq!(r.output, vec!["[rank 0] 20 3"]);
}

#[test]
fn functions_and_recursion() {
    let r = run_plain(
        "fn fib(n: int) -> int {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { print(fib(10)); }",
        1,
        1,
    );
    assert_eq!(r.output, vec!["[rank 0] 55"]);
}

#[test]
fn arrays_shared_reference_semantics() {
    let r = run_plain(
        "fn fill(a: float[], v: float) {
            for (i in 0..len(a)) { a[i] = v; }
        }
        fn main() {
            let a = array(4, 0.0);
            fill(a, 2.5);
            print(a[0] + a[3]);
        }",
        1,
        1,
    );
    assert_eq!(r.output, vec!["[rank 0] 5"]);
}

#[test]
fn short_circuit_evaluation() {
    let r = run_plain(
        "fn main() {
            let a = array(1, 7);
            // RHS would be out of bounds; && must not evaluate it.
            if (false && a[99] == 0) { print(1); } else { print(2); }
            if (true || a[99] == 0) { print(3); }
        }",
        1,
        1,
    );
    assert!(r.is_clean(), "{:?}", r.errors);
    assert_eq!(r.output, vec!["[rank 0] 2", "[rank 0] 3"]);
}

#[test]
fn division_by_zero_reported() {
    let r = run_plain("fn main() { let x = 1 / (rank() * 0); print(x); }", 1, 1);
    assert!(matches!(
        r.first_error().map(|e| &e.kind),
        Some(RunErrorKind::DivisionByZero)
    ));
}

#[test]
fn index_out_of_bounds_reported() {
    let r = run_plain("fn main() { let a = array(2, 0); a[5] = 1; }", 1, 1);
    assert!(matches!(
        r.first_error().map(|e| &e.kind),
        Some(RunErrorKind::IndexOutOfBounds { index: 5, len: 2 })
    ));
}

#[test]
fn infinite_loop_hits_step_limit() {
    let cfg = RunConfig {
        ranks: 1,
        default_threads: 1,
        max_steps: 10_000,
        ..RunConfig::default()
    };
    let (_, r) = check_and_run("t.mh", "fn main() { while (true) { } }", cfg, false).unwrap();
    assert!(matches!(
        r.first_error().map(|e| &e.kind),
        Some(RunErrorKind::StepLimit)
    ));
}

// ---- OpenMP-model semantics -----------------------------------------

#[test]
fn parallel_region_runs_all_threads() {
    let r = run_plain(
        "fn main() {
            let count = 0;
            parallel num_threads(4) {
                critical { count = count + 1; }
            }
            print(count);
        }",
        1,
        4,
    );
    assert_eq!(r.output, vec!["[rank 0] 4"]);
}

#[test]
fn single_executes_once_and_is_visible() {
    let r = run_plain(
        "fn main() {
            let t = 0;
            parallel num_threads(4) {
                single { t = t + 1; }
            }
            print(t);
        }",
        1,
        4,
    );
    assert_eq!(r.output, vec!["[rank 0] 1"]);
}

#[test]
fn pfor_divides_iterations() {
    let r = run_plain(
        "fn main() {
            let a = array(100, 0);
            parallel num_threads(4) {
                pfor (i in 0..100) { a[i] = i; }
            }
            let sum = 0;
            for (i in 0..100) { sum = sum + a[i]; }
            print(sum);
        }",
        1,
        4,
    );
    assert_eq!(r.output, vec!["[rank 0] 4950"]);
}

#[test]
fn sections_distribute() {
    let r = run_plain(
        "fn main() {
            let a = 0; let b = 0;
            parallel num_threads(2) {
                sections {
                    section { a = 1; }
                    section { b = 2; }
                }
            }
            print(a + b);
        }",
        1,
        2,
    );
    assert_eq!(r.output, vec!["[rank 0] 3"]);
}

#[test]
fn master_only_master_runs() {
    let r = run_plain(
        "fn main() {
            let hits = 0;
            parallel num_threads(4) {
                master { hits = hits + 1; }
            }
            print(hits);
        }",
        1,
        4,
    );
    assert_eq!(r.output, vec!["[rank 0] 1"]);
}

#[test]
fn nested_parallel_regions() {
    let r = run_plain(
        "fn main() {
            let count = 0;
            parallel num_threads(2) {
                parallel num_threads(2) {
                    critical { count = count + 1; }
                }
            }
            print(count);
        }",
        1,
        2,
    );
    assert_eq!(r.output, vec!["[rank 0] 4"]);
}

#[test]
fn loop_variable_is_private_in_pfor() {
    let r = run_plain(
        "fn main() {
            let total = 0;
            parallel num_threads(4) {
                pfor (i in 0..40) {
                    critical { total = total + 1; }
                }
            }
            print(total);
        }",
        1,
        4,
    );
    assert_eq!(r.output, vec!["[rank 0] 40"]);
}

#[test]
fn barrier_phases_are_respected() {
    let r = run_plain(
        "fn main() {
            let x = 0;
            parallel num_threads(4) {
                single { x = 41; }
                // implicit barrier of single
                master { x = x + 1; }
            }
            print(x);
        }",
        1,
        4,
    );
    assert_eq!(r.output, vec!["[rank 0] 42"]);
}

#[test]
fn divergent_thread_barrier_detected() {
    let r = run_fast(
        "fn main() {
            parallel num_threads(2) {
                if (thread_num() == 0) { barrier; }
            }
        }",
        1,
        2,
    );
    assert!(
        matches!(
            r.first_error().map(|e| &e.kind),
            Some(RunErrorKind::ThreadBarrier(_))
        ),
        "{:?}",
        r.errors
    );
}

// ---- MPI semantics ---------------------------------------------------

#[test]
fn allreduce_across_ranks() {
    let r = run_plain(
        "fn main() {
            MPI_Init();
            let s = MPI_Allreduce(rank() + 1, SUM);
            print(s);
            MPI_Finalize();
        }",
        4,
        1,
    );
    assert!(r.is_clean(), "{:?}", r.errors);
    assert_eq!(r.output.len(), 4);
    assert!(r.output.iter().all(|l| l.ends_with("10")));
}

#[test]
fn bcast_and_gather() {
    let r = run_plain(
        "fn main() {
            MPI_Init();
            let v = MPI_Bcast(rank() + 100, 0);
            let g = MPI_Gather(v, 0);
            if (rank() == 0) { print(len(g), g[0], g[1]); } else { print(len(g)); }
            MPI_Finalize();
        }",
        2,
        1,
    );
    assert!(r.is_clean(), "{:?}", r.errors);
    assert!(r.output.contains(&"[rank 0] 2 100 100".to_string()));
    assert!(r.output.contains(&"[rank 1] 0".to_string()));
}

#[test]
fn send_recv_ring() {
    let r = run_plain(
        "fn main() {
            MPI_Init();
            let next = (rank() + 1) % size();
            let prev = (rank() + size() - 1) % size();
            MPI_Send(rank() * 10, next, 7);
            let got = MPI_Recv(prev, 7);
            print(got);
            MPI_Finalize();
        }",
        3,
        1,
    );
    assert!(r.is_clean(), "{:?}", r.errors);
    assert_eq!(r.output.len(), 3);
}

#[test]
fn hybrid_collective_in_single() {
    let r = run_plain(
        "fn main() {
            MPI_Init_thread(SERIALIZED);
            let s = 0;
            parallel num_threads(4) {
                single { s = MPI_Allreduce(rank() + 1, SUM); }
            }
            print(s);
            MPI_Finalize();
        }",
        2,
        4,
    );
    assert!(r.is_clean(), "{:?}", r.errors);
    assert!(r.output.iter().all(|l| l.ends_with("3")));
}

#[test]
fn scan_and_scatter() {
    let r = run_plain(
        "fn main() {
            MPI_Init();
            let prefix = MPI_Scan(1, SUM);
            let a = array(size(), 5);
            let mine = MPI_Scatter(a, 0);
            print(prefix, mine);
            MPI_Finalize();
        }",
        3,
        1,
    );
    assert!(r.is_clean(), "{:?}", r.errors);
    assert!(r.output.contains(&"[rank 0] 1 5".to_string()));
    assert!(r.output.contains(&"[rank 2] 3 5".to_string()));
}

// ---- error detection: uninstrumented (substrate fallback) ------------

#[test]
fn mismatch_detected_by_matcher() {
    let r = run_fast(
        "fn main() {
            if (rank() == 0) { MPI_Barrier(); } else { let x = MPI_Allreduce(1, SUM); }
        }",
        2,
        1,
    );
    assert!(!r.is_clean());
    assert!(
        matches!(
            r.first_error().map(|e| &e.kind),
            Some(RunErrorKind::Mpi(MpiError::CollectiveMismatch { .. }))
        ),
        "{:?}",
        r.errors
    );
    assert!(!r.detected_by_check());
}

#[test]
fn missing_collective_detected() {
    let r = run_fast(
        "fn main() {
            if (rank() == 0) { MPI_Barrier(); }
        }",
        2,
        1,
    );
    assert!(!r.is_clean(), "{:?}", r.errors);
}

// ---- error detection: instrumented (PARCOACH checks) -----------------

#[test]
fn cc_detects_mismatch_before_collective() {
    let r = run_instr(
        "fn main() {
            if (rank() == 0) { MPI_Barrier(); } else { let x = MPI_Allreduce(1, SUM); }
        }",
        2,
        1,
    );
    assert!(!r.is_clean());
    assert!(
        r.detected_by_check(),
        "CC must catch this, got {:?}",
        r.errors
    );
    let text = r.first_error().unwrap().to_string();
    assert!(text.contains("MPI_Barrier"), "{text}");
    assert!(text.contains("MPI_Allreduce"), "{text}");
}

#[test]
fn cc_detects_missing_collective_via_return() {
    let r = run_instr(
        "fn main() {
            if (rank() == 0) { MPI_Barrier(); }
        }",
        2,
        1,
    );
    assert!(!r.is_clean());
    assert!(
        r.detected_by_check(),
        "return-CC must catch this, got {:?}",
        r.errors
    );
    let text = r.first_error().unwrap().to_string();
    assert!(text.contains("<return/exit>"), "{text}");
}

#[test]
fn clean_program_unaffected_by_instrumentation() {
    let src = "fn main() {
        MPI_Init_thread(SERIALIZED);
        let t = 0.0;
        parallel num_threads(2) {
            pfor (i in 0..20) { let x = float_of(i) * 2.0; }
            single { t = MPI_Allreduce(1.0, SUM); }
        }
        print(t);
        MPI_Finalize();
    }";
    let plain = run_plain(src, 2, 2);
    let inst = run_instr(src, 2, 2);
    assert!(plain.is_clean(), "{:?}", plain.errors);
    assert!(inst.is_clean(), "{:?}", inst.errors);
    assert_eq!(plain.output.len(), inst.output.len());
}

#[test]
fn monothread_assert_fires_for_parallel_collective() {
    let r = run_instr(
        "fn main() {
            parallel num_threads(4) {
                MPI_Barrier();
            }
        }",
        1,
        4,
    );
    assert!(!r.is_clean());
    assert!(
        matches!(
            r.first_error().map(|e| &e.kind),
            Some(RunErrorKind::MonothreadViolation { .. })
                | Some(RunErrorKind::Mpi(MpiError::ThreadLevelViolation { .. }))
        ),
        "{:?}",
        r.errors
    );
}

#[test]
fn concurrent_singles_fail() {
    // Two nowait singles with collectives: schedule-dependent order. Any
    // of the PARCOACH detections (concurrency counter, CC) or the
    // matcher may fire first depending on the schedule, but the run must
    // fail.
    let r = run_instr(
        "fn main() {
            parallel num_threads(4) {
                single nowait { MPI_Barrier(); }
                single nowait { let x = MPI_Allreduce(1, SUM); }
                barrier;
            }
        }",
        2,
        4,
    );
    assert!(!r.is_clean(), "{:?}", r.errors);
}

#[test]
fn serialized_self_concurrency_still_detected() {
    // A team of one: every nowait-single instance is claimed by the
    // same thread, so the executions can never overlap in *time*. The
    // ordering violation — a suspect site executing twice with no
    // barrier in between — must be flagged anyway (the paper's S_cc
    // counters reset at synchronization points, not at region exits),
    // making detection schedule-independent.
    let r = run_instr(
        "fn main() {
            parallel num_threads(1) {
                for (i in 0..3) {
                    single nowait { let x = MPI_Allreduce(i, SUM); }
                }
                barrier;
            }
        }",
        2,
        1,
    );
    assert!(!r.is_clean(), "{:?}", r.errors);
    assert!(
        r.errors
            .iter()
            .any(|e| matches!(e.kind, RunErrorKind::ConcurrentRegions { .. })),
        "expected a concurrency-counter hit, got {:?}",
        r.errors
    );
}

#[test]
fn sequential_reexecution_of_suspect_site_is_clean() {
    // The single-in-a-loop is statically self-concurrent (its site gets
    // a counter), but here it only ever executes *outside* any team —
    // once per loop iteration, twice per call, fully ordered by program
    // order. Epoch counting applies to team execution only; the
    // sequential executions must never accumulate into a false
    // ConcurrentRegions abort, no matter how often the function is
    // re-called over the rank's lifetime.
    let r = run_instr(
        "fn f() {
            for (i in 0..2) { single nowait { MPI_Barrier(); } }
            barrier;
        }
        fn main() { MPI_Init(); f(); f(); MPI_Finalize(); }",
        2,
        2,
    );
    assert!(r.is_clean(), "{:?}", r.errors);
}

#[test]
fn barrier_resets_concurrency_epoch() {
    // The same suspect single re-executing across loop iterations is
    // fine when a barrier separates the iterations: the epoch count
    // resets at the synchronization point.
    let r = run_instr(
        "fn main() {
            parallel num_threads(4) {
                for (i in 0..3) {
                    single nowait { let x = MPI_Allreduce(i, SUM); }
                    barrier;
                }
            }
        }",
        2,
        4,
    );
    assert!(r.is_clean(), "{:?}", r.errors);
}

#[test]
fn rank_dependent_loop_count_detected() {
    let r = run_instr(
        "fn main() {
            let n = 2 + rank();
            for (i in 0..n) { MPI_Barrier(); }
        }",
        2,
        1,
    );
    assert!(!r.is_clean());
    assert!(
        r.detected_by_check(),
        "CC should catch the count divergence: {:?}",
        r.errors
    );
}

#[test]
fn uniform_conditional_runs_clean_despite_warning() {
    // Statically a false positive (PDF+ flags the conditional); the
    // dynamic check proves it harmless: all ranks take the same path.
    let src = "fn main() {
        let flag = size() > 0;
        if (flag) { MPI_Barrier(); }
    }";
    let cfg = RunConfig::fast_fail(2, 1);
    let (report, run) = check_and_run("t.mh", src, cfg, true).unwrap();
    assert!(
        !report.is_clean(),
        "static phase must warn about the conditional"
    );
    assert!(run.is_clean(), "dynamic phase must pass: {:?}", run.errors);
}

#[test]
fn funneled_violation_from_worker_thread() {
    // Under MPI_THREAD_FUNNELED only the initial thread may call MPI;
    // thread 1's send is a deterministic violation.
    let r = run_fast(
        "fn main() {
            MPI_Init_thread(FUNNELED);
            parallel num_threads(2) {
                if (thread_num() == 1) { MPI_Send(1, rank(), 9); }
            }
            MPI_Finalize();
        }",
        1,
        2,
    );
    assert!(
        matches!(
            r.first_error().map(|e| &e.kind),
            Some(RunErrorKind::Mpi(MpiError::ThreadLevelViolation { .. }))
        ),
        "{:?}",
        r.errors
    );
}

#[test]
fn serialized_with_critical_is_legal() {
    // `critical` serializes the MPI calls, satisfying SERIALIZED; with
    // equal team sizes all ranks issue the same number of barriers, so
    // the run is clean (the *static* phase still warns — multithreaded
    // context — which is exactly the paper's point about needing the
    // dynamic phase).
    let r = run_plain(
        "fn main() {
            MPI_Init_thread(SERIALIZED);
            parallel num_threads(3) {
                critical { MPI_Barrier(); }
            }
            MPI_Finalize();
        }",
        2,
        3,
    );
    assert!(r.is_clean(), "{:?}", r.errors);
}

#[test]
fn rank_dependent_team_size_mismatch_detected() {
    // Collectives per rank = team size; team sizes differ by rank →
    // count mismatch, surfaced by the substrate even uninstrumented.
    let r = run_fast(
        "fn main() {
            parallel num_threads(2 + rank()) {
                critical { MPI_Barrier(); }
            }
        }",
        2,
        2,
    );
    assert!(!r.is_clean(), "{:?}", r.errors);
}

#[test]
fn output_is_captured_per_rank() {
    let r = run_plain("fn main() { print(rank(), size()); }", 3, 1);
    assert_eq!(r.output.len(), 3);
    for rank in 0..3 {
        assert!(r
            .output
            .iter()
            .any(|l| l == &format!("[rank {rank}] {rank} 3")));
    }
}

#[test]
fn collective_in_function_called_from_single() {
    let r = run_instr(
        "fn exchange() -> int {
            return MPI_Allreduce(1, SUM);
        }
        fn main() {
            MPI_Init_thread(SERIALIZED);
            let t = 0;
            parallel num_threads(3) {
                single { t = exchange(); }
            }
            print(t);
            MPI_Finalize();
        }",
        2,
        3,
    );
    assert!(r.is_clean(), "{:?}", r.errors);
    assert!(r.output.iter().all(|l| l.ends_with("2")));
}

#[test]
fn multizone_like_timestep_loop_clean() {
    // Shape of a NAS-MZ time step: parallel compute + sequential MPI
    // exchange per step.
    let r = run_plain(
        "fn main() {
            MPI_Init_thread(FUNNELED);
            let residual = 0.0;
            for (step in 0..5) {
                parallel num_threads(3) {
                    pfor (i in 0..30) { let w = float_of(i) * 1.5; }
                }
                residual = MPI_Allreduce(1.0, SUM);
            }
            print(residual);
            MPI_Finalize();
        }",
        2,
        3,
    );
    assert!(r.is_clean(), "{:?}", r.errors);
    assert!(r.output.iter().all(|l| l.ends_with("2")));
}
