//! The hybrid executor: runs lowered MiniHPC modules over the `ompsim`
//! fork/join substrate and the `mpisim` MPI world, executing PARCOACH
//! dynamic checks in-line ("Static Instrumentation for Execution-Time
//! Verification", paper §3).
//!
//! Each MPI rank is an OS thread; `parallel` regions fork real teams.
//! Scalars follow OpenMP sharing rules (registers defined outside a
//! parallel region and used inside become shared cells; everything else
//! is thread-private); arrays are reference types.

use crate::error::{RunError, RunErrorKind, RunReport};
use crate::value::Value;
use parcoach_front::ast::{BinOp, CollectiveKind, Intrinsic, ThreadLevel, Type, UnOp};
use parcoach_front::span::Span;
use parcoach_ir::func::{FuncIr, Module};
use parcoach_ir::instr::{BlockKind, CheckOp, Directive, Instr, MpiIr, Terminator};
use parcoach_ir::types::{BlockId, Const, Reg, RegionId, Value as IrValue};
use parcoach_mpisim::{MpiConfig, MpiError, Signature, World};
use parcoach_ompsim::{ForkError, OmpConfig, OmpSim, ThreadCtx};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Execution configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of MPI ranks.
    pub ranks: usize,
    /// Default team size for `parallel` without `num_threads`.
    pub default_threads: usize,
    /// Thread-barrier divergence timeout.
    pub barrier_timeout: Duration,
    /// MPI blocking-operation timeout.
    pub mpi_timeout: Duration,
    /// Global instruction budget (infinite-loop guard).
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Highest thread level the simulated MPI grants.
    pub max_provided: ThreadLevel,
    /// Run rank threads and team members on the shared simulator thread
    /// cache (reused across runs/regions). `false` falls back to
    /// spawning fresh OS threads everywhere, as before the pool existed
    /// — the determinism tests compare the two.
    pub pooled: bool,
    /// Run the simulated MPI on its legacy single-world-lock engine
    /// instead of the sharded one (ablation baseline / cross-check).
    pub legacy_world_lock: bool,
    /// Allocation-reuse fast paths of the interpreter: pooled frame
    /// slots and one-pass print rendering. `false` falls back to fresh
    /// allocations per call frame and per printed argument — the
    /// ablation baseline; outputs are byte-identical either way.
    pub value_interning: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            ranks: 2,
            default_threads: 4,
            barrier_timeout: Duration::from_secs(2),
            mpi_timeout: Duration::from_secs(5),
            max_steps: 200_000_000,
            max_call_depth: 128,
            max_provided: ThreadLevel::Multiple,
            pooled: true,
            legacy_world_lock: false,
            value_interning: true,
        }
    }
}

impl RunConfig {
    /// A configuration with short timeouts, for tests that provoke
    /// deadlocks.
    pub fn fast_fail(ranks: usize, threads: usize) -> RunConfig {
        RunConfig {
            ranks,
            default_threads: threads,
            barrier_timeout: Duration::from_millis(300),
            mpi_timeout: Duration::from_millis(600),
            ..RunConfig::default()
        }
    }
}

/// A register slot: private value or team-shared cell.
#[derive(Debug, Clone)]
enum Slot {
    Owned(Value),
    Shared(Arc<RwLock<Value>>),
}

type Frame = Vec<Slot>;

/// Precomputed facts about one `parallel` region.
struct RegionPlan {
    body_entry: BlockId,
    end_block: BlockId,
    /// Registers defined outside the region but used inside: shared.
    shared_regs: Vec<Reg>,
}

/// Dense ids for the instrumentation's check sites, computed once per
/// executor. Concurrency site ids are already dense (the analysis
/// renumbers them 0..n across functions); monothread-assert sites are
/// interned here from their spans. Both let the per-rank counters be
/// flat vectors indexed by site instead of hash maps behind one lock.
struct SiteTable {
    /// One slot per `ConcEnter`/`ConcExit` site id.
    conc_sites: usize,
    /// Interned `AssertMonothread` sites: `span.lo` → dense index.
    mono_sites: HashMap<u32, u32>,
}

impl SiteTable {
    fn build(module: &Module) -> SiteTable {
        let mut conc_sites = 0usize;
        let mut mono_sites = HashMap::new();
        for f in &module.funcs {
            for (_, b) in f.iter_blocks() {
                for i in &b.instrs {
                    match i {
                        Instr::Check(CheckOp::ConcEnter { site, .. })
                        | Instr::Check(CheckOp::ConcExit { site }) => {
                            conc_sites = conc_sites.max(*site as usize + 1);
                        }
                        Instr::Check(CheckOp::AssertMonothread { span, .. }) => {
                            let next = mono_sites.len() as u32;
                            mono_sites.entry(span.lo).or_insert(next);
                        }
                        _ => {}
                    }
                }
            }
        }
        SiteTable {
            conc_sites,
            mono_sites,
        }
    }
}

/// Per-rank runtime environment.
struct RankEnv {
    world: Arc<World>,
    omp: OmpSim,
    rank: usize,
    output: Arc<Mutex<Vec<String>>>,
    steps: Arc<AtomicU64>,
    max_steps: u64,
    /// Concurrency counters per static site (paper's `S_cc` check):
    /// live occupancy, catching regions that truly overlap in time.
    /// Occupancy is inherently cross-thread (thread A's enter must be
    /// visible to thread B's check), so the counters cannot be
    /// thread-private — but they are dense and lock-free: one atomic
    /// per interned site.
    conc: Vec<AtomicI64>,
    /// Executions per (site, team instance, barrier epoch). The paper
    /// resets `S_cc` at synchronization points: a suspect region running
    /// *twice between barriers* of one team is an ordering error even
    /// when the schedule happens to serialize the two executions — this
    /// keeps detection deterministic on any scheduler. Keying by each
    /// member's own barrier count (equal across the team after every
    /// barrier) makes the epoch roll-over race-free: nothing is ever
    /// reset, a new epoch simply uses fresh keys. Stale epochs are
    /// pruned lazily at barriers. Sharded per site: members of one team
    /// only contend when they hit the *same* suspect region, and each
    /// shard holds the handful of live (team, epoch) entries.
    conc_seen: Vec<Mutex<Vec<(u64, u64, u32)>>>,
    /// First executing thread per (assert site, team instance): a second
    /// *distinct* thread reaching the same site in the same team
    /// encounter proves the context is not monothreaded. Sharded per
    /// interned assert site, like `conc_seen`.
    mono: Vec<Mutex<Vec<(u64, usize)>>>,
    /// Retired call frames, reused by later calls (and member frame
    /// copies) so steady-state interpretation allocates no frame
    /// vectors. Empty and unused when `value_interning` is off.
    frames: Mutex<Vec<Frame>>,
    /// Mirror of [`RunConfig::value_interning`].
    value_interning: bool,
}

impl RankEnv {
    /// A cleared frame buffer from the pool (or a fresh one).
    fn take_frame(&self) -> Frame {
        if !self.value_interning {
            return Frame::new();
        }
        self.frames.lock().pop().unwrap_or_default()
    }

    /// Return a frame's allocation to the pool.
    fn put_frame(&self, mut f: Frame) {
        if !self.value_interning {
            return;
        }
        f.clear();
        let mut pool = self.frames.lock();
        if pool.len() < 64 {
            pool.push(f);
        }
    }
}

/// Control flow of a block walk.
enum Flow {
    Return(Option<Value>),
    Stopped,
}

/// The executor: owns the module and per-region plans.
pub struct Executor {
    module: Module,
    cfg: RunConfig,
    plans: HashMap<(usize, u32), RegionPlan>,
    sites: SiteTable,
}

impl Executor {
    /// Build an executor (precomputes parallel-region plans and the
    /// dense check-site table).
    pub fn new(module: Module, cfg: RunConfig) -> Executor {
        let mut plans = HashMap::new();
        for (fidx, f) in module.funcs.iter().enumerate() {
            for (bid, b) in f.iter_blocks() {
                if let Some(Directive::ParallelBegin { region, .. }) = b.directive() {
                    plans.insert((fidx, region.0), region_plan(f, bid, *region));
                }
            }
        }
        let sites = SiteTable::build(&module);
        Executor {
            module,
            cfg,
            plans,
            sites,
        }
    }

    /// The underlying module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Run the program with `cfg.ranks` MPI ranks. Never panics on
    /// verification errors — they come back classified in the report.
    pub fn run(&self) -> RunReport {
        let world = World::new(MpiConfig {
            world_size: self.cfg.ranks,
            max_provided: self.cfg.max_provided,
            op_timeout: self.cfg.mpi_timeout,
            legacy_world_lock: self.cfg.legacy_world_lock,
        });
        let output: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let steps = Arc::new(AtomicU64::new(0));
        let errors: Vec<Mutex<Option<RunError>>> =
            (0..self.cfg.ranks).map(|_| Mutex::new(None)).collect();
        let run_rank = |rank: usize| {
            let env = RankEnv {
                world: world.clone(),
                omp: OmpSim::new(OmpConfig {
                    default_num_threads: self.cfg.default_threads,
                    barrier_timeout: self.cfg.barrier_timeout,
                    max_levels: 8,
                    pooled: self.cfg.pooled,
                }),
                rank,
                output: output.clone(),
                steps: steps.clone(),
                max_steps: self.cfg.max_steps,
                conc: (0..self.sites.conc_sites)
                    .map(|_| AtomicI64::new(0))
                    .collect(),
                conc_seen: (0..self.sites.conc_sites)
                    .map(|_| Mutex::new(Vec::new()))
                    .collect(),
                mono: (0..self.sites.mono_sites.len())
                    .map(|_| Mutex::new(Vec::new()))
                    .collect(),
                frames: Mutex::new(Vec::new()),
                value_interning: self.cfg.value_interning,
            };
            let mut ctx = ThreadCtx::initial();
            world.thread_started(rank);
            let res = self.exec_function(&env, &mut ctx, true, "main", Vec::new(), 0);
            world.finish_rank(rank);
            if let Err(e) = res {
                // Make sure peers blocked in MPI wake up.
                if world.abort_reason().is_none() {
                    world.abort(MpiError::Aborted(e.to_string()));
                }
                *errors[rank].lock() = Some(e);
            }
        };
        if self.cfg.pooled {
            parcoach_pool::thread_cache().run_set(self.cfg.ranks, run_rank);
        } else {
            std::thread::scope(|s| {
                for rank in 0..self.cfg.ranks {
                    let run_rank = &run_rank;
                    s.spawn(move || run_rank(rank));
                }
            });
        }
        // Prefer root-cause errors over secondary echoes (aborted MPI
        // calls, poisoned barriers on sibling ranks).
        let mut errs: Vec<RunError> = errors.into_iter().filter_map(|m| m.into_inner()).collect();
        let has_root = errs.iter().any(|e| !is_secondary_error(e));
        if has_root {
            errs.retain(|e| !is_secondary_error(e));
        }
        RunReport {
            errors: errs,
            output: Arc::try_unwrap(output)
                .map(|m| m.into_inner())
                .unwrap_or_default(),
        }
    }

    // ---- function & block execution ------------------------------------

    fn exec_function(
        &self,
        env: &RankEnv,
        omp: &mut ThreadCtx,
        is_initial: bool,
        name: &str,
        args: Vec<Value>,
        depth: usize,
    ) -> Result<Option<Value>, RunError> {
        if depth > self.cfg.max_call_depth {
            return Err(RunError::new(
                RunErrorKind::StackOverflow,
                Span::DUMMY,
                env.rank,
            ));
        }
        let (fidx, func) = match self.module.by_name.get(name) {
            Some(&i) => (i, &self.module.funcs[i]),
            None => {
                return Err(RunError::new(
                    RunErrorKind::MissingReturn { func: name.into() },
                    Span::DUMMY,
                    env.rank,
                ))
            }
        };
        let mut frame: Frame = env.take_frame();
        frame.extend(
            func.reg_types
                .iter()
                .map(|&t| Slot::Owned(Value::default_for(t))),
        );
        for (param, arg) in func.params.iter().zip(args) {
            frame[param.index()] = Slot::Owned(arg);
        }
        let flow = self.exec_from(
            env, omp, is_initial, &mut frame, fidx, func, func.entry, None, depth,
        );
        env.put_frame(frame);
        match flow? {
            Flow::Return(v) => {
                if func.ret != Type::Void && v.is_none() {
                    return Err(RunError::new(
                        RunErrorKind::MissingReturn {
                            func: name.to_string(),
                        },
                        func.span,
                        env.rank,
                    ));
                }
                Ok(v)
            }
            Flow::Stopped => unreachable!("stop block only used inside parallel regions"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_from(
        &self,
        env: &RankEnv,
        omp: &mut ThreadCtx,
        is_initial: bool,
        frame: &mut Frame,
        fidx: usize,
        func: &FuncIr,
        start: BlockId,
        stop: Option<BlockId>,
        depth: usize,
    ) -> Result<Flow, RunError> {
        let mut cur = start;
        let mut critical_guards: Vec<parking_lot::ReentrantMutexGuard<'_, ()>> = Vec::new();
        loop {
            if stop == Some(cur) {
                return Ok(Flow::Stopped);
            }
            self.bump_steps(env, Span::DUMMY)?;
            let block = func.block(cur);

            // Directive semantics first.
            if let BlockKind::Directive(d) = &block.kind {
                match d {
                    Directive::ParallelBegin {
                        region,
                        num_threads,
                        span,
                    } => {
                        // Run pre-directive checks (instrumentation may
                        // guard directive nodes).
                        self.exec_checks_only(env, omp, is_initial, frame, block, *span)?;
                        let nt = match num_threads {
                            Some(v) => {
                                let n = self.read(frame, *v).as_int();
                                if n < 1 {
                                    Some(1)
                                } else {
                                    Some(n as usize)
                                }
                            }
                            None => None,
                        };
                        let plan = &self.plans[&(fidx, region.0)];
                        // Promote shared registers.
                        for &r in &plan.shared_regs {
                            if let Slot::Owned(v) = &frame[r.index()] {
                                frame[r.index()] = Slot::Shared(Arc::new(RwLock::new(v.clone())));
                            }
                        }
                        let parent_frame: &Frame = frame;
                        let span = *span;
                        // The first *root-cause* error across the team;
                        // sibling threads that then fail on poisoned
                        // barriers / aborted MPI must not mask it.
                        let root_err: Mutex<Option<RunError>> = Mutex::new(None);
                        // Team instance id, exported by the members so
                        // the parent can retire its counters after join.
                        let team_id = AtomicU64::new(0);
                        // The forking thread is consumed by the join
                        // until the team retires; the members take over
                        // its MPI-liveness registration so the census
                        // counts exactly the threads that can issue MPI
                        // calls for this rank. All members register
                        // *before* the fork: a member the scheduler has
                        // not started yet must already count as
                        // live-and-unblocked, or a census running in
                        // the gap could prove a "deadlock" the late
                        // starter was about to break.
                        let team_size = nt.unwrap_or(self.cfg.default_threads).max(1);
                        for _ in 0..team_size {
                            env.world.thread_started(env.rank);
                        }
                        env.world.thread_departed(env.rank);
                        let fork_res = env.omp.fork::<RunError, _>(omp, nt, &|child| {
                            team_id.store(child.team_instance(), Ordering::Relaxed);
                            let child_initial = is_initial && child.thread_num() == 0;
                            let mut child_frame = env.take_frame();
                            child_frame.extend(parent_frame.iter().cloned());
                            let res = self.exec_from(
                                env,
                                child,
                                child_initial,
                                &mut child_frame,
                                fidx,
                                func,
                                plan.body_entry,
                                Some(plan.end_block),
                                depth,
                            );
                            env.put_frame(child_frame);
                            let out = match res {
                                Ok(_) => Ok(()),
                                Err(e) => {
                                    if !is_secondary_error(&e) {
                                        let mut root = root_err.lock();
                                        if root.is_none() {
                                            *root = Some(e.clone());
                                        }
                                    }
                                    // Wake siblings + remote ranks.
                                    if let Some(team) = &child.team {
                                        OmpSim::poison_team(team);
                                    }
                                    if env.world.abort_reason().is_none() {
                                        env.world.abort(MpiError::Aborted(e.to_string()));
                                    }
                                    Err(e)
                                }
                            };
                            env.world.thread_departed(env.rank);
                            out
                        });
                        env.world.thread_started(env.rank);
                        // The team is retired: drop its concurrency-site
                        // epoch counts and monothread first-executor
                        // records (both are keyed by the globally-unique
                        // team instance and would otherwise grow by one
                        // entry per site per region executed over the
                        // rank's lifetime).
                        let retired = team_id.load(Ordering::Relaxed);
                        if retired != 0 {
                            for shard in &env.conc_seen {
                                shard.lock().retain(|(team, _, _)| *team != retired);
                            }
                            for shard in &env.mono {
                                shard.lock().retain(|(team, _)| *team != retired);
                            }
                        }
                        match fork_res {
                            Ok(()) => {}
                            Err(ForkError::Body(e)) => {
                                return Err(root_err.lock().take().unwrap_or(e))
                            }
                            Err(ForkError::Omp(e)) => {
                                // The fork was refused before any member
                                // ran: unwind their liveness
                                // pre-registration.
                                for _ in 0..team_size {
                                    env.world.thread_departed(env.rank);
                                }
                                return Err(RunError::new(
                                    RunErrorKind::Omp(e.to_string()),
                                    span,
                                    env.rank,
                                ));
                            }
                        }
                        cur = plan.end_block;
                        continue;
                    }
                    Directive::SingleBegin { region, chosen, .. } => {
                        self.exec_checks_only(env, omp, is_initial, frame, block, block.span)?;
                        let mine = omp.enter_single(region.0);
                        self.write(frame, *chosen, Value::Bool(mine));
                    }
                    Directive::MasterBegin { chosen, .. } => {
                        self.exec_checks_only(env, omp, is_initial, frame, block, block.span)?;
                        self.write(frame, *chosen, Value::Bool(omp.is_master()));
                    }
                    Directive::SectionBegin {
                        parent,
                        index,
                        chosen,
                        ..
                    } => {
                        self.exec_checks_only(env, omp, is_initial, frame, block, block.span)?;
                        let mine = omp.enter_section(parent.0, *index);
                        self.write(frame, *chosen, Value::Bool(mine));
                    }
                    Directive::CriticalBegin { .. } => {
                        critical_guards.push(env.omp.critical());
                    }
                    Directive::CriticalEnd { .. } => {
                        critical_guards.pop();
                    }
                    Directive::Barrier { span, .. } => {
                        self.exec_checks_only(env, omp, is_initial, frame, block, *span)?;
                        omp.barrier(env.omp.barrier_timeout()).map_err(|e| {
                            RunError::new(
                                RunErrorKind::ThreadBarrier(e.to_string()),
                                *span,
                                env.rank,
                            )
                        })?;
                        // Prune concurrency-site counts of epochs this
                        // team has left behind. Every member has passed
                        // the barrier, so entries of older epochs can
                        // never be incremented again — removing them
                        // cannot race with a fast member already
                        // counting in the *new* epoch (fresh keys).
                        let instance = omp.team_instance();
                        let epoch = omp.barriers_passed();
                        for shard in &env.conc_seen {
                            shard
                                .lock()
                                .retain(|(team, e, _)| *team != instance || *e >= epoch);
                        }
                    }
                    Directive::PForInit {
                        var,
                        chunk_end,
                        lo,
                        hi,
                        ..
                    } => {
                        let lo = self.read(frame, *lo).as_int();
                        let hi = self.read(frame, *hi).as_int();
                        let (s, e) = omp.static_chunk(lo, hi);
                        self.write(frame, *var, Value::Int(s));
                        self.write(frame, *chunk_end, Value::Int(e));
                    }
                    // Pure markers at run time (checks may still be
                    // attached to them).
                    Directive::ParallelEnd { .. }
                    | Directive::SingleEnd { .. }
                    | Directive::MasterEnd { .. }
                    | Directive::SectionEnd { .. }
                    | Directive::WorkshareBegin { .. }
                    | Directive::WorkshareEnd { .. } => {
                        self.exec_checks_only(env, omp, is_initial, frame, block, block.span)?;
                    }
                }
            } else {
                // Normal block: run all instructions.
                let mut pending_mono: Option<u32> = None;
                for i in &block.instrs {
                    self.bump_steps(env, i.span().unwrap_or(Span::DUMMY))?;
                    self.exec_instr(env, omp, is_initial, frame, i, depth, &mut pending_mono)?;
                }
            }

            // Terminator.
            match &block.term {
                Terminator::Goto(t) => cur = *t,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                    ..
                } => {
                    cur = if self.read(frame, *cond).as_bool() {
                        *then_bb
                    } else {
                        *else_bb
                    };
                }
                Terminator::Return { value, span } => {
                    // Return-site CC checks were already executed as
                    // instructions (they sit at the end of the block).
                    let v = value.map(|v| self.read(frame, v));
                    let _ = span;
                    return Ok(Flow::Return(v));
                }
                Terminator::Unreachable => {
                    return Err(RunError::new(
                        RunErrorKind::MissingReturn {
                            func: func.name.clone(),
                        },
                        block.span,
                        env.rank,
                    ))
                }
            }
        }
    }

    /// Run only the `Check` instructions of a directive block.
    fn exec_checks_only(
        &self,
        env: &RankEnv,
        omp: &mut ThreadCtx,
        is_initial: bool,
        frame: &mut Frame,
        block: &parcoach_ir::func::BasicBlock,
        _span: Span,
    ) -> Result<(), RunError> {
        let mut pending = None;
        for i in &block.instrs {
            if matches!(i, Instr::Check(_)) {
                self.exec_instr(env, omp, is_initial, frame, i, 0, &mut pending)?;
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_instr(
        &self,
        env: &RankEnv,
        omp: &mut ThreadCtx,
        is_initial: bool,
        frame: &mut Frame,
        instr: &Instr,
        depth: usize,
        pending_mono: &mut Option<u32>,
    ) -> Result<(), RunError> {
        match instr {
            Instr::Copy { dest, src } => {
                let v = self.read(frame, *src);
                self.write(frame, *dest, v);
            }
            Instr::Unary { dest, op, src } => {
                let v = self.read(frame, *src);
                let out = match (op, v) {
                    (UnOp::Neg, Value::Int(x)) => Value::Int(x.wrapping_neg()),
                    (UnOp::Neg, Value::Float(x)) => Value::Float(-x),
                    (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                    (op, v) => panic!("type-checked unary {op:?} on {v:?}"),
                };
                self.write(frame, *dest, out);
            }
            Instr::Binary {
                dest,
                op,
                lhs,
                rhs,
                span,
            } => {
                let l = self.read(frame, *lhs);
                let r = self.read(frame, *rhs);
                let out = self.binary(env, *op, l, r, *span)?;
                self.write(frame, *dest, out);
            }
            Instr::ArrayNew {
                dest,
                len,
                init,
                elem,
                span,
            } => {
                let n = self.read(frame, *len).as_int();
                if n < 0 {
                    return Err(RunError::new(
                        RunErrorKind::BadArrayLength(n),
                        *span,
                        env.rank,
                    ));
                }
                let out = match elem {
                    Type::Int => {
                        Value::ArrayInt(Arc::new(RwLock::new(vec![
                            self.read(frame, *init).as_int();
                            n as usize
                        ])))
                    }
                    Type::Float => {
                        Value::ArrayFloat(Arc::new(RwLock::new(vec![
                            self.read(frame, *init)
                                .as_float();
                            n as usize
                        ])))
                    }
                    _ => panic!("sema guaranteed numeric array element"),
                };
                self.write(frame, *dest, out);
            }
            Instr::Load {
                dest,
                arr,
                idx,
                span,
            } => {
                let i = self.read(frame, *idx).as_int();
                let arr_v = self.read_reg(frame, *arr);
                let out = match &arr_v {
                    Value::ArrayInt(a) => {
                        let a = a.read();
                        check_bounds(i, a.len(), *span, env.rank)?;
                        Value::Int(a[i as usize])
                    }
                    Value::ArrayFloat(a) => {
                        let a = a.read();
                        check_bounds(i, a.len(), *span, env.rank)?;
                        Value::Float(a[i as usize])
                    }
                    other => panic!("type-checked load from {other:?}"),
                };
                self.write(frame, *dest, out);
            }
            Instr::Store {
                arr,
                idx,
                value,
                span,
            } => {
                let i = self.read(frame, *idx).as_int();
                let v = self.read(frame, *value);
                let arr_v = self.read_reg(frame, *arr);
                match &arr_v {
                    Value::ArrayInt(a) => {
                        let mut a = a.write();
                        check_bounds(i, a.len(), *span, env.rank)?;
                        a[i as usize] = v.as_int();
                    }
                    Value::ArrayFloat(a) => {
                        let mut a = a.write();
                        check_bounds(i, a.len(), *span, env.rank)?;
                        a[i as usize] = v.as_float();
                    }
                    other => panic!("type-checked store to {other:?}"),
                }
            }
            Instr::Intrinsic { dest, intr, args } => {
                let out = self.intrinsic(env, omp, frame, *intr, args);
                self.write(frame, *dest, out);
            }
            Instr::Call {
                dest,
                func: callee,
                args,
                ..
            } => {
                let argv: Vec<Value> = args.iter().map(|a| self.read(frame, *a)).collect();
                let ret = self.exec_function(env, omp, is_initial, callee, argv, depth + 1)?;
                if let (Some(d), Some(v)) = (dest, ret) {
                    self.write(frame, *d, v);
                }
            }
            Instr::Mpi { dest, op, span } => {
                let out = self.exec_mpi(env, omp, is_initial, frame, op, *span)?;
                if let (Some(d), Some(v)) = (dest, out) {
                    self.write(frame, *d, v);
                }
            }
            Instr::Print { args } => {
                let line = if env.value_interning {
                    // One pass, one allocation: render straight into the
                    // output line instead of one `String` per argument
                    // plus a join. Byte-identical to the legacy path.
                    use std::fmt::Write as _;
                    let mut line = String::new();
                    let _ = write!(line, "[rank {}] ", env.rank);
                    for (k, a) in args.iter().enumerate() {
                        if k > 0 {
                            line.push(' ');
                        }
                        let _ = write!(line, "{}", self.read(frame, *a));
                    }
                    line
                } else {
                    let text = args
                        .iter()
                        .map(|a| self.read(frame, *a).to_string())
                        .collect::<Vec<_>>()
                        .join(" ");
                    format!("[rank {}] {}", env.rank, text)
                };
                env.output.lock().push(line);
            }
            Instr::Check(check) => {
                self.exec_check(env, omp, is_initial, frame, check, pending_mono)?;
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_check(
        &self,
        env: &RankEnv,
        omp: &mut ThreadCtx,
        is_initial: bool,
        frame: &mut Frame,
        check: &CheckOp,
        pending_mono: &mut Option<u32>,
    ) -> Result<(), RunError> {
        match check {
            CheckOp::CollectiveCc {
                color, comm, span, ..
            } => {
                // The CC runs on the guarded collective's communicator.
                let handle = comm.map(|v| self.read(frame, v).as_comm()).unwrap_or(0);
                self.run_cc(env, omp, is_initial, handle, *color, *span)
            }
            CheckOp::ReturnCc { span } => {
                // Wrapped in `single` semantics when inside a team (paper
                // §3: "this function is wrapped into a single pragma").
                if omp.in_parallel() {
                    let synth_region = 0x8000_0000u32 | (span.lo & 0x7fff_ffff);
                    if !omp.enter_single(synth_region) {
                        return Ok(());
                    }
                }
                self.run_cc(env, omp, is_initial, 0, 0, *span)
            }
            CheckOp::AssertMonothread { what, span } => {
                // Deterministic: within one team encounter, two *distinct*
                // threads reaching the same collective site prove the
                // context is multithreaded, regardless of interleaving.
                let site = self.sites.mono_sites[&span.lo] as usize;
                let team = omp.team_instance();
                let me = omp.thread_num();
                let first = {
                    let mut mono = env.mono[site].lock();
                    match mono.iter().find(|(t, _)| *t == team) {
                        Some(&(_, f)) => f,
                        None => {
                            mono.push((team, me));
                            me
                        }
                    }
                };
                if first != me {
                    let err =
                        RunError::new(RunErrorKind::MonothreadViolation { what }, *span, env.rank);
                    self.abort_everyone(env, omp, &err);
                    return Err(err);
                }
                let _ = pending_mono;
                Ok(())
            }
            CheckOp::ConcEnter { site, span } => {
                let overlapping = env.conc[*site as usize].fetch_add(1, Ordering::SeqCst) + 1 >= 2;
                // Second execution of a suspect site within one barrier
                // epoch of a team: an ordering error even if the two
                // executions happen not to overlap on this particular
                // schedule. Outside any team, executions are fully
                // ordered by program order and must not count — a
                // suspect function re-called sequentially would
                // otherwise accumulate counts for the rank's lifetime.
                let reexecuted = omp.team.is_some() && {
                    let team = omp.team_instance();
                    let epoch = omp.barriers_passed();
                    let mut seen = env.conc_seen[*site as usize].lock();
                    match seen.iter_mut().find(|(t, e, _)| *t == team && *e == epoch) {
                        Some(entry) => {
                            entry.2 += 1;
                            entry.2 >= 2
                        }
                        None => {
                            seen.push((team, epoch, 1));
                            false
                        }
                    }
                };
                if overlapping || reexecuted {
                    let err = RunError::new(
                        RunErrorKind::ConcurrentRegions { site: *site },
                        *span,
                        env.rank,
                    );
                    self.abort_everyone(env, omp, &err);
                    return Err(err);
                }
                Ok(())
            }
            CheckOp::ConcExit { site } => {
                env.conc[*site as usize].fetch_sub(1, Ordering::SeqCst);
                Ok(())
            }
            CheckOp::P2pEpoch { span } => {
                let rows = env
                    .world
                    .p2p_census(env.rank, is_initial)
                    .map_err(|e| RunError::new(classify_mpi_error(e), *span, env.rank))?;
                let unbalanced: Vec<(usize, u64, u64)> = rows
                    .into_iter()
                    .filter(|(_, sent, recvd)| sent != recvd)
                    .collect();
                if unbalanced.is_empty() {
                    return Ok(());
                }
                let err = RunError::new(
                    RunErrorKind::P2pImbalance { comms: unbalanced },
                    *span,
                    env.rank,
                );
                self.abort_everyone(env, omp, &err);
                Err(err)
            }
        }
    }

    /// Execute the `CC` color all-reduce (on the guarded collective's
    /// communicator) and translate a disagreement into the paper's
    /// error report (per-rank collective names).
    #[allow(clippy::too_many_arguments)]
    fn run_cc(
        &self,
        env: &RankEnv,
        omp: &mut ThreadCtx,
        is_initial: bool,
        comm: usize,
        color: u32,
        span: Span,
    ) -> Result<(), RunError> {
        let outcome = env
            .world
            .control_cc_on(env.rank, comm, color, is_initial)
            .map_err(|e| RunError::new(classify_mpi_error(e), span, env.rank))?;
        if outcome.unanimous() {
            return Ok(());
        }
        let per_rank = outcome
            .colors
            .iter()
            .map(|&c| color_name(c).into_owned())
            .collect::<Vec<_>>();
        let err = RunError::new(RunErrorKind::CcMismatch { per_rank }, span, env.rank);
        self.abort_everyone(env, omp, &err);
        Err(err)
    }

    fn abort_everyone(&self, env: &RankEnv, omp: &ThreadCtx, err: &RunError) {
        if env.world.abort_reason().is_none() {
            env.world.abort(MpiError::Aborted(err.to_string()));
        }
        if let Some(team) = &omp.team {
            OmpSim::poison_team(team);
        }
    }

    fn exec_mpi(
        &self,
        env: &RankEnv,
        omp: &mut ThreadCtx,
        is_initial: bool,
        frame: &mut Frame,
        op: &MpiIr,
        span: Span,
    ) -> Result<Option<Value>, RunError> {
        let mpi_err = |e: MpiError| RunError::new(classify_mpi_error(e), span, env.rank);
        match op {
            MpiIr::Init { required } => {
                env.world
                    .init(env.rank, required.unwrap_or(ThreadLevel::Single));
                Ok(None)
            }
            MpiIr::Finalize => {
                env.world.finalize(env.rank, is_initial).map_err(mpi_err)?;
                Ok(None)
            }
            MpiIr::Send {
                value,
                dest,
                tag,
                comm,
            } => {
                let v = self.read(frame, *value).to_mpi();
                let d = self.read(frame, *dest).as_int();
                let t = self.read(frame, *tag).as_int();
                let c = comm.map(|v| self.read(frame, v).as_comm()).unwrap_or(0);
                if d < 0 {
                    return Err(mpi_err(MpiError::ArgError(format!(
                        "negative destination {d}"
                    ))));
                }
                env.world
                    .send_on(env.rank, c, d as usize, t, v, is_initial)
                    .map_err(mpi_err)?;
                Ok(None)
            }
            MpiIr::Recv { src, tag, comm } => {
                let s = self.read(frame, *src).as_int();
                let t = self.read(frame, *tag).as_int();
                let c = comm.map(|v| self.read(frame, v).as_comm()).unwrap_or(0);
                // Wildcard sentinels pass through; the world rejects
                // other negative sources/tags.
                let v = env
                    .world
                    .recv_on(env.rank, c, s, t, is_initial)
                    .map_err(mpi_err)?;
                // `MPI_Recv` is float-typed in the language; coerce
                // integer payloads.
                let out = match Value::from_mpi(v) {
                    Value::Int(x) => Value::Float(x as f64),
                    other => other,
                };
                Ok(Some(out))
            }
            MpiIr::Isend {
                value,
                dest,
                tag,
                comm,
            } => {
                let v = self.read(frame, *value).to_mpi();
                let d = self.read(frame, *dest).as_int();
                let t = self.read(frame, *tag).as_int();
                let c = comm.map(|v| self.read(frame, v).as_comm()).unwrap_or(0);
                if d < 0 {
                    return Err(mpi_err(MpiError::ArgError(format!(
                        "negative destination {d}"
                    ))));
                }
                let handle = env
                    .world
                    .isend(env.rank, c, d as usize, t, v, is_initial)
                    .map_err(mpi_err)?;
                Ok(Some(Value::Request(handle)))
            }
            MpiIr::Irecv { src, tag, comm } => {
                let s = self.read(frame, *src).as_int();
                let t = self.read(frame, *tag).as_int();
                let c = comm.map(|v| self.read(frame, v).as_comm()).unwrap_or(0);
                let handle = env
                    .world
                    .irecv(env.rank, c, s, t, is_initial)
                    .map_err(mpi_err)?;
                Ok(Some(Value::Request(handle)))
            }
            MpiIr::Wait { request } => {
                let h = self.read(frame, *request).as_request();
                let v = env.world.wait(env.rank, h, is_initial).map_err(mpi_err)?;
                // Like MPI_Recv: the completion value is float-typed.
                let out = match Value::from_mpi(v) {
                    Value::Int(x) => Value::Float(x as f64),
                    other => other,
                };
                Ok(Some(out))
            }
            MpiIr::Waitall { requests } => {
                for r in requests {
                    let h = self.read(frame, *r).as_request();
                    env.world.wait(env.rank, h, is_initial).map_err(mpi_err)?;
                }
                Ok(None)
            }
            MpiIr::CommWorld => Ok(Some(Value::Comm(0))),
            MpiIr::CommSplit { parent, color, key } => {
                let p = self.read(frame, *parent).as_comm();
                let c = self.read(frame, *color).as_int();
                let k = self.read(frame, *key).as_int();
                let handle = env
                    .world
                    .comm_split(env.rank, p, c, k, is_initial)
                    .map_err(mpi_err)?;
                Ok(Some(Value::Comm(handle)))
            }
            MpiIr::CommDup { comm } => {
                let p = self.read(frame, *comm).as_comm();
                let handle = env
                    .world
                    .comm_dup(env.rank, p, is_initial)
                    .map_err(mpi_err)?;
                Ok(Some(Value::Comm(handle)))
            }
            MpiIr::Collective {
                kind,
                value,
                reduce_op,
                root,
                comm,
            } => {
                let payload = value.map(|v| self.read(frame, v).to_mpi());
                let root_v = match root {
                    Some(r) => {
                        let x = self.read(frame, *r).as_int();
                        if x < 0 {
                            return Err(mpi_err(MpiError::ArgError(format!("negative root {x}"))));
                        }
                        Some(x as usize)
                    }
                    None => None,
                };
                let c = comm.map(|v| self.read(frame, v).as_comm()).unwrap_or(0);
                let ty = payload.as_ref().map(|p| p.ty());
                let sig = Signature::collective((*kind).into(), *reduce_op, root_v, ty);
                // `omp` is only used for diagnostics here; the collective
                // blocks in the world.
                let _ = omp;
                let out = env
                    .world
                    .collective_on(env.rank, c, sig, payload, is_initial)
                    .map_err(mpi_err)?;
                if *kind == CollectiveKind::Barrier {
                    Ok(None)
                } else {
                    Ok(Some(Value::from_mpi(out)))
                }
            }
        }
    }

    fn intrinsic(
        &self,
        env: &RankEnv,
        omp: &ThreadCtx,
        frame: &Frame,
        intr: Intrinsic,
        args: &[IrValue],
    ) -> Value {
        let arg = |i: usize| self.read(frame, args[i]);
        match intr {
            Intrinsic::Rank => Value::Int(env.rank as i64),
            Intrinsic::Size => Value::Int(env.world.size() as i64),
            Intrinsic::ThreadNum => Value::Int(omp.thread_num() as i64),
            Intrinsic::NumThreads => Value::Int(omp.num_threads() as i64),
            Intrinsic::InParallel => Value::Bool(omp.in_parallel()),
            Intrinsic::Sqrt => Value::Float(arg(0).as_float().sqrt()),
            Intrinsic::Abs => match arg(0) {
                Value::Int(x) => Value::Int(x.abs()),
                Value::Float(x) => Value::Float(x.abs()),
                v => panic!("type-checked abs on {v:?}"),
            },
            Intrinsic::MinOf => match (arg(0), arg(1)) {
                (Value::Int(a), Value::Int(b)) => Value::Int(a.min(b)),
                (Value::Float(a), Value::Float(b)) => Value::Float(a.min(b)),
                _ => panic!("type-checked min"),
            },
            Intrinsic::MaxOf => match (arg(0), arg(1)) {
                (Value::Int(a), Value::Int(b)) => Value::Int(a.max(b)),
                (Value::Float(a), Value::Float(b)) => Value::Float(a.max(b)),
                _ => panic!("type-checked max"),
            },
            Intrinsic::IntOf => Value::Int(arg(0).as_float() as i64),
            Intrinsic::FloatOf => Value::Float(arg(0).as_int() as f64),
            Intrinsic::Len => match arg(0) {
                Value::ArrayInt(a) => Value::Int(a.read().len() as i64),
                Value::ArrayFloat(a) => Value::Int(a.read().len() as i64),
                v => panic!("type-checked len on {v:?}"),
            },
            Intrinsic::ArrayNew => unreachable!("lowered to Instr::ArrayNew"),
        }
    }

    fn binary(
        &self,
        env: &RankEnv,
        op: BinOp,
        l: Value,
        r: Value,
        span: Span,
    ) -> Result<Value, RunError> {
        use BinOp::*;
        Ok(match (op, &l, &r) {
            (Add, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
            (Sub, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_sub(*b)),
            (Mul, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_mul(*b)),
            (Div, Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    return Err(RunError::new(RunErrorKind::DivisionByZero, span, env.rank));
                }
                Value::Int(a.wrapping_div(*b))
            }
            (Rem, Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    return Err(RunError::new(RunErrorKind::DivisionByZero, span, env.rank));
                }
                Value::Int(a.wrapping_rem(*b))
            }
            (Add, Value::Float(a), Value::Float(b)) => Value::Float(a + b),
            (Sub, Value::Float(a), Value::Float(b)) => Value::Float(a - b),
            (Mul, Value::Float(a), Value::Float(b)) => Value::Float(a * b),
            (Div, Value::Float(a), Value::Float(b)) => Value::Float(a / b),
            (Rem, Value::Float(a), Value::Float(b)) => Value::Float(a % b),
            (Eq, a, b) => Value::Bool(scalar_eq(a, b)),
            (Ne, a, b) => Value::Bool(!scalar_eq(a, b)),
            (Lt, Value::Int(a), Value::Int(b)) => Value::Bool(a < b),
            (Le, Value::Int(a), Value::Int(b)) => Value::Bool(a <= b),
            (Gt, Value::Int(a), Value::Int(b)) => Value::Bool(a > b),
            (Ge, Value::Int(a), Value::Int(b)) => Value::Bool(a >= b),
            (Lt, Value::Float(a), Value::Float(b)) => Value::Bool(a < b),
            (Le, Value::Float(a), Value::Float(b)) => Value::Bool(a <= b),
            (Gt, Value::Float(a), Value::Float(b)) => Value::Bool(a > b),
            (Ge, Value::Float(a), Value::Float(b)) => Value::Bool(a >= b),
            (And, Value::Bool(a), Value::Bool(b)) => Value::Bool(*a && *b),
            (Or, Value::Bool(a), Value::Bool(b)) => Value::Bool(*a || *b),
            (op, l, r) => panic!("type-checked binary {op:?} on {l:?}/{r:?}"),
        })
    }

    // ---- small helpers ---------------------------------------------------

    fn bump_steps(&self, env: &RankEnv, span: Span) -> Result<(), RunError> {
        let n = env.steps.fetch_add(1, Ordering::Relaxed);
        if n >= env.max_steps {
            return Err(RunError::new(RunErrorKind::StepLimit, span, env.rank));
        }
        Ok(())
    }

    fn read(&self, frame: &Frame, v: IrValue) -> Value {
        match v {
            IrValue::Const(Const::Int(x)) => Value::Int(x),
            IrValue::Const(Const::Float(x)) => Value::Float(x),
            IrValue::Const(Const::Bool(x)) => Value::Bool(x),
            IrValue::Reg(r) => self.read_reg(frame, r),
        }
    }

    fn read_reg(&self, frame: &Frame, r: Reg) -> Value {
        match &frame[r.index()] {
            Slot::Owned(v) => v.clone(),
            Slot::Shared(c) => c.read().clone(),
        }
    }

    fn write(&self, frame: &mut Frame, r: Reg, v: Value) {
        match &mut frame[r.index()] {
            Slot::Owned(slot) => *slot = v,
            Slot::Shared(c) => *c.write() = v,
        }
    }
}

/// Classify an error returned by the MPI substrate: the wait-for-graph
/// detector is a PARCOACH-side runtime verifier (it names the exact
/// cyclic deadlock before the run hangs), so its findings surface as a
/// check detection rather than a plain substrate error.
fn classify_mpi_error(e: MpiError) -> RunErrorKind {
    match e {
        MpiError::WaitCycle { cycle, .. } => RunErrorKind::WaitForCycle { cycle },
        other => RunErrorKind::Mpi(other),
    }
}

/// Errors that are consequences of another thread's failure (poisoned
/// barrier, aborted MPI) rather than root causes.
fn is_secondary_error(e: &RunError) -> bool {
    match &e.kind {
        RunErrorKind::Mpi(MpiError::Aborted(_)) => true,
        RunErrorKind::ThreadBarrier(m) => m.contains("poisoned"),
        _ => false,
    }
}

fn scalar_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        _ => panic!("type-checked equality"),
    }
}

fn check_bounds(i: i64, len: usize, span: Span, rank: usize) -> Result<(), RunError> {
    if i < 0 || i as usize >= len {
        Err(RunError::new(
            RunErrorKind::IndexOutOfBounds { index: i, len },
            span,
            rank,
        ))
    } else {
        Ok(())
    }
}

/// Human name for a CC color. Every known color has a static name; only
/// the unknown-color fallback allocates.
fn color_name(color: u32) -> std::borrow::Cow<'static, str> {
    if color == 0 {
        return "<return/exit>".into();
    }
    if color == parcoach_ir::instr::COLOR_COMM_SPLIT {
        return "MPI_Comm_split".into();
    }
    if color == parcoach_ir::instr::COLOR_COMM_DUP {
        return "MPI_Comm_dup".into();
    }
    CollectiveKind::ALL
        .iter()
        .find(|k| k.color() == color)
        .map(|k| k.mpi_name().into())
        .unwrap_or_else(|| format!("<color {color}>").into())
}

/// Precompute the plan of one parallel region.
fn region_plan(f: &FuncIr, begin: BlockId, region: RegionId) -> RegionPlan {
    let body_entry = match &f.block(begin).term {
        Terminator::Goto(t) => *t,
        _ => panic!("parallel.begin must have a goto terminator"),
    };
    let end_block = f
        .iter_blocks()
        .find_map(|(id, b)| match b.directive() {
            Some(Directive::ParallelEnd { region: r }) if *r == region => Some(id),
            _ => None,
        })
        .expect("matching parallel.end exists");
    // Region membership: blocks reachable from body_entry without
    // crossing the end block.
    let mut in_region: HashSet<BlockId> = HashSet::new();
    let mut queue = VecDeque::from([body_entry]);
    in_region.insert(body_entry);
    while let Some(b) = queue.pop_front() {
        for s in f.successors(b) {
            if s != end_block && in_region.insert(s) {
                queue.push_back(s);
            }
        }
    }
    // Registers used inside the region vs. assigned outside it.
    let mut used: HashSet<Reg> = HashSet::new();
    let mut assigned_outside: HashSet<Reg> = HashSet::new();
    for p in &f.params {
        assigned_outside.insert(*p);
    }
    for (id, b) in f.iter_blocks() {
        let inside = in_region.contains(&id);
        let (refs, defs) = block_regs(b);
        if inside {
            used.extend(refs.iter().copied());
            used.extend(defs.iter().copied());
        } else {
            assigned_outside.extend(defs.iter().copied());
        }
    }
    let mut shared_regs: Vec<Reg> = used.intersection(&assigned_outside).copied().collect();
    shared_regs.sort_unstable();
    RegionPlan {
        body_entry,
        end_block,
        shared_regs,
    }
}

/// All registers a block references (reads) and defines (writes).
fn block_regs(b: &parcoach_ir::func::BasicBlock) -> (Vec<Reg>, Vec<Reg>) {
    let mut refs: Vec<Reg> = Vec::new();
    let mut defs: Vec<Reg> = Vec::new();
    let val = |v: &IrValue, out: &mut Vec<Reg>| {
        if let IrValue::Reg(r) = v {
            out.push(*r);
        }
    };
    for i in &b.instrs {
        if let Some(d) = i.dest() {
            defs.push(d);
        }
        match i {
            Instr::Copy { src, .. } | Instr::Unary { src, .. } => val(src, &mut refs),
            Instr::Binary { lhs, rhs, .. } => {
                val(lhs, &mut refs);
                val(rhs, &mut refs);
            }
            Instr::ArrayNew { len, init, .. } => {
                val(len, &mut refs);
                val(init, &mut refs);
            }
            Instr::Load { arr, idx, .. } => {
                refs.push(*arr);
                val(idx, &mut refs);
            }
            Instr::Store {
                arr, idx, value, ..
            } => {
                refs.push(*arr);
                val(idx, &mut refs);
                val(value, &mut refs);
            }
            Instr::Intrinsic { args, .. } | Instr::Print { args } => {
                for a in args {
                    val(a, &mut refs);
                }
            }
            Instr::Call { args, .. } => {
                for a in args {
                    val(a, &mut refs);
                }
            }
            Instr::Mpi { op, .. } => match op {
                MpiIr::Collective {
                    value, root, comm, ..
                } => {
                    if let Some(v) = value {
                        val(v, &mut refs);
                    }
                    if let Some(r) = root {
                        val(r, &mut refs);
                    }
                    if let Some(c) = comm {
                        val(c, &mut refs);
                    }
                }
                MpiIr::Send {
                    value,
                    dest,
                    tag,
                    comm,
                } => {
                    val(value, &mut refs);
                    val(dest, &mut refs);
                    val(tag, &mut refs);
                    if let Some(c) = comm {
                        val(c, &mut refs);
                    }
                }
                MpiIr::Recv { src, tag, comm } => {
                    val(src, &mut refs);
                    val(tag, &mut refs);
                    if let Some(c) = comm {
                        val(c, &mut refs);
                    }
                }
                MpiIr::CommSplit { parent, color, key } => {
                    val(parent, &mut refs);
                    val(color, &mut refs);
                    val(key, &mut refs);
                }
                MpiIr::CommDup { comm } => val(comm, &mut refs),
                MpiIr::Isend {
                    value,
                    dest,
                    tag,
                    comm,
                } => {
                    val(value, &mut refs);
                    val(dest, &mut refs);
                    val(tag, &mut refs);
                    if let Some(c) = comm {
                        val(c, &mut refs);
                    }
                }
                MpiIr::Irecv { src, tag, comm } => {
                    val(src, &mut refs);
                    val(tag, &mut refs);
                    if let Some(c) = comm {
                        val(c, &mut refs);
                    }
                }
                MpiIr::Wait { request } => val(request, &mut refs),
                MpiIr::Waitall { requests } => {
                    for r in requests {
                        val(r, &mut refs);
                    }
                }
                _ => {}
            },
            Instr::Check(CheckOp::CollectiveCc { comm: Some(c), .. }) => val(c, &mut refs),
            Instr::Check(_) => {}
        }
    }
    if let Some(d) = b.directive() {
        match d {
            Directive::ParallelBegin {
                num_threads: Some(v),
                ..
            } => val(v, &mut refs),
            Directive::SingleBegin { chosen, .. }
            | Directive::MasterBegin { chosen, .. }
            | Directive::SectionBegin { chosen, .. } => {
                defs.push(*chosen);
            }
            Directive::PForInit {
                var,
                chunk_end,
                lo,
                hi,
                ..
            } => {
                defs.push(*var);
                defs.push(*chunk_end);
                val(lo, &mut refs);
                val(hi, &mut refs);
            }
            _ => {}
        }
    }
    if let Terminator::Branch { cond, .. } = &b.term {
        val(cond, &mut refs);
    }
    (refs, defs)
}
