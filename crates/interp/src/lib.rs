//! # parcoach-interp — hybrid executor with dynamic verification
//!
//! Runs lowered MiniHPC modules: MPI ranks are threads over the
//! `parcoach-mpisim` world; `parallel` regions fork real teams on the
//! `parcoach-ompsim` substrate; PARCOACH instrumentation
//! (`CC` color all-reduce, monothread asserts, concurrency counters —
//! inserted by `parcoach-core`) executes in-line, "stopping program
//! execution as soon as [an error] situation is unavoidable" (paper §1)
//! with the error type and source location.
//!
//! ```
//! use parcoach_front::parse_and_check;
//! use parcoach_ir::lower::lower_program;
//! use parcoach_interp::{Executor, RunConfig};
//!
//! let unit = parse_and_check("demo.mh", r#"
//!     fn main() {
//!         MPI_Init();
//!         let sum = MPI_Allreduce(rank() + 1, SUM);
//!         print(sum);
//!         MPI_Finalize();
//!     }
//! "#).unwrap();
//! let module = lower_program(&unit.program, &unit.signatures);
//! let report = Executor::new(module, RunConfig { ranks: 3, ..Default::default() }).run();
//! assert!(report.is_clean());
//! assert!(report.output.iter().all(|l| l.contains("6"))); // 1+2+3
//! ```

pub mod error;
pub mod exec;
pub mod value;

pub use error::{RunError, RunErrorKind, RunReport};
pub use exec::{Executor, RunConfig};
pub use value::Value;

use parcoach_core::{instrument_module, AnalysisSession, InstrumentMode};
use parcoach_front::parse_and_check;
use parcoach_ir::lower::lower_program;

/// End-to-end convenience: parse, check, lower, (optionally) analyze +
/// instrument, then run.
///
/// Returns the static report alongside the run report so callers can
/// correlate "what was predicted" with "what happened".
pub fn check_and_run(
    name: &str,
    src: &str,
    cfg: RunConfig,
    instrument: bool,
) -> Result<(parcoach_core::StaticReport, RunReport), String> {
    let unit = parse_and_check(name, src).map_err(|(diags, sm)| diags.render(&sm))?;
    let module = lower_program(&unit.program, &unit.signatures);
    let verify = parcoach_ir::verify_module(&module);
    if !verify.is_empty() {
        return Err(format!("IR verification failed: {verify:?}"));
    }
    let report = AnalysisSession::builder().build().check_module(&module);
    let module = if instrument {
        let (m, _stats) = instrument_module(&module, &report, InstrumentMode::Selective);
        m
    } else {
        module
    };
    let run = Executor::new(module, cfg).run();
    Ok((report, run))
}
