//! Runtime values.
//!
//! Scalars are copied; arrays are reference types (`Arc<RwLock<…>>`) so
//! element writes are visible across threads, nested parallel regions and
//! function calls — the shared-memory semantics of the C/Fortran codes
//! the paper analyses.

use parcoach_front::ast::Type;
use parcoach_mpisim::MpiValue;
use parking_lot::RwLock;
use std::fmt;
use std::sync::Arc;

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Shared integer array.
    ArrayInt(Arc<RwLock<Vec<i64>>>),
    /// Shared float array.
    ArrayFloat(Arc<RwLock<Vec<f64>>>),
    /// An MPI communicator handle (0 = `MPI_COMM_WORLD`).
    Comm(usize),
    /// A non-blocking MPI request handle ([`Value::NULL_REQUEST`] before
    /// the register is first assigned — waiting on it is a run-time
    /// argument error).
    Request(usize),
}

impl Value {
    /// The request-register default: an invalid handle the simulator
    /// rejects, so waiting on a never-posted request cannot silently
    /// alias request #0.
    pub const NULL_REQUEST: usize = usize::MAX;

    /// Zero-ish default for a type (registers before first assignment).
    pub fn default_for(ty: Type) -> Value {
        match ty {
            Type::Int | Type::Void => Value::Int(0),
            Type::Float => Value::Float(0.0),
            Type::Bool => Value::Bool(false),
            Type::ArrayInt => Value::ArrayInt(Arc::new(RwLock::new(Vec::new()))),
            Type::ArrayFloat => Value::ArrayFloat(Arc::new(RwLock::new(Vec::new()))),
            Type::Comm => Value::Comm(0),
            Type::Request => Value::Request(Value::NULL_REQUEST),
        }
    }

    /// Integer content (sema guarantees the type).
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected int, got {other:?}"),
        }
    }

    /// Float content.
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Float(v) => *v,
            other => panic!("expected float, got {other:?}"),
        }
    }

    /// Bool content.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(v) => *v,
            other => panic!("expected bool, got {other:?}"),
        }
    }

    /// Communicator handle content.
    pub fn as_comm(&self) -> usize {
        match self {
            Value::Comm(v) => *v,
            other => panic!("expected comm, got {other:?}"),
        }
    }

    /// Request handle content.
    pub fn as_request(&self) -> usize {
        match self {
            Value::Request(v) => *v,
            other => panic!("expected request, got {other:?}"),
        }
    }

    /// Convert to an MPI payload (arrays are snapshotted).
    pub fn to_mpi(&self) -> MpiValue {
        match self {
            Value::Int(v) => MpiValue::Int(*v),
            Value::Float(v) => MpiValue::Float(*v),
            Value::Bool(v) => MpiValue::Int(*v as i64),
            Value::ArrayInt(a) => MpiValue::ArrayInt(a.read().clone()),
            Value::ArrayFloat(a) => MpiValue::ArrayFloat(a.read().clone()),
            Value::Comm(_) => panic!("communicator handles are not MPI payloads"),
            Value::Request(_) => panic!("request handles are not MPI payloads"),
        }
    }

    /// Convert from an MPI result.
    pub fn from_mpi(v: MpiValue) -> Value {
        match v {
            MpiValue::Int(x) => Value::Int(x),
            MpiValue::Float(x) => Value::Float(x),
            MpiValue::ArrayInt(a) => Value::ArrayInt(Arc::new(RwLock::new(a))),
            MpiValue::ArrayFloat(a) => Value::ArrayFloat(Arc::new(RwLock::new(a))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::ArrayInt(a) => {
                let a = a.read();
                write!(f, "{a:?}")
            }
            Value::ArrayFloat(a) => {
                let a = a.read();
                write!(f, "{a:?}")
            }
            Value::Comm(h) => write!(f, "comm#{h}"),
            Value::Request(h) if *h == Value::NULL_REQUEST => write!(f, "request#<null>"),
            Value::Request(h) => write!(f, "request#{h}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_types() {
        assert_eq!(Value::default_for(Type::Int).as_int(), 0);
        assert_eq!(Value::default_for(Type::Float).as_float(), 0.0);
        assert!(!Value::default_for(Type::Bool).as_bool());
    }

    #[test]
    fn arrays_are_reference_types() {
        let a = Value::default_for(Type::ArrayInt);
        let b = a.clone();
        if let (Value::ArrayInt(x), Value::ArrayInt(y)) = (&a, &b) {
            x.write().push(7);
            assert_eq!(*y.read(), vec![7]);
        } else {
            panic!();
        }
    }

    #[test]
    fn mpi_roundtrip() {
        let v = Value::Int(42);
        assert_eq!(v.to_mpi(), MpiValue::Int(42));
        let arr = Value::from_mpi(MpiValue::ArrayFloat(vec![1.0, 2.0]));
        if let Value::ArrayFloat(a) = &arr {
            assert_eq!(*a.read(), vec![1.0, 2.0]);
        } else {
            panic!();
        }
        // Snapshot: mutating the Value after to_mpi must not alter the payload.
        if let Value::ArrayFloat(a) = &arr {
            let payload = arr.to_mpi();
            a.write().push(3.0);
            assert_eq!(payload, MpiValue::ArrayFloat(vec![1.0, 2.0]));
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Bool(true).to_string(), "true");
        let a = Value::ArrayInt(Arc::new(RwLock::new(vec![1, 2])));
        assert_eq!(a.to_string(), "[1, 2]");
    }
}
