//! Run-time errors and the run report.
//!
//! The interesting distinction for the paper's evaluation is *who caught
//! the bug*: a PARCOACH dynamic check (clean, before the collective, with
//! source lines — [`RunErrorKind::is_check_detection`]) versus the
//! substrate's last-line-of-defence (matcher mismatch, deadlock census,
//! timeout — what an uninstrumented run degenerates to).

use parcoach_front::span::Span;
use parcoach_mpisim::MpiError;
use std::fmt;

/// Classified run-time error.
#[derive(Debug, Clone, PartialEq)]
pub enum RunErrorKind {
    /// PARCOACH `CC` detected a collective mismatch *before* it happened:
    /// ranks disagree on the next collective.
    CcMismatch {
        /// Per-rank color names (`MPI_Barrier`, `<return/exit>`, …).
        per_rank: Vec<String>,
    },
    /// PARCOACH monothread assert fired: several threads reached a
    /// collective (or communicator-management operation) that must be
    /// monothreaded.
    MonothreadViolation {
        /// MPI name of the guarded operation.
        what: &'static str,
    },
    /// PARCOACH concurrency counter fired: two collective-bearing
    /// monothreaded regions (or two iterations of one) overlapped.
    ConcurrentRegions {
        /// The static site id.
        site: u32,
    },
    /// PARCOACH p2p epoch census fired: a communicator's total sends
    /// and receives differ at the epoch's final synchronization point
    /// (unmatched point-to-point traffic).
    P2pImbalance {
        /// Per unbalanced communicator: (handle, sent, received).
        comms: Vec<(usize, u64, u64)>,
    },
    /// The wait-for-graph detector fired at a blocked `MPI_Wait`/
    /// `MPI_Recv`: the graph of "who awaits a message from whom" is
    /// cyclic, so the deadlock is genuine (and reported with the ranks
    /// on the cycle instead of hanging until the operation timeout).
    /// Classified as a check detection: like the `CC`, it names the
    /// exact error before the run degenerates into a silent hang.
    WaitForCycle {
        /// Global ranks on the cycle, in wait-for order.
        cycle: Vec<usize>,
    },
    /// The MPI substrate reported an error (mismatch at the matcher,
    /// deadlock census, thread-level violation, …).
    Mpi(MpiError),
    /// A thread barrier diverged or was poisoned.
    ThreadBarrier(String),
    /// The OpenMP substrate refused an operation.
    Omp(String),
    /// Plain program faults.
    DivisionByZero,
    /// Array access out of bounds.
    IndexOutOfBounds {
        /// Offending index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// Non-void function fell off the end.
    MissingReturn {
        /// Function name.
        func: String,
    },
    /// Call-stack depth exceeded.
    StackOverflow,
    /// Instruction budget exhausted (infinite-loop guard).
    StepLimit,
    /// Negative or invalid array length.
    BadArrayLength(i64),
}

impl RunErrorKind {
    /// Stable machine-readable code.
    pub fn code(&self) -> &'static str {
        match self {
            RunErrorKind::CcMismatch { .. } => "cc-mismatch",
            RunErrorKind::MonothreadViolation { .. } => "monothread-violation",
            RunErrorKind::ConcurrentRegions { .. } => "concurrent-regions",
            RunErrorKind::P2pImbalance { .. } => "p2p-imbalance",
            RunErrorKind::WaitForCycle { .. } => "wait-cycle",
            RunErrorKind::Mpi(MpiError::CollectiveMismatch { .. }) => "mpi-mismatch",
            RunErrorKind::Mpi(MpiError::Deadlock { .. }) => "mpi-deadlock",
            // Normally re-classified to WaitForCycle by the executor;
            // kept addressable for raw substrate errors.
            RunErrorKind::Mpi(MpiError::WaitCycle { .. }) => "mpi-wait-cycle",
            RunErrorKind::Mpi(MpiError::RankFinishedEarly { .. }) => "mpi-early-exit",
            RunErrorKind::Mpi(MpiError::Timeout { .. }) => "mpi-timeout",
            RunErrorKind::Mpi(MpiError::ThreadLevelViolation { .. }) => "thread-level",
            RunErrorKind::Mpi(MpiError::ArgError(_)) => "mpi-args",
            RunErrorKind::Mpi(MpiError::Aborted(_)) => "aborted",
            RunErrorKind::ThreadBarrier(_) => "thread-barrier",
            RunErrorKind::Omp(_) => "omp",
            RunErrorKind::DivisionByZero => "div-zero",
            RunErrorKind::IndexOutOfBounds { .. } => "index-oob",
            RunErrorKind::MissingReturn { .. } => "missing-return",
            RunErrorKind::StackOverflow => "stack-overflow",
            RunErrorKind::StepLimit => "step-limit",
            RunErrorKind::BadArrayLength(_) => "bad-array-length",
        }
    }

    /// Was the bug intercepted by a PARCOACH dynamic check (as opposed to
    /// the substrate's fallback detection)?
    pub fn is_check_detection(&self) -> bool {
        matches!(
            self,
            RunErrorKind::CcMismatch { .. }
                | RunErrorKind::MonothreadViolation { .. }
                | RunErrorKind::ConcurrentRegions { .. }
                | RunErrorKind::P2pImbalance { .. }
                | RunErrorKind::WaitForCycle { .. }
        )
    }

    /// Is this a verification-relevant error at all (vs. a plain program
    /// fault like division by zero)?
    pub fn is_verification_error(&self) -> bool {
        self.is_check_detection()
            || matches!(
                self,
                RunErrorKind::Mpi(
                    MpiError::CollectiveMismatch { .. }
                        | MpiError::Deadlock { .. }
                        | MpiError::WaitCycle { .. }
                        | MpiError::RankFinishedEarly { .. }
                        | MpiError::Timeout { .. }
                        | MpiError::ThreadLevelViolation { .. }
                ) | RunErrorKind::ThreadBarrier(_)
            )
    }
}

/// A run-time error with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct RunError {
    /// What happened.
    pub kind: RunErrorKind,
    /// Where (span of the triggering instruction; dummy if unknown).
    pub span: Span,
    /// Rank that raised it.
    pub rank: usize,
}

impl RunError {
    /// Build an error.
    pub fn new(kind: RunErrorKind, span: Span, rank: usize) -> RunError {
        RunError { kind, span, rank }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {}: ", self.rank)?;
        match &self.kind {
            RunErrorKind::CcMismatch { per_rank } => {
                write!(
                    f,
                    "PARCOACH CC: collective mismatch about to happen; next operations: "
                )?;
                for (r, c) in per_rank.iter().enumerate() {
                    write!(f, "[rank {r}: {c}]")?;
                }
                Ok(())
            }
            RunErrorKind::MonothreadViolation { what } => write!(
                f,
                "PARCOACH: {what} executed by multiple concurrent threads"
            ),
            RunErrorKind::ConcurrentRegions { site } => write!(
                f,
                "PARCOACH: two collective-bearing monothreaded regions ran \
                 concurrently (site {site})"
            ),
            RunErrorKind::P2pImbalance { comms } => {
                write!(
                    f,
                    "PARCOACH P2P census: unmatched point-to-point traffic at \
                     finalize:"
                )?;
                for (h, sent, recvd) in comms {
                    write!(f, " [comm #{h}: {sent} sent, {recvd} received]")?;
                }
                Ok(())
            }
            RunErrorKind::WaitForCycle { cycle } => {
                write!(f, "PARCOACH wait-for graph: cyclic deadlock:")?;
                for (i, r) in cycle.iter().enumerate() {
                    let next = cycle[(i + 1) % cycle.len()];
                    write!(f, " rank {r} waits on rank {next};")?;
                }
                Ok(())
            }
            RunErrorKind::Mpi(e) => write!(f, "{e}"),
            RunErrorKind::ThreadBarrier(m) => write!(f, "thread barrier: {m}"),
            RunErrorKind::Omp(m) => write!(f, "OpenMP runtime: {m}"),
            RunErrorKind::DivisionByZero => write!(f, "division by zero"),
            RunErrorKind::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds (len {len})")
            }
            RunErrorKind::MissingReturn { func } => {
                write!(f, "function `{func}` ended without returning a value")
            }
            RunErrorKind::StackOverflow => write!(f, "call stack overflow"),
            RunErrorKind::StepLimit => write!(f, "instruction budget exhausted"),
            RunErrorKind::BadArrayLength(n) => write!(f, "invalid array length {n}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Aggregate outcome of one program run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// First error per failing rank (empty = clean run).
    pub errors: Vec<RunError>,
    /// Captured `print` output, in arrival order, prefixed by rank.
    pub output: Vec<String>,
}

impl RunReport {
    /// Did the program complete without any error?
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// The primary (first) error.
    pub fn first_error(&self) -> Option<&RunError> {
        self.errors.first()
    }

    /// Was the failure intercepted by a PARCOACH check?
    pub fn detected_by_check(&self) -> bool {
        self.errors.iter().any(|e| e.kind.is_check_detection())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(RunErrorKind::CcMismatch { per_rank: vec![] }.is_check_detection());
        assert!(RunErrorKind::MonothreadViolation {
            what: "MPI_Barrier"
        }
        .is_check_detection());
        assert!(!RunErrorKind::DivisionByZero.is_check_detection());
        assert!(RunErrorKind::Mpi(MpiError::Deadlock { states: vec![] }).is_verification_error());
        assert!(!RunErrorKind::StepLimit.is_verification_error());
    }

    #[test]
    fn codes_distinct_for_key_kinds() {
        let kinds = [
            RunErrorKind::CcMismatch { per_rank: vec![] },
            RunErrorKind::MonothreadViolation {
                what: "MPI_Barrier",
            },
            RunErrorKind::ConcurrentRegions { site: 0 },
            RunErrorKind::DivisionByZero,
            RunErrorKind::StepLimit,
        ];
        let mut codes: Vec<_> = kinds.iter().map(|k| k.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), kinds.len());
    }

    #[test]
    fn report_helpers() {
        let clean = RunReport {
            errors: vec![],
            output: vec![],
        };
        assert!(clean.is_clean());
        assert!(!clean.detected_by_check());
        let failing = RunReport {
            errors: vec![RunError::new(
                RunErrorKind::CcMismatch {
                    per_rank: vec!["MPI_Barrier".into(), "<return>".into()],
                },
                Span::DUMMY,
                0,
            )],
            output: vec![],
        };
        assert!(!failing.is_clean());
        assert!(failing.detected_by_check());
        let text = failing.first_error().unwrap().to_string();
        assert!(text.contains("MPI_Barrier"), "{text}");
    }
}
