//! The work-stealing compute pool.
//!
//! Workers own LIFO deques and steal FIFO from victims picked by a
//! seeded xorshift sequence; externally submitted tasks land in a shared
//! FIFO injector. The thread that opens a [`Pool::scope`] participates
//! in execution while it waits, so a pool configured for `jobs` total
//! lanes runs `jobs - 1` background workers. With `jobs = 1` there are
//! no background workers at all and every spawn runs inline at the
//! submission point — the sequential reference schedule the determinism
//! tests compare against.
//!
//! Result determinism is *structural*, not scheduling-based: [`par_map`]
//! writes each result into its input's slot and merges in index order,
//! so the output is byte-identical for any worker count and any
//! interleaving. Deterministic mode additionally fixes the victim-
//! selection seed (instead of drawing it from OS entropy) so task
//! placement is reproducible modulo OS timing.
//!
//! [`par_map`]: Pool::par_map

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A lifetime-erased unit of work (see [`Scope::spawn`] for the erasure
/// safety argument).
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Pool construction knobs.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Total execution lanes (background workers + the scoping caller).
    /// Clamped to at least 1; `1` means fully inline execution.
    pub jobs: usize,
    /// Deterministic mode: victim selection is seeded from `seed`
    /// instead of OS entropy, making task placement reproducible.
    pub deterministic: bool,
    /// Seed for deterministic victim selection.
    pub seed: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            jobs: default_jobs(),
            deterministic: false,
            seed: 0x5eed_cafe,
        }
    }
}

impl PoolConfig {
    /// Configuration from the environment: `PARCOACH_JOBS` (total
    /// lanes), `PARCOACH_DETERMINISTIC` (`1`/`true`), `PARCOACH_SEED`.
    pub fn from_env() -> PoolConfig {
        let mut cfg = PoolConfig::default();
        if let Some(j) = env_usize("PARCOACH_JOBS") {
            cfg.jobs = j.max(1);
        }
        if let Ok(v) = std::env::var("PARCOACH_DETERMINISTIC") {
            cfg.deterministic = v == "1" || v.eq_ignore_ascii_case("true");
        }
        if let Some(s) = env_usize("PARCOACH_SEED") {
            cfg.seed = s as u64;
        }
        cfg
    }
}

/// Number of lanes when the caller does not say: the machine's
/// available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// xorshift64* with splitmix64 seeding — enough randomness to spread
/// steals, cheap enough to sit on the hot path.
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Xorshift {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Xorshift((z ^ (z >> 31)) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// External submissions (FIFO).
    injector: Mutex<VecDeque<Task>>,
    /// Per-worker deques: owner pops LIFO from the back, thieves steal
    /// FIFO from the front.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Submission epoch: bumped on every submit so a worker that went
    /// empty-handed only sleeps if nothing arrived since its scan began.
    epoch: Mutex<u64>,
    wake: Condvar,
    shutdown: AtomicBool,
    seed: u64,
    deterministic: bool,
}

thread_local! {
    /// (worker index, owning pool) when the current thread is a pool
    /// worker — lets spawns from inside tasks go to the local deque.
    static CURRENT_WORKER: Cell<Option<(usize, *const ())>> = const { Cell::new(None) };
}

impl Shared {
    /// This thread's worker index *in this pool*, if any.
    fn my_index(self: &Arc<Self>) -> Option<usize> {
        CURRENT_WORKER.with(|c| match c.get() {
            Some((i, p)) if std::ptr::eq(p, Arc::as_ptr(self) as *const ()) => Some(i),
            _ => None,
        })
    }

    fn submit(self: &Arc<Self>, task: Task) {
        match self.my_index() {
            Some(i) => self.queues[i].lock().push_back(task),
            None => self.injector.lock().push_back(task),
        }
        *self.epoch.lock() += 1;
        // One task, one worker: repeated submits wake further workers,
        // and awake workers pick up queued tasks without a wakeup.
        self.wake.notify_one();
    }

    /// Pop work: own deque (LIFO), injector (FIFO), then steal from
    /// victims in an `rng`-seeded rotation (FIFO).
    fn find_task(&self, me: Option<usize>, rng: &mut Xorshift) -> Option<Task> {
        if let Some(i) = me {
            if let Some(t) = self.queues[i].lock().pop_back() {
                return Some(t);
            }
        }
        if let Some(t) = self.injector.lock().pop_front() {
            return Some(t);
        }
        let n = self.queues.len();
        if n == 0 {
            return None;
        }
        let start = (rng.next() % n as u64) as usize;
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(t) = self.queues[victim].lock().pop_front() {
                return Some(t);
            }
        }
        None
    }

    /// Seed for lane `lane` (workers 0..n, caller lanes use offsets
    /// above that): stable in deterministic mode, OS entropy otherwise.
    fn lane_seed(&self, lane: u64) -> u64 {
        let base = self.seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if self.deterministic {
            base
        } else {
            use std::collections::hash_map::RandomState;
            use std::hash::{BuildHasher, Hasher};
            let mut h = RandomState::new().build_hasher();
            h.write_u64(base);
            h.finish()
        }
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    CURRENT_WORKER.with(|c| c.set(Some((index, Arc::as_ptr(&shared) as *const ()))));
    let mut rng = Xorshift::new(shared.lane_seed(index as u64));
    loop {
        let epoch = *shared.epoch.lock();
        if let Some(task) = shared.find_task(Some(index), &mut rng) {
            task();
            continue;
        }
        let mut g = shared.epoch.lock();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if *g == epoch {
            shared.wake.wait(&mut g);
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
    }
}

/// Completion tracking for one [`Pool::scope`]: pending-task count plus
/// the first panic any task raised.
#[derive(Default)]
struct ScopeData {
    state: Mutex<ScopeState>,
    done: Condvar,
}

#[derive(Default)]
struct ScopeState {
    pending: usize,
    panic: Option<Box<dyn Any + Send + 'static>>,
}

/// Spawn handle passed to the closure of [`Pool::scope`]; spawned tasks
/// may borrow anything that outlives `'scope`.
pub struct Scope<'scope> {
    pool: &'scope Pool,
    data: Arc<ScopeData>,
    /// Invariant over 'scope, as std::thread::scope.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn a task into the pool. Runs inline immediately when the pool
    /// has no background workers (`jobs = 1`).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.data.state.lock().pending += 1;
        let data = Arc::clone(&self.data);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            let mut st = data.state.lock();
            if let Err(p) = result {
                st.panic.get_or_insert(p);
            }
            st.pending -= 1;
            drop(st);
            data.done.notify_all();
        });
        // SAFETY: the closure may borrow data of lifetime 'scope. The
        // scope that created `self` does not return before `pending`
        // drops to zero (`wait_scope`), i.e. before this closure has
        // finished running, so the erased borrows never outlive their
        // owners. Only the lifetime is transmuted; the layout of a boxed
        // trait object does not depend on its lifetime parameter.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) };
        if self.pool.shared.queues.is_empty() {
            task(); // jobs = 1: sequential reference schedule
        } else {
            self.pool.shared.submit(task);
        }
    }
}

/// The work-stealing pool. See the module docs for the execution model.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    jobs: usize,
}

impl Pool {
    /// Spin up `cfg.jobs - 1` background workers.
    pub fn new(cfg: PoolConfig) -> Pool {
        let jobs = cfg.jobs.max(1);
        let workers = jobs - 1;
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            epoch: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            seed: cfg.seed,
            deterministic: cfg.deterministic,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("parcoach-pool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            handles,
            jobs,
        }
    }

    /// Total execution lanes (background workers + scoping caller).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Is deterministic mode on?
    pub fn deterministic(&self) -> bool {
        self.shared.deterministic
    }

    /// Run `op` with a [`Scope`]; returns once every task spawned inside
    /// has completed. The calling thread executes queued tasks while it
    /// waits. The first panic from `op` or any task is resumed here.
    pub fn scope<'scope, OP, R>(&'scope self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R + 'scope,
    {
        let data = Arc::new(ScopeData::default());
        let scope = Scope {
            pool: self,
            data: Arc::clone(&data),
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
        self.wait_scope(&data);
        let task_panic = data.state.lock().panic.take();
        match (result, task_panic) {
            (Err(p), _) => resume_unwind(p),
            (_, Some(p)) => resume_unwind(p),
            (Ok(r), None) => r,
        }
    }

    /// Help execute tasks until every task of `data`'s scope completed.
    fn wait_scope(&self, data: &ScopeData) {
        let mut rng = Xorshift::new(self.shared.lane_seed(self.shared.queues.len() as u64 + 1));
        let me = self.shared.my_index();
        loop {
            if data.state.lock().pending == 0 {
                return;
            }
            if let Some(task) = self.shared.find_task(me, &mut rng) {
                task();
                continue;
            }
            // Nothing runnable here: the remaining tasks are in flight on
            // workers (their completion notifies `done`) or were queued
            // after our scan (the submit woke the workers).
            let mut st = data.state.lock();
            if st.pending == 0 {
                return;
            }
            data.done.wait(&mut st);
        }
    }

    /// Map `f` over `items` in parallel; the output preserves input
    /// order (slot-per-item, merged in index order), so it is
    /// byte-identical for any worker count.
    ///
    /// Items are grouped into contiguous chunks (about four per lane) so
    /// that fine-grained inputs — per-function analyses take tens of
    /// microseconds — are not drowned by per-task queue traffic. Chunk
    /// boundaries depend only on the input length, never on timing.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.jobs == 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let chunk_size = items.len().div_ceil(self.jobs * 4).max(1);
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        self.scope(|s| {
            for (in_chunk, out_chunk) in items.chunks(chunk_size).zip(out.chunks_mut(chunk_size)) {
                let f = &f;
                s.spawn(move || {
                    for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                        *slot = Some(f(item));
                    }
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("scope waited for every par_map task"))
            .collect()
    }

    /// Run `a` on the calling thread while `b` may run on a worker;
    /// returns both results (rayon's `join` shape).
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let mut ra = None;
        let mut rb = None;
        self.scope(|s| {
            let rb = &mut rb;
            s.spawn(move || *rb = Some(b()));
            ra = Some(a());
        });
        (
            ra.expect("join closure a ran"),
            rb.expect("scope waited for join closure b"),
        )
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let mut g = self.shared.epoch.lock();
            *g += 1;
        }
        self.shared.wake.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn pool(jobs: usize) -> Pool {
        Pool::new(PoolConfig {
            jobs,
            deterministic: true,
            seed: 7,
        })
    }

    #[test]
    fn par_map_preserves_order() {
        let p = pool(4);
        let items: Vec<u64> = (0..100).collect();
        let out = p.par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_identical_across_job_counts() {
        let items: Vec<u64> = (0..64).collect();
        let expected = pool(1).par_map(&items, |&x| x.wrapping_mul(31).rotate_left(7));
        for jobs in [2, 3, 8] {
            let got = pool(jobs).par_map(&items, |&x| x.wrapping_mul(31).rotate_left(7));
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn par_map_borrows_locals() {
        let p = pool(3);
        let data = vec![String::from("a"), String::from("bb"), String::from("ccc")];
        let lens = p.par_map(&data, |s| s.len());
        assert_eq!(lens, vec![1, 2, 3]);
        drop(data); // still owned here: tasks completed inside par_map
    }

    #[test]
    fn scope_runs_all_spawns() {
        let p = pool(4);
        let count = AtomicUsize::new(0);
        p.scope(|s| {
            for _ in 0..200 {
                let count = &count;
                s.spawn(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn nested_scopes_from_tasks() {
        let p = pool(4);
        let count = AtomicUsize::new(0);
        p.scope(|s| {
            for _ in 0..4 {
                let p = &p;
                let count = &count;
                s.spawn(move || {
                    p.scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(move || {
                                count.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn task_panic_propagates() {
        let p = pool(2);
        let res = catch_unwind(AssertUnwindSafe(|| {
            p.scope(|s| {
                s.spawn(|| panic!("boom"));
            });
        }));
        assert!(res.is_err());
        // The pool survives the panic and keeps working.
        assert_eq!(p.par_map(&[1, 2, 3], |&x: &i32| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn join_returns_both() {
        let p = pool(2);
        let (a, b) = p.join(|| 21 * 2, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn single_lane_runs_inline() {
        let p = pool(1);
        assert_eq!(p.jobs(), 1);
        // Inline spawns observe program order.
        let mut log = Vec::new();
        p.scope(|s| {
            let log = &mut log;
            s.spawn(move || log.push(1));
        });
        log.push(2);
        assert_eq!(log, vec![1, 2]);
    }

    #[test]
    fn workers_are_reused_across_scopes() {
        let p = pool(4);
        let mut ids = std::collections::HashSet::new();
        for _ in 0..5 {
            let round: Vec<std::thread::ThreadId> =
                p.par_map(&[0u8; 16], |_| std::thread::current().id());
            ids.extend(round);
        }
        // 3 workers + the caller; never more, however many scopes run.
        assert!(ids.len() <= 4, "thread set grew: {}", ids.len());
    }
}
