//! A cache of parked OS threads for *blocking* simulator workloads.
//!
//! The compute [`Pool`](crate::Pool) must never run tasks that block on
//! each other: a team of 4 simulated threads meeting at a barrier needs
//! all 4 running **simultaneously**, which a fixed-width work-stealing
//! pool cannot guarantee. The [`ThreadCache`] keeps that guarantee while
//! killing the per-region spawn cost the simulators used to pay: a
//! [`run_set`] acquires one *dedicated* parked thread per member
//! (spawning new OS threads only when the idle list runs dry) and the
//! threads return to the idle list when the member finishes — the next
//! `parallel` region or rank set reuses them.
//!
//! A member returns its thread to the idle list *before* it counts down
//! the completion latch, so by the time `run_set` returns, every thread
//! it used is already reusable — back-to-back regions never over-spawn.
//!
//! [`run_set`]: ThreadCache::run_set

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

type CacheTask = Box<dyn FnOnce() + Send + 'static>;

/// Erase a scoped task's lifetime so it can cross into a cached worker.
///
/// # Safety
/// The caller must not return (or otherwise invalidate the borrows)
/// before the task has finished running. A boxed trait object's layout
/// does not depend on its lifetime parameter.
unsafe fn erase_task_lifetime<'a>(task: Box<dyn FnOnce() + Send + 'a>) -> CacheTask {
    std::mem::transmute(task)
}

/// Message box of one cached worker thread.
struct WorkSlot {
    cell: Mutex<SlotMsg>,
    cv: Condvar,
}

enum SlotMsg {
    /// Parked, waiting for work.
    Idle,
    /// One task to run.
    Run(CacheTask),
    /// Exit the worker loop (idle list was full on release).
    Retire,
}

impl WorkSlot {
    fn new() -> WorkSlot {
        WorkSlot {
            cell: Mutex::new(SlotMsg::Idle),
            cv: Condvar::new(),
        }
    }

    fn deliver(&self, msg: SlotMsg) {
        *self.cell.lock() = msg;
        self.cv.notify_one();
    }
}

struct CacheShared {
    idle: Mutex<Vec<Arc<WorkSlot>>>,
    /// Idle threads kept beyond this are retired instead.
    max_idle: usize,
    spawned: AtomicUsize,
    reused: AtomicUsize,
}

impl CacheShared {
    /// Put a worker's slot back on the idle list (or retire it). Called
    /// from *inside* the worker's current task, so the worker is
    /// guaranteed to observe the Retire message on its next wait.
    fn release(&self, slot: &Arc<WorkSlot>) {
        let mut idle = self.idle.lock();
        if idle.len() >= self.max_idle {
            slot.deliver(SlotMsg::Retire);
        } else {
            idle.push(Arc::clone(slot));
        }
    }
}

fn cached_worker(slot: Arc<WorkSlot>) {
    loop {
        let task = {
            let mut g = slot.cell.lock();
            loop {
                match std::mem::replace(&mut *g, SlotMsg::Idle) {
                    SlotMsg::Run(t) => break t,
                    SlotMsg::Retire => return,
                    SlotMsg::Idle => slot.cv.wait(&mut g),
                }
            }
        };
        task();
    }
}

/// Countdown latch with a panic slot: `run_set` waits on it and resumes
/// the first member panic.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send + 'static>>,
}

impl Latch {
    fn new(n: usize) -> Latch {
        Latch {
            state: Mutex::new(LatchState {
                remaining: n,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn count_down(&self, panic: Option<Box<dyn Any + Send + 'static>>) {
        let mut st = self.state.lock();
        if let Some(p) = panic {
            st.panic.get_or_insert(p);
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            drop(st);
            self.done.notify_all();
        }
    }

    fn wait(&self) -> Option<Box<dyn Any + Send + 'static>> {
        let mut st = self.state.lock();
        self.done.wait_while(&mut st, |s| s.remaining > 0);
        st.panic.take()
    }
}

/// The cache. Cheap to share (`&'static` via
/// [`thread_cache`](crate::thread_cache) in normal use).
pub struct ThreadCache {
    shared: Arc<CacheShared>,
}

impl Default for ThreadCache {
    fn default() -> Self {
        ThreadCache::new(64)
    }
}

impl ThreadCache {
    /// A cache keeping at most `max_idle` parked threads.
    pub fn new(max_idle: usize) -> ThreadCache {
        ThreadCache {
            shared: Arc::new(CacheShared {
                idle: Mutex::new(Vec::new()),
                max_idle,
                spawned: AtomicUsize::new(0),
                reused: AtomicUsize::new(0),
            }),
        }
    }

    /// Total OS threads ever spawned by this cache.
    pub fn spawned_total(&self) -> usize {
        self.shared.spawned.load(Ordering::Relaxed)
    }

    /// Total dispatches served by a parked (reused) thread.
    pub fn reused_total(&self) -> usize {
        self.shared.reused.load(Ordering::Relaxed)
    }

    /// Run `f(0), f(1), …, f(n-1)` concurrently, each on its own
    /// dedicated thread, and return when all have finished. Members may
    /// block on one another (barriers, collectives); the concurrency
    /// guarantee is what the simulators' fork/join semantics require.
    /// The first member panic is resumed on the caller.
    pub fn run_set<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        // Phase 1 — acquire all n threads up front. This is the only
        // fallible part (OS thread-spawn can fail near the process's
        // thread limit): if it panics here, no task has been delivered
        // yet, so no lifetime-erased borrow of `f` is live and the
        // unwind is a clean panic, not a use-after-free. Already-parked
        // acquisitions are merely lost from the idle list in that case.
        let slots: Vec<Arc<WorkSlot>> = (0..n).map(|_| self.acquire_slot()).collect();
        // Phase 2 — infallible: build and deliver every member task,
        // then block on the latch.
        let latch = Arc::new(Latch::new(n));
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        for (i, slot) in slots.into_iter().enumerate() {
            let latch = Arc::clone(&latch);
            let shared = Arc::clone(&self.shared);
            let task_slot = Arc::clone(&slot);
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(|| f_ref(i)));
                // Reusable before the caller can observe completion.
                shared.release(&task_slot);
                latch.count_down(result.err());
            });
            // SAFETY: once the first task is delivered, nothing on this
            // path can unwind before `latch.wait()` below, and every
            // member counts the latch down only after it finished using
            // `f_ref` — so the erased borrow of `f` outlives every use.
            let task: CacheTask = unsafe { erase_task_lifetime(task) };
            slot.deliver(SlotMsg::Run(task));
        }
        if let Some(p) = latch.wait() {
            resume_unwind(p);
        }
    }

    /// Pop a parked worker or spawn a fresh one.
    fn acquire_slot(&self) -> Arc<WorkSlot> {
        let popped = self.shared.idle.lock().pop();
        match popped {
            Some(slot) => {
                self.shared.reused.fetch_add(1, Ordering::Relaxed);
                slot
            }
            None => {
                self.shared.spawned.fetch_add(1, Ordering::Relaxed);
                let slot = Arc::new(WorkSlot::new());
                let worker_slot = Arc::clone(&slot);
                std::thread::Builder::new()
                    .name("parcoach-sim-worker".into())
                    .spawn(move || cached_worker(worker_slot))
                    .expect("spawn cached simulator thread");
                slot
            }
        }
    }

    /// Run one detached task on a cached thread and return immediately.
    ///
    /// The daemon uses this for per-connection reader/worker threads:
    /// connection churn reuses parked threads instead of paying an OS
    /// spawn per client. The thread returns to the idle list when `f`
    /// finishes; a panic in `f` is contained to the task (the worker
    /// survives and re-parks) — detached callers have no join point to
    /// resume it on.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let slot = self.acquire_slot();
        let shared = Arc::clone(&self.shared);
        let task_slot = Arc::clone(&slot);
        let task: CacheTask = Box::new(move || {
            let _ = catch_unwind(AssertUnwindSafe(f));
            shared.release(&task_slot);
        });
        slot.deliver(SlotMsg::Run(task));
    }

    /// [`run_set`](Self::run_set) collecting one result per member, in
    /// member order.
    pub fn run_map<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        self.run_set(n, |i| {
            *slots[i].lock() = Some(f(i));
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("member wrote its result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn members_run_concurrently() {
        // A barrier among all members only passes if they are truly
        // concurrent — a serializing pool would deadlock here.
        let cache = ThreadCache::default();
        let barrier = Barrier::new(8);
        cache.run_set(8, |_| {
            barrier.wait();
        });
    }

    #[test]
    fn threads_are_reused_across_sets() {
        let cache = ThreadCache::default();
        // A barrier keeps all 4 members alive at once, forcing 4
        // distinct threads (without it, a member finishing early can
        // release its thread for a later member to reuse).
        let barrier = Barrier::new(4);
        cache.run_set(4, |_| {
            barrier.wait();
        });
        assert_eq!(cache.spawned_total(), 4);
        for _ in 0..10 {
            cache.run_set(4, |_| {});
        }
        // Four threads idle when each later set starts (release happens
        // before the completion latch), so nothing new ever spawns.
        assert_eq!(cache.spawned_total(), 4);
        assert_eq!(cache.reused_total(), 40);
    }

    #[test]
    fn nested_sets_grow_the_cache() {
        let cache = Arc::new(ThreadCache::default());
        let c2 = Arc::clone(&cache);
        cache.run_set(2, move |_| {
            let inner = Barrier::new(2);
            c2.run_set(2, |_| {
                inner.wait();
            });
        });
        assert!(cache.spawned_total() >= 4);
    }

    #[test]
    fn run_map_collects_in_order() {
        let cache = ThreadCache::default();
        let out = cache.run_map(6, |i| i * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn member_panic_propagates() {
        let cache = ThreadCache::default();
        let res = catch_unwind(AssertUnwindSafe(|| {
            cache.run_set(3, |i| {
                if i == 1 {
                    panic!("member down");
                }
            });
        }));
        assert!(res.is_err());
        // The cache still works afterwards.
        cache.run_set(3, |_| {});
    }

    #[test]
    fn spawn_is_detached_and_reuses_threads() {
        let cache = ThreadCache::default();
        let (tx, rx) = std::sync::mpsc::channel();
        for i in 0..5 {
            let tx = tx.clone();
            cache.spawn(move || {
                tx.send(i).unwrap();
            });
        }
        let mut got: Vec<i32> = (0..5).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        // A panicking detached task neither kills the process nor leaks
        // the worker: the thread re-parks and serves the next spawn.
        cache.spawn(|| panic!("detached task down"));
        let (tx2, rx2) = std::sync::mpsc::channel();
        cache.spawn(move || tx2.send(7i32).unwrap());
        assert_eq!(rx2.recv().unwrap(), 7);
        assert!(cache.reused_total() > 0, "spawns reuse parked threads");
    }

    #[test]
    fn retirement_respects_idle_cap() {
        let cache = ThreadCache::new(2);
        let barrier = Barrier::new(6);
        cache.run_set(6, |_| {
            barrier.wait();
        });
        // Only 2 threads stayed parked; the rest retired. A second wave
        // reuses those 2 and spawns the difference.
        cache.run_set(2, |_| {});
        assert_eq!(cache.spawned_total(), 6);
        assert_eq!(cache.reused_total(), 2);
    }
}
