//! # parcoach-pool — the workspace's threading subsystem
//!
//! Two complementary primitives, both dependency-free (built on
//! `parcoach-sync`, the workspace's `parking_lot` shim):
//!
//! * [`Pool`] — a work-stealing compute pool exposing a rayon-compatible
//!   subset (`scope`/`spawn`, `join`, `par_map`). Used by the *static*
//!   side: `AnalysisSession` fans per-function analysis out over it, and
//!   the bench harness compiles workloads concurrently. Results are
//!   structurally deterministic (index-ordered merges); deterministic
//!   mode (`PoolConfig::deterministic`) additionally seeds victim
//!   selection so task placement reproduces run to run.
//! * [`ThreadCache`] — parked OS threads for the *dynamic* side. Team
//!   members and MPI ranks block on barriers/collectives, so they need
//!   dedicated concurrent threads, not pool lanes; the cache reuses
//!   those threads across `parallel` regions and rank sets instead of
//!   respawning per encounter (the per-call spawn cost was the
//!   simulators' scalability killer).
//!
//! ## Globals
//!
//! Most callers go through [`global()`] / [`thread_cache()`]. The global
//! pool is configured once, either explicitly ([`configure`], used by
//! `parcoachc --jobs N [--deterministic]`) or from the environment
//! (`PARCOACH_JOBS`, `PARCOACH_DETERMINISTIC`, `PARCOACH_SEED`) on first
//! use. Library code that needs a *specific* pool (the determinism
//! property tests compare `jobs = 1` against `jobs = N`) constructs
//! [`Pool`]s directly and calls the `*_with` entry points of
//! `parcoach-core`.
//!
//! ```
//! use parcoach_pool::{Pool, PoolConfig};
//!
//! let pool = Pool::new(PoolConfig { jobs: 4, deterministic: true, seed: 1 });
//! let squares = pool.par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]); // index order, any schedule
//! ```

pub mod cache;
pub mod pool;

pub use cache::ThreadCache;
pub use pool::{default_jobs, Pool, PoolConfig, Scope};

use parking_lot::Mutex;
use std::sync::OnceLock;

static GLOBAL_CONFIG: Mutex<Option<PoolConfig>> = Mutex::new(None);
static GLOBAL_POOL: OnceLock<Pool> = OnceLock::new();
static GLOBAL_CACHE: OnceLock<ThreadCache> = OnceLock::new();

/// Error from [`configure`]: the global pool was already built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlreadyInitialized;

impl std::fmt::Display for AlreadyInitialized {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("the global pool is already initialized; configure() must run before first use")
    }
}

impl std::error::Error for AlreadyInitialized {}

/// Set the configuration the global pool will be built with. Must be
/// called before the first [`global()`]; later calls fail.
pub fn configure(cfg: PoolConfig) -> Result<(), AlreadyInitialized> {
    if GLOBAL_POOL.get().is_some() {
        return Err(AlreadyInitialized);
    }
    *GLOBAL_CONFIG.lock() = Some(cfg);
    // Between the check and the store someone may have built the pool;
    // they used either the env config or an earlier configure() — both
    // are first-use wins, which callers (the CLI) invoke early enough
    // to not race anything.
    Ok(())
}

/// The process-wide compute pool (built on first use).
pub fn global() -> &'static Pool {
    GLOBAL_POOL.get_or_init(|| {
        let cfg = GLOBAL_CONFIG
            .lock()
            .take()
            .unwrap_or_else(PoolConfig::from_env);
        Pool::new(cfg)
    })
}

/// The process-wide simulator thread cache.
pub fn thread_cache() -> &'static ThreadCache {
    GLOBAL_CACHE.get_or_init(ThreadCache::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_pool_and_cache_exist() {
        assert!(global().jobs() >= 1);
        thread_cache().run_set(2, |_| {});
    }

    #[test]
    fn env_config_parses() {
        // Do not set env vars here (tests run in-process, in parallel);
        // just exercise the default path.
        let cfg = PoolConfig::from_env();
        assert!(cfg.jobs >= 1);
    }
}
