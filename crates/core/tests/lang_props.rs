//! Property tests for the language machinery of the analysis:
//! `L = (S|PB*S)*` membership (DFA vs. reference), word simplification
//! algebra, and the concurrency criterion's symmetry.
//!
//! Random words come from `parcoach_testutil::Rng` with per-case seeds;
//! a failing case reports its seed and the offending word.

use parcoach_core::intern::WordDag;
use parcoach_core::lang::{classify, in_language_reference};
use parcoach_core::word::{SKind, Token, Word};
use parcoach_ir::types::RegionId;
use parcoach_testutil::Rng;

/// Base budget 512; `PARCOACH_PROP_BUDGET=4` (CI's extended matrix)
/// raises it to 2048 — affordable now that the simulators reuse
/// pooled threads.
fn cases() -> u64 {
    parcoach_testutil::case_budget(512)
}

/// Mirror of the old proptest token strategy: P, the three S kinds (in
/// disjoint RegionId ranges), or B, uniformly.
fn random_token(rng: &mut Rng) -> Token {
    match rng.below(5) {
        0 => Token::P(RegionId(rng.range_u32(0, 16))),
        1 => Token::S(RegionId(rng.range_u32(0, 16) + 100), SKind::Single),
        2 => Token::S(RegionId(rng.range_u32(0, 16) + 200), SKind::Master),
        3 => Token::S(RegionId(rng.range_u32(0, 16) + 300), SKind::Section),
        _ => Token::B,
    }
}

fn random_word(rng: &mut Rng) -> Word {
    let len = rng.below(12);
    Word((0..len).map(|_| random_token(rng)).collect())
}

/// The production classifier and the regex-derivative reference must
/// agree on arbitrary words.
#[test]
fn dfa_matches_reference() {
    for seed in 0..cases() {
        let w = random_word(&mut Rng::new(seed));
        assert_eq!(
            classify(&w).verdict.is_monothreaded(),
            in_language_reference(&w),
            "disagreement on {} (seed {seed})",
            w
        );
    }
}

/// Appending `B` never changes monothreadedness ("Bs are ignored").
#[test]
fn barriers_neutral_for_membership() {
    for seed in 0..cases() {
        let w = random_word(&mut Rng::new(seed));
        let mut wb = w.clone();
        wb.push(Token::B);
        assert_eq!(
            classify(&w).verdict.is_monothreaded(),
            classify(&wb).verdict.is_monothreaded(),
            "B changed membership of {} (seed {seed})",
            w
        );
    }
}

/// Opening and immediately closing a region is the identity.
#[test]
fn open_close_roundtrip() {
    for seed in 0..cases() {
        let mut rng = Rng::new(seed);
        let w = random_word(&mut rng);
        let r = RegionId(rng.range_u32(500, 600));
        let mut w2 = w.clone();
        w2.push(Token::P(r));
        assert!(w2.close_region(r), "close P failed (seed {seed})");
        assert_eq!(&w2, &w, "P roundtrip not identity (seed {seed})");
        let mut w3 = w.clone();
        w3.push(Token::S(r, SKind::Single));
        assert!(w3.close_region(r), "close S failed (seed {seed})");
        assert_eq!(&w3, &w, "S roundtrip not identity (seed {seed})");
    }
}

/// `close_region` truncates at the region token: everything after it
/// disappears, everything before survives.
#[test]
fn close_truncates_suffix() {
    for seed in 0..cases() {
        let mut rng = Rng::new(seed);
        let prefix = random_word(&mut rng);
        let suffix = random_word(&mut rng);
        let r = RegionId(rng.range_u32(700, 800));
        let mut w = prefix.clone();
        w.push(Token::P(r));
        for t in suffix.tokens() {
            w.push(*t);
        }
        // The suffix may not contain r (ranges are disjoint by
        // construction), so close_region finds our P.
        assert!(w.close_region(r), "close_region missed (seed {seed})");
        assert_eq!(&w, &prefix, "truncation wrong (seed {seed})");
    }
}

/// Common-prefix length is symmetric and bounded.
#[test]
fn common_prefix_symmetric() {
    for seed in 0..cases() {
        let mut rng = Rng::new(seed);
        let a = random_word(&mut rng);
        let b = random_word(&mut rng);
        let ab = a.common_prefix_len(&b);
        assert_eq!(ab, b.common_prefix_len(&a), "asymmetric (seed {seed})");
        assert!(
            ab <= a.len() && ab <= b.len(),
            "out of bounds (seed {seed})"
        );
        // The prefixes really are equal.
        assert_eq!(&a.tokens()[..ab], &b.tokens()[..ab], "seed {seed}");
        if ab < a.len() && ab < b.len() {
            assert_ne!(a.tokens()[ab], b.tokens()[ab], "seed {seed}");
        }
    }
}

/// Hash-consed words agree with the `Vec<Token>` representation on every
/// observable: building a random token sequence via interned `extend`
/// must materialize to the same tokens, the cached `L`-membership flags
/// must match both the production classifier and the regex-derivative
/// reference automaton, and interning the same sequence twice must yield
/// the same node id (hash-consing actually shares).
#[test]
fn word_dag_matches_vec_representation() {
    for seed in 0..cases() {
        let mut rng = Rng::new(seed);
        let w = random_word(&mut rng);
        let mut dag = WordDag::new();
        // Build incrementally via extend, exactly as compute_pw does.
        let mut node = dag.epsilon();
        for t in w.tokens() {
            node = dag.extend(node, *t);
        }
        // Token content round-trips.
        assert_eq!(
            dag.materialize(node),
            w,
            "materialize mismatch on {} (seed {seed})",
            w
        );
        assert_eq!(dag.len(node) as usize, w.len(), "len (seed {seed})");
        assert_eq!(dag.is_empty(node), w.is_empty(), "is_empty (seed {seed})");
        // The O(1) flag-derived class equals the token-walking classifier
        // and the reference automaton.
        let class = dag.class(node);
        assert_eq!(class, classify(&w), "class mismatch on {} (seed {seed})", w);
        assert_eq!(
            class.verdict.is_monothreaded(),
            in_language_reference(&w),
            "membership cache wrong on {} (seed {seed})",
            w
        );
        // Hash-consing: interning the whole word hits the same node, so
        // equality-by-id is sound.
        assert_eq!(
            dag.intern_word(&w),
            node,
            "intern_word disagrees with extend chain (seed {seed})"
        );
    }
}

/// `cmp_for_report` computed on dag-materialized words must order
/// exactly like the `Vec<Token>` originals — the report comparator may
/// not observe interning order.
#[test]
fn word_dag_preserves_report_order() {
    for seed in 0..cases() {
        let mut rng = Rng::new(seed);
        let a = random_word(&mut rng);
        let b = random_word(&mut rng);
        let mut dag = WordDag::new();
        let na = dag.intern_word(&a);
        let nb = dag.intern_word(&b);
        assert_eq!(
            dag.materialize(na).cmp_for_report(&dag.materialize(nb)),
            a.cmp_for_report(&b),
            "report order changed for {} vs {} (seed {seed})",
            a,
            b
        );
        // Id equality coincides with structural equality within one dag.
        assert_eq!(na == nb, a == b, "id equality wrong (seed {seed})");
    }
}

/// The structural helpers on the dag (`close_region`,
/// `extends_by_barriers`) agree with their `Word` counterparts.
#[test]
fn word_dag_structural_ops_match() {
    for seed in 0..cases() {
        let mut rng = Rng::new(seed);
        let w = random_word(&mut rng);
        let mut dag = WordDag::new();
        let node = dag.intern_word(&w);
        // close_region on every region mentioned in the word, plus one
        // absent region (disjoint range).
        let mut regions: Vec<RegionId> = w.tokens().iter().filter_map(|t| t.region()).collect();
        regions.push(RegionId(rng.range_u32(900, 950)));
        for r in regions {
            let mut expect = w.clone();
            let closed = expect.close_region(r);
            match dag.close_region(node, r) {
                Some(n) => {
                    assert!(closed, "dag closed absent region (seed {seed})");
                    assert_eq!(
                        dag.materialize(n),
                        expect,
                        "close_region({r:?}) mismatch on {} (seed {seed})",
                        w
                    );
                }
                None => assert!(!closed, "dag missed region {r:?} in {} (seed {seed})", w),
            }
        }
        // Barrier extension: w plus k barriers extends w; w plus any
        // non-B token does not.
        let mut ext = node;
        let mut ext_word = w.clone();
        for _ in 0..rng.below(3) + 1 {
            ext = dag.extend(ext, Token::B);
            ext_word.push(Token::B);
        }
        assert!(
            dag.extends_by_barriers(ext, node),
            "B-extension not recognized (seed {seed})"
        );
        assert!(
            ext_word.is_barrier_extension_of(&w),
            "vec oracle disagrees (seed {seed})"
        );
        let diverged = dag.extend(node, Token::P(RegionId(999)));
        assert!(
            !dag.extends_by_barriers(diverged, node),
            "P-extension misclassified (seed {seed})"
        );
    }
}

/// The required-level classification is monotone in context: a word
/// in `L` never demands MPI_THREAD_MULTIPLE.
#[test]
fn levels_consistent_with_membership() {
    use parcoach_front::ast::ThreadLevel;
    for seed in 0..cases() {
        let w = random_word(&mut Rng::new(seed));
        let c = classify(&w);
        if c.verdict.is_monothreaded() {
            assert!(
                c.required_level < ThreadLevel::Multiple,
                "monothreaded {} demands MULTIPLE (seed {seed})",
                w
            );
        } else {
            assert_eq!(
                c.required_level,
                ThreadLevel::Multiple,
                "non-monothreaded {} tolerates < MULTIPLE (seed {seed})",
                w
            );
        }
    }
}
