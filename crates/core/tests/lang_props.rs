//! Property tests for the language machinery of the analysis:
//! `L = (S|PB*S)*` membership (DFA vs. reference), word simplification
//! algebra, and the concurrency criterion's symmetry.

use parcoach_core::lang::{classify, in_language_reference};
use parcoach_core::word::{SKind, Token, Word};
use parcoach_ir::types::RegionId;
use proptest::prelude::*;

fn token_strategy() -> impl Strategy<Value = Token> {
    prop_oneof![
        (0u32..16).prop_map(|i| Token::P(RegionId(i))),
        (0u32..16).prop_map(|i| Token::S(RegionId(i + 100), SKind::Single)),
        (0u32..16).prop_map(|i| Token::S(RegionId(i + 200), SKind::Master)),
        (0u32..16).prop_map(|i| Token::S(RegionId(i + 300), SKind::Section)),
        Just(Token::B),
    ]
}

fn word_strategy() -> impl Strategy<Value = Word> {
    proptest::collection::vec(token_strategy(), 0..12).prop_map(Word)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// The production classifier and the regex-derivative reference must
    /// agree on arbitrary words.
    #[test]
    fn dfa_matches_reference(w in word_strategy()) {
        prop_assert_eq!(
            classify(&w).verdict.is_monothreaded(),
            in_language_reference(&w),
            "disagreement on {}", w
        );
    }

    /// Appending `B` never changes monothreadedness ("Bs are ignored").
    #[test]
    fn barriers_neutral_for_membership(w in word_strategy()) {
        let mut wb = w.clone();
        wb.push(Token::B);
        prop_assert_eq!(
            classify(&w).verdict.is_monothreaded(),
            classify(&wb).verdict.is_monothreaded()
        );
    }

    /// Opening and immediately closing a region is the identity.
    #[test]
    fn open_close_roundtrip(w in word_strategy(), i in 500u32..600) {
        let r = RegionId(i);
        let mut w2 = w.clone();
        w2.push(Token::P(r));
        prop_assert!(w2.close_region(r));
        prop_assert_eq!(&w2, &w);
        let mut w3 = w.clone();
        w3.push(Token::S(r, SKind::Single));
        prop_assert!(w3.close_region(r));
        prop_assert_eq!(&w3, &w);
    }

    /// `close_region` truncates at the region token: everything after it
    /// disappears, everything before survives.
    #[test]
    fn close_truncates_suffix(
        prefix in word_strategy(),
        suffix in word_strategy(),
        i in 700u32..800,
    ) {
        let r = RegionId(i);
        let mut w = prefix.clone();
        w.push(Token::P(r));
        for t in suffix.tokens() {
            w.push(*t);
        }
        // The suffix may not contain r (ranges are disjoint by
        // construction), so close_region finds our P.
        prop_assert!(w.close_region(r));
        prop_assert_eq!(&w, &prefix);
    }

    /// Common-prefix length is symmetric and bounded.
    #[test]
    fn common_prefix_symmetric(a in word_strategy(), b in word_strategy()) {
        let ab = a.common_prefix_len(&b);
        prop_assert_eq!(ab, b.common_prefix_len(&a));
        prop_assert!(ab <= a.len() && ab <= b.len());
        // The prefixes really are equal.
        prop_assert_eq!(&a.tokens()[..ab], &b.tokens()[..ab]);
        if ab < a.len() && ab < b.len() {
            prop_assert_ne!(a.tokens()[ab], b.tokens()[ab]);
        }
    }

    /// The required-level classification is monotone in context: a word
    /// in `L` never demands MPI_THREAD_MULTIPLE.
    #[test]
    fn levels_consistent_with_membership(w in word_strategy()) {
        use parcoach_front::ast::ThreadLevel;
        let c = classify(&w);
        if c.verdict.is_monothreaded() {
            prop_assert!(c.required_level < ThreadLevel::Multiple);
        } else {
            prop_assert_eq!(c.required_level, ThreadLevel::Multiple);
        }
    }
}
