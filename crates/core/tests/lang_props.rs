//! Property tests for the language machinery of the analysis:
//! `L = (S|PB*S)*` membership (DFA vs. reference), word simplification
//! algebra, and the concurrency criterion's symmetry.
//!
//! Random words come from `parcoach_testutil::Rng` with per-case seeds;
//! a failing case reports its seed and the offending word.

use parcoach_core::lang::{classify, in_language_reference};
use parcoach_core::word::{SKind, Token, Word};
use parcoach_ir::types::RegionId;
use parcoach_testutil::Rng;

/// Base budget 512; `PARCOACH_PROP_BUDGET=4` (CI's extended matrix)
/// raises it to 2048 — affordable now that the simulators reuse
/// pooled threads.
fn cases() -> u64 {
    parcoach_testutil::case_budget(512)
}

/// Mirror of the old proptest token strategy: P, the three S kinds (in
/// disjoint RegionId ranges), or B, uniformly.
fn random_token(rng: &mut Rng) -> Token {
    match rng.below(5) {
        0 => Token::P(RegionId(rng.range_u32(0, 16))),
        1 => Token::S(RegionId(rng.range_u32(0, 16) + 100), SKind::Single),
        2 => Token::S(RegionId(rng.range_u32(0, 16) + 200), SKind::Master),
        3 => Token::S(RegionId(rng.range_u32(0, 16) + 300), SKind::Section),
        _ => Token::B,
    }
}

fn random_word(rng: &mut Rng) -> Word {
    let len = rng.below(12);
    Word((0..len).map(|_| random_token(rng)).collect())
}

/// The production classifier and the regex-derivative reference must
/// agree on arbitrary words.
#[test]
fn dfa_matches_reference() {
    for seed in 0..cases() {
        let w = random_word(&mut Rng::new(seed));
        assert_eq!(
            classify(&w).verdict.is_monothreaded(),
            in_language_reference(&w),
            "disagreement on {} (seed {seed})",
            w
        );
    }
}

/// Appending `B` never changes monothreadedness ("Bs are ignored").
#[test]
fn barriers_neutral_for_membership() {
    for seed in 0..cases() {
        let w = random_word(&mut Rng::new(seed));
        let mut wb = w.clone();
        wb.push(Token::B);
        assert_eq!(
            classify(&w).verdict.is_monothreaded(),
            classify(&wb).verdict.is_monothreaded(),
            "B changed membership of {} (seed {seed})",
            w
        );
    }
}

/// Opening and immediately closing a region is the identity.
#[test]
fn open_close_roundtrip() {
    for seed in 0..cases() {
        let mut rng = Rng::new(seed);
        let w = random_word(&mut rng);
        let r = RegionId(rng.range_u32(500, 600));
        let mut w2 = w.clone();
        w2.push(Token::P(r));
        assert!(w2.close_region(r), "close P failed (seed {seed})");
        assert_eq!(&w2, &w, "P roundtrip not identity (seed {seed})");
        let mut w3 = w.clone();
        w3.push(Token::S(r, SKind::Single));
        assert!(w3.close_region(r), "close S failed (seed {seed})");
        assert_eq!(&w3, &w, "S roundtrip not identity (seed {seed})");
    }
}

/// `close_region` truncates at the region token: everything after it
/// disappears, everything before survives.
#[test]
fn close_truncates_suffix() {
    for seed in 0..cases() {
        let mut rng = Rng::new(seed);
        let prefix = random_word(&mut rng);
        let suffix = random_word(&mut rng);
        let r = RegionId(rng.range_u32(700, 800));
        let mut w = prefix.clone();
        w.push(Token::P(r));
        for t in suffix.tokens() {
            w.push(*t);
        }
        // The suffix may not contain r (ranges are disjoint by
        // construction), so close_region finds our P.
        assert!(w.close_region(r), "close_region missed (seed {seed})");
        assert_eq!(&w, &prefix, "truncation wrong (seed {seed})");
    }
}

/// Common-prefix length is symmetric and bounded.
#[test]
fn common_prefix_symmetric() {
    for seed in 0..cases() {
        let mut rng = Rng::new(seed);
        let a = random_word(&mut rng);
        let b = random_word(&mut rng);
        let ab = a.common_prefix_len(&b);
        assert_eq!(ab, b.common_prefix_len(&a), "asymmetric (seed {seed})");
        assert!(
            ab <= a.len() && ab <= b.len(),
            "out of bounds (seed {seed})"
        );
        // The prefixes really are equal.
        assert_eq!(&a.tokens()[..ab], &b.tokens()[..ab], "seed {seed}");
        if ab < a.len() && ab < b.len() {
            assert_ne!(a.tokens()[ab], b.tokens()[ab], "seed {seed}");
        }
    }
}

/// The required-level classification is monotone in context: a word
/// in `L` never demands MPI_THREAD_MULTIPLE.
#[test]
fn levels_consistent_with_membership() {
    use parcoach_front::ast::ThreadLevel;
    for seed in 0..cases() {
        let w = random_word(&mut Rng::new(seed));
        let c = classify(&w);
        if c.verdict.is_monothreaded() {
            assert!(
                c.required_level < ThreadLevel::Multiple,
                "monothreaded {} demands MULTIPLE (seed {seed})",
                w
            );
        } else {
            assert_eq!(
                c.required_level,
                ThreadLevel::Multiple,
                "non-monothreaded {} tolerates < MULTIPLE (seed {seed})",
                w
            );
        }
    }
}
