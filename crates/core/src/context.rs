//! Interprocedural call-context analysis.
//!
//! The paper treats the word prefix at function entry as "unknown at
//! compile-time" and lets the programmer pick an initial level. We go one
//! step further (the original PARCOACH does the same interprocedurally):
//! the initial context of each function is derived from the parallelism
//! words at its call sites, joined over all callers, with `main` fixed at
//! [`InitialContext::Sequential`]. The fixpoint is an ascending iteration
//! over the (finite, 3-point) context lattice.
//!
//! Two fixpoint drivers share the same transfer functions:
//!
//! * the **incremental worklist** ([`compute_contexts_db`], the
//!   default): only functions whose entry context was raised are
//!   re-propagated, and each one's per-call-site contribution is a
//!   memoized [`SiteContexts`] query, so `parcoachd` warm re-checks
//!   skip untouched functions entirely. Convergence is *asserted* — a
//!   function re-enters the worklist only when its context strictly
//!   rises, which the lattice bounds at two raises;
//! * the **legacy round loop** ([`compute_contexts_legacy`]): chaotic
//!   iteration re-walking every function's call sites each round. Kept
//!   as the ablation baseline (bench E13, the fuzz differential's
//!   `--legacy-fixpoint` mode) and pinned byte-identical to the
//!   worklist by the `incr_fixpoint_matches_legacy_reports` property.
//!
//! This module also computes which functions may (transitively) execute
//! MPI collectives — calls to those functions act as *collective events*
//! in the matching phase, and their call sites from multithreaded
//! contexts are reported.

use crate::lang::MonoVerdict;
use crate::pw::{compute_pw, InitialContext, PwResult, PwState};
use crate::query::{call_summary, CallSummary, QueryDb, SiteContexts};
use parcoach_front::span::Span;
use parcoach_ir::func::Module;
use parcoach_ir::types::BlockId;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-module interprocedural facts.
#[derive(Debug, Clone)]
pub struct CallContexts {
    /// Initial context per function name.
    pub initial: HashMap<String, InitialContext>,
    /// Functions that may (transitively) execute an MPI collective.
    pub collective_bearing: HashMap<String, bool>,
    /// Call sites of collective-bearing functions found in multithreaded
    /// contexts: (caller, callee, call span).
    pub multithreaded_calls: Vec<(String, String, Span)>,
    /// Parallelism words per function, computed under the final contexts
    /// (reused by the analysis phases — computing pw is the costliest
    /// part of the pipeline). `Arc`-shared with the incremental query
    /// cache so a warm re-check pays no clone.
    pub pw: HashMap<String, Arc<PwResult>>,
    /// Per-function call-graph summaries, indexed like `Module::funcs`.
    /// `Arc`-shared with the incremental query cache; the fact store
    /// derives entry reachability from these without another IR walk.
    pub summaries: Vec<Arc<CallSummary>>,
}

impl CallContexts {
    /// The initial context for `func` (Sequential when unknown).
    pub fn context_of(&self, func: &str) -> InitialContext {
        self.initial.get(func).copied().unwrap_or_default()
    }

    /// The cached parallelism-word result for `func`.
    pub fn pw_of(&self, func: &str) -> Option<&PwResult> {
        self.pw.get(func).map(|a| a.as_ref())
    }

    /// Does `func` (transitively) execute collectives?
    pub fn bears_collectives(&self, func: &str) -> bool {
        self.collective_bearing.get(func).copied().unwrap_or(false)
    }
}

/// Compute call contexts and collective-bearing facts for a module on
/// the process-wide pool.
pub fn compute_contexts(m: &Module, entry_context: InitialContext) -> CallContexts {
    compute_contexts_with(m, entry_context, parcoach_pool::global())
}

/// Compute call contexts and collective-bearing facts for a module.
///
/// `entry_context` is the context `main` is assumed to start in
/// (normally [`InitialContext::Sequential`]; the paper's "initial level"
/// option).
///
/// The fixpoint alternates two passes per round: the parallelism words
/// of every function whose context changed are recomputed *in parallel*
/// on `pool` (word propagation is the costliest part of the pipeline and
/// is pure per function), then a sequential pass joins call-site
/// contexts into callees. Chaotic ascending iteration over a finite
/// lattice reaches the same least fixpoint in either schedule, so the
/// result is identical to the old interleaved loop.
pub fn compute_contexts_with(
    m: &Module,
    entry_context: InitialContext,
    pool: &parcoach_pool::Pool,
) -> CallContexts {
    compute_contexts_db(m, entry_context, pool, None)
}

/// [`compute_contexts_with`] consulting an incremental [`QueryDb`] for
/// the per-`(function, context)` parallelism words and call-site
/// contexts. The db must have been reconciled against `m` (see
/// [`QueryDb::reconcile_module`]); cached results are shared by `Arc`,
/// fresh ones are inserted back.
///
/// Runs the incremental worklist fixpoint (see the module docs).
pub fn compute_contexts_db(
    m: &Module,
    entry_context: InitialContext,
    pool: &parcoach_pool::Pool,
    db: Option<&mut QueryDb>,
) -> CallContexts {
    compute_contexts_impl(m, entry_context, pool, db, true)
}

/// [`compute_contexts_db`] driven by the legacy round-based fixpoint:
/// every round re-walks every function's call sites. Same least
/// fixpoint, same outputs — kept as the ablation baseline
/// ([`AnalysisOptions::incr_fixpoint`](crate::pipeline::AnalysisOptions)
/// = `false`, bench E13, `fuzz_differential --legacy-fixpoint`).
pub fn compute_contexts_legacy(
    m: &Module,
    entry_context: InitialContext,
    pool: &parcoach_pool::Pool,
    db: Option<&mut QueryDb>,
) -> CallContexts {
    compute_contexts_impl(m, entry_context, pool, db, false)
}

fn compute_contexts_impl(
    m: &Module,
    entry_context: InitialContext,
    pool: &parcoach_pool::Pool,
    mut db: Option<&mut QueryDb>,
    worklist: bool,
) -> CallContexts {
    // --- per-function call-graph summaries: served from the query cache
    // for green functions, derived from the IR otherwise. Everything
    // below (collective-bearing, the context fixpoint, and — via the
    // fact store — entry reachability) reads these instead of re-walking
    // instructions.
    let summaries: Vec<Arc<CallSummary>> = {
        let mut v = Vec::with_capacity(m.funcs.len());
        for f in &m.funcs {
            let cached = db.as_deref_mut().and_then(|db| db.summary(&f.name));
            v.push(match cached {
                Some(s) => s,
                None => {
                    let s = Arc::new(call_summary(f));
                    if let Some(db) = db.as_deref_mut() {
                        db.insert_summary(&f.name, s.clone());
                    }
                    s
                }
            });
        }
        v
    };

    // --- resolve call-site callee names to module indices once: the
    // fixpoints below run on dense per-function arrays (no string
    // hashing or cloning on the hot path). Aligned index-for-index with
    // each summary's `call_sites`; `None` marks externs.
    let n = m.funcs.len();
    let callee_idx: Vec<Vec<Option<usize>>> = summaries
        .iter()
        .map(|s| {
            s.call_sites
                .iter()
                .map(|(_, c, _)| m.by_name.get(c.as_str()).copied())
                .collect()
        })
        .collect();

    // --- collective-bearing: own collectives (including the
    // communicator-management collectives, which synchronize their
    // parent's members), then propagate up the call graph to a fixpoint.
    let mut bearing: Vec<bool> = summaries.iter().map(|s| s.own_bearing).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for fi in 0..n {
            if bearing[fi] {
                continue;
            }
            let has = callee_idx[fi]
                .iter()
                .any(|c| c.map(|ci| bearing[ci]).unwrap_or(false));
            if has {
                bearing[fi] = true;
                changed = true;
            }
        }
    }

    // --- initial contexts: ascending fixpoint from main.
    let mut initial: Vec<InitialContext> = vec![InitialContext::Sequential; n];
    if let Some(&mi) = m.by_name.get("main") {
        initial[mi] = entry_context;
    }
    let mut multithreaded_calls: Vec<(String, String, Span)> = Vec::new();
    let mut pw_cache: Vec<Option<(InitialContext, Arc<PwResult>)>> = vec![None; n];

    if worklist {
        // --- incremental worklist fixpoint. The frontier holds exactly
        // the functions whose entry context changed since they were last
        // propagated (initially: everyone). Each iteration refreshes pw
        // + site contexts for the frontier only, then joins their call
        // sites into callees; a callee whose context rises joins the
        // next frontier. Functions off the frontier are never touched.
        let mut sites_cache: Vec<Option<Arc<SiteContexts>>> = vec![None; n];
        let mut frontier: Vec<usize> = (0..n).collect();
        let mut visits = vec![0u32; n];
        while !frontier.is_empty() {
            refresh_frontier(
                m,
                pool,
                &frontier,
                &mut pw_cache,
                &mut sites_cache,
                &summaries,
                &initial,
                &mut db,
            );
            let mut next: Vec<usize> = Vec::new();
            for &fi in &frontier {
                // Convergence: a function re-enters the frontier only
                // when its context strictly rises, and the 3-point
                // lattice bounds that at two raises (+1 initial visit).
                visits[fi] += 1;
                assert!(
                    visits[fi] <= 3,
                    "context fixpoint failed to converge: `{}` re-propagated \
                     more often than the lattice height permits",
                    m.funcs[fi].name
                );
                let sites = sites_cache[fi].as_ref().expect("frontier refreshed");
                for (site_ctx, ci) in sites.per_site.iter().zip(&callee_idx[fi]) {
                    let Some(ci) = *ci else { continue };
                    let cur = initial[ci];
                    let joined = cur.join(*site_ctx);
                    if joined != cur {
                        initial[ci] = joined;
                        if !next.contains(&ci) {
                            next.push(ci);
                        }
                    }
                }
            }
            // Module order keeps pw/site refreshes (and so QueryDb
            // insertion order) deterministic at every pool width.
            next.sort_unstable();
            frontier = next;
        }
        // One module-order pass at the (asserted-stable) final contexts
        // collects the multithreaded calls — the same order the legacy
        // loop produces on its final round.
        for (fi, (f, s)) in m.funcs.iter().zip(&summaries).enumerate() {
            let sites = sites_cache[fi].as_ref().expect("all refreshed");
            for ((site_ctx, ci), (_bid, callee, span)) in sites
                .per_site
                .iter()
                .zip(&callee_idx[fi])
                .zip(&s.call_sites)
            {
                if let Some(ci) = *ci {
                    assert!(
                        initial[ci].join(*site_ctx) == initial[ci],
                        "context fixpoint failed to converge at call {} -> {}",
                        f.name,
                        callee
                    );
                    if *site_ctx == InitialContext::Parallel && bearing[ci] {
                        multithreaded_calls.push((f.name.clone(), callee.clone(), *span));
                    }
                }
            }
        }
    } else {
        // --- legacy round loop: recompute each function's pw under its
        // current context and push call-site contexts into callees,
        // every round, until a full round changes nothing. The lattice
        // has height 3 and the call graph is finite, so the round bound
        // is unreachable — asserted below, not silently papered over.
        let mut converged = false;
        for _round in 0..(3 * n.max(1)) {
            let mut any = false;
            multithreaded_calls.clear();
            refresh_stale(m, pool, &mut pw_cache, &initial, &mut db);
            for (fi, (f, s)) in m.funcs.iter().zip(&summaries).enumerate() {
                let pw = &pw_cache[fi].as_ref().expect("refreshed").1;
                // Summaries keep sites in block order, so the entry context
                // of each block is computed once per run of same-block sites.
                let mut cur: Option<(BlockId, InitialContext)> = None;
                for ((bid, callee, span), ci) in s.call_sites.iter().zip(&callee_idx[fi]) {
                    let site_ctx = match cur {
                        Some((b, ctx)) if b == *bid => ctx,
                        _ => {
                            let ctx = site_context(pw, bid.index());
                            cur = Some((*bid, ctx));
                            ctx
                        }
                    };
                    let Some(ci) = *ci else { continue };
                    let joined = initial[ci].join(site_ctx);
                    if joined != initial[ci] {
                        initial[ci] = joined;
                        any = true;
                    }
                    if site_ctx == InitialContext::Parallel && bearing[ci] {
                        multithreaded_calls.push((f.name.clone(), callee.clone(), *span));
                    }
                }
            }
            if !any {
                converged = true;
                break;
            }
        }
        assert!(
            converged,
            "context fixpoint failed to converge within the lattice bound"
        );
    }

    CallContexts {
        initial: m
            .funcs
            .iter()
            .zip(&initial)
            .map(|(f, c)| (f.name.clone(), *c))
            .collect(),
        collective_bearing: m
            .funcs
            .iter()
            .zip(&bearing)
            .map(|(f, b)| (f.name.clone(), *b))
            .collect(),
        multithreaded_calls,
        pw: m
            .funcs
            .iter()
            .zip(pw_cache)
            .map(|(f, entry)| {
                let (_c, pw) = entry.expect("every function propagated");
                (f.name.clone(), pw)
            })
            .collect(),
        summaries,
    }
}

/// Refresh pw results and [`SiteContexts`] for the frontier functions at
/// their current contexts. pw misses run in parallel (per-function
/// pure); site contexts derive sequentially from the pw result (a cached
/// O(1) verdict per call block). With a [`QueryDb`], both are served as
/// `Arc` clones on a hit and inserted back on a miss — this is the
/// delta-propagation query `parcoachd` warm re-checks replay for free.
#[allow(clippy::too_many_arguments)]
fn refresh_frontier(
    m: &Module,
    pool: &parcoach_pool::Pool,
    frontier: &[usize],
    pw_cache: &mut [Option<(InitialContext, Arc<PwResult>)>],
    sites_cache: &mut [Option<Arc<SiteContexts>>],
    summaries: &[Arc<CallSummary>],
    initial: &[InitialContext],
    db: &mut Option<&mut QueryDb>,
) {
    let stale: Vec<usize> = frontier
        .iter()
        .copied()
        .filter(|&fi| pw_cache[fi].as_ref().map(|(c, _)| *c) != Some(initial[fi]))
        .collect();
    let misses: Vec<usize> = match db.as_deref_mut() {
        None => stale,
        Some(db) => stale
            .into_iter()
            .filter(|&fi| match db.pw(&m.funcs[fi].name, initial[fi]) {
                Some(pw) => {
                    pw_cache[fi] = Some((initial[fi], pw));
                    false
                }
                None => true,
            })
            .collect(),
    };
    let fresh = pool.par_map(&misses, |&fi| {
        let ctx = initial[fi];
        (fi, Arc::new(compute_pw(&m.funcs[fi], ctx)))
    });
    if let Some(db) = db.as_deref_mut() {
        for (fi, pw) in &fresh {
            db.insert_pw(&m.funcs[*fi].name, initial[*fi], pw.clone());
        }
    }
    for (fi, pw) in fresh {
        pw_cache[fi] = Some((initial[fi], pw));
    }

    for &fi in frontier {
        let ctx = initial[fi];
        let served = db
            .as_deref_mut()
            .and_then(|db| db.site_contexts(&m.funcs[fi].name, ctx));
        let sites = match served {
            Some(s) => s,
            None => {
                let pw = &pw_cache[fi].as_ref().expect("refreshed above").1;
                let s = Arc::new(derive_site_contexts(pw, &summaries[fi]));
                if let Some(db) = db.as_deref_mut() {
                    db.insert_site_contexts(&m.funcs[fi].name, ctx, s.clone());
                }
                s
            }
        };
        sites_cache[fi] = Some(sites);
    }
}

/// Derive one function's per-call-site callee contexts from its pw
/// result. Summaries keep sites in block order, so the context of each
/// block is computed once per run of same-block sites — exactly the
/// memoization the legacy loop applies inline.
fn derive_site_contexts(pw: &PwResult, summary: &CallSummary) -> SiteContexts {
    let mut per_site = Vec::with_capacity(summary.call_sites.len());
    let mut cur: Option<(BlockId, InitialContext)> = None;
    for (bid, _callee, _span) in &summary.call_sites {
        let ctx = match cur {
            Some((b, c)) if b == *bid => c,
            _ => {
                let c = site_context(pw, bid.index());
                cur = Some((*bid, c));
                c
            }
        };
        per_site.push(ctx);
    }
    SiteContexts { per_site }
}

/// Refresh the fixpoint's pw cache for every function whose context
/// moved since its last computation. Misses run in parallel (words are
/// per-function pure); when a [`QueryDb`] is supplied, memoized results
/// are served as `Arc` clones and fresh ones flow back into it.
fn refresh_stale(
    m: &Module,
    pool: &parcoach_pool::Pool,
    pw_cache: &mut [Option<(InitialContext, Arc<PwResult>)>],
    initial: &[InitialContext],
    db: &mut Option<&mut QueryDb>,
) {
    let stale: Vec<usize> = (0..m.funcs.len())
        .filter(|&fi| pw_cache[fi].as_ref().map(|(c, _)| *c) != Some(initial[fi]))
        .collect();
    let misses: Vec<usize> = match db.as_deref_mut() {
        None => stale,
        Some(db) => stale
            .into_iter()
            .filter(|&fi| match db.pw(&m.funcs[fi].name, initial[fi]) {
                Some(pw) => {
                    pw_cache[fi] = Some((initial[fi], pw));
                    false
                }
                None => true,
            })
            .collect(),
    };
    let fresh = pool.par_map(&misses, |&fi| {
        let ctx = initial[fi];
        (fi, Arc::new(compute_pw(&m.funcs[fi], ctx)))
    });
    if let Some(db) = db.as_deref_mut() {
        for (fi, pw) in &fresh {
            db.insert_pw(&m.funcs[*fi].name, initial[*fi], pw.clone());
        }
    }
    for (fi, pw) in fresh {
        pw_cache[fi] = Some((initial[fi], pw));
    }
}

/// Map the pw state at a call-site block to the callee's entry context.
/// The verdict is a cached attribute of the word node — no token scan.
fn site_context(pw: &PwResult, block_index: usize) -> InitialContext {
    match pw.entry.get(block_index).and_then(|s| s.as_ref()) {
        None => InitialContext::Sequential, // unreachable call site
        Some(PwState::Conflict) => InitialContext::Parallel, // be conservative
        Some(PwState::Word(n)) => match pw.class(*n).verdict {
            MonoVerdict::SequentialContext => InitialContext::Sequential,
            MonoVerdict::MonoThreaded => InitialContext::ParallelSingle,
            MonoVerdict::MultiThreaded | MonoVerdict::NestedParallelism => InitialContext::Parallel,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;

    fn lower(src: &str) -> Module {
        let unit = parse_and_check("t.mh", src).expect("valid");
        lower_program(&unit.program, &unit.signatures)
    }

    #[test]
    fn own_collectives_detected() {
        let m = lower(
            "fn a() { MPI_Barrier(); }
             fn b() { }
             fn main() { a(); b(); }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert!(ctx.bears_collectives("a"));
        assert!(!ctx.bears_collectives("b"));
        assert!(ctx.bears_collectives("main")); // transitively via a
    }

    #[test]
    fn transitive_collectives() {
        let m = lower(
            "fn leaf() { MPI_Barrier(); }
             fn mid() { leaf(); }
             fn main() { mid(); }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert!(ctx.bears_collectives("mid"));
        assert!(ctx.bears_collectives("main"));
    }

    #[test]
    fn context_propagates_to_callee_in_parallel() {
        let m = lower(
            "fn work() { let x = 1; }
             fn main() { parallel { work(); } }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert_eq!(ctx.context_of("work"), InitialContext::Parallel);
        assert_eq!(ctx.context_of("main"), InitialContext::Sequential);
    }

    #[test]
    fn context_propagates_single() {
        let m = lower(
            "fn work() { let x = 1; }
             fn main() { parallel { single { work(); } } }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert_eq!(ctx.context_of("work"), InitialContext::ParallelSingle);
    }

    #[test]
    fn context_joins_worst_case() {
        let m = lower(
            "fn work() { let x = 1; }
             fn main() {
                work();
                parallel { single { work(); } }
                parallel { work(); }
             }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert_eq!(ctx.context_of("work"), InitialContext::Parallel);
    }

    #[test]
    fn multithreaded_call_to_collective_fn_reported() {
        let m = lower(
            "fn exchange() { MPI_Barrier(); }
             fn main() { parallel { exchange(); } }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert_eq!(ctx.multithreaded_calls.len(), 1);
        assert_eq!(ctx.multithreaded_calls[0].1, "exchange");
    }

    #[test]
    fn call_chain_two_levels_deep_in_parallel() {
        let m = lower(
            "fn leaf() { MPI_Barrier(); }
             fn mid() { leaf(); }
             fn main() { parallel { mid(); } }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        // mid inherits Parallel; leaf called from mid's Parallel context
        // (call at mid's top level, i.e. the P prefix) also Parallel.
        assert_eq!(ctx.context_of("mid"), InitialContext::Parallel);
        assert_eq!(ctx.context_of("leaf"), InitialContext::Parallel);
        assert!(
            ctx.multithreaded_calls.len() >= 2,
            "both call edges are multithreaded: {:?}",
            ctx.multithreaded_calls
        );
    }

    #[test]
    fn sequential_call_not_reported() {
        let m = lower(
            "fn exchange() { MPI_Barrier(); }
             fn main() { exchange(); }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert!(ctx.multithreaded_calls.is_empty());
    }

    #[test]
    fn recursion_terminates() {
        let m = lower(
            "fn rec(n: int) { if (n > 0) { rec(n - 1); } }
             fn main() { parallel { rec(3); } }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert_eq!(ctx.context_of("rec"), InitialContext::Parallel);
    }

    /// Every observable output of the two fixpoint drivers must agree.
    fn assert_matches_legacy(m: &Module) {
        let pool = parcoach_pool::global();
        let wl = compute_contexts_db(m, InitialContext::Sequential, pool, None);
        let lg = compute_contexts_legacy(m, InitialContext::Sequential, pool, None);
        assert_eq!(wl.initial, lg.initial);
        assert_eq!(wl.collective_bearing, lg.collective_bearing);
        assert_eq!(wl.multithreaded_calls, lg.multithreaded_calls);
        assert_eq!(
            wl.pw.keys().collect::<std::collections::BTreeSet<_>>(),
            lg.pw.keys().collect::<std::collections::BTreeSet<_>>()
        );
        for (name, a) in &wl.pw {
            let b = &lg.pw[name];
            assert_eq!(a.entry.len(), b.entry.len(), "{name}");
            for i in 0..a.entry.len() {
                let wa = a.entry[i].map(|s| s.node().map(|n| a.dag.materialize(n)));
                let wb = b.entry[i].map(|s| s.node().map(|n| b.dag.materialize(n)));
                assert_eq!(wa, wb, "{name} block {i}");
            }
            assert_eq!(a.phase_merged, b.phase_merged, "{name}");
            assert_eq!(a.divergences, b.divergences, "{name}");
        }
    }

    #[test]
    fn cyclic_call_graph_converges_and_matches_legacy() {
        // Mutual recursion reached from a parallel region — the cyclic
        // shape that previously leaned on the legacy loop's silent
        // round-bound fallback. The worklist must assert-converge and
        // agree with the legacy driver on every output.
        let m = lower(
            "fn ping(n: int) { if (n > 0) { pong(n - 1); } MPI_Barrier(); }
             fn pong(n: int) { if (n > 0) { ping(n - 1); } }
             fn main() { parallel { ping(3); } }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert_eq!(ctx.context_of("ping"), InitialContext::Parallel);
        assert_eq!(ctx.context_of("pong"), InitialContext::Parallel);
        assert!(ctx.bears_collectives("pong"), "cycle propagates bearing");
        assert_matches_legacy(&m);
    }

    #[test]
    fn worklist_matches_legacy_on_joining_chains() {
        // A callee reached under three different contexts (joined to the
        // worst case) plus a deeper chain: exercises frontier re-entry.
        let m = lower(
            "fn leaf() { MPI_Barrier(); }
             fn work() { leaf(); }
             fn main() {
                work();
                parallel { single { work(); } }
                parallel { work(); }
             }",
        );
        assert_matches_legacy(&m);
    }
}
