//! Interprocedural call-context analysis.
//!
//! The paper treats the word prefix at function entry as "unknown at
//! compile-time" and lets the programmer pick an initial level. We go one
//! step further (the original PARCOACH does the same interprocedurally):
//! the initial context of each function is derived from the parallelism
//! words at its call sites, joined over all callers, with `main` fixed at
//! [`InitialContext::Sequential`]. The fixpoint is a simple ascending
//! iteration over the (finite, 3-point) context lattice.
//!
//! This module also computes which functions may (transitively) execute
//! MPI collectives — calls to those functions act as *collective events*
//! in the matching phase, and their call sites from multithreaded
//! contexts are reported.

use crate::lang::{classify, MonoVerdict};
use crate::pw::{compute_pw, InitialContext, PwResult};
use crate::query::{call_summary, CallSummary, QueryDb};
use parcoach_front::span::Span;
use parcoach_ir::func::{FuncIr, Module};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-module interprocedural facts.
#[derive(Debug, Clone)]
pub struct CallContexts {
    /// Initial context per function name.
    pub initial: HashMap<String, InitialContext>,
    /// Functions that may (transitively) execute an MPI collective.
    pub collective_bearing: HashMap<String, bool>,
    /// Call sites of collective-bearing functions found in multithreaded
    /// contexts: (caller, callee, call span).
    pub multithreaded_calls: Vec<(String, String, Span)>,
    /// Parallelism words per function, computed under the final contexts
    /// (reused by the analysis phases — computing pw is the costliest
    /// part of the pipeline). `Arc`-shared with the incremental query
    /// cache so a warm re-check pays no clone.
    pub pw: HashMap<String, Arc<PwResult>>,
    /// Per-function call-graph summaries, indexed like `Module::funcs`.
    /// `Arc`-shared with the incremental query cache; the fact store
    /// derives entry reachability from these without another IR walk.
    pub summaries: Vec<Arc<CallSummary>>,
}

impl CallContexts {
    /// The initial context for `func` (Sequential when unknown).
    pub fn context_of(&self, func: &str) -> InitialContext {
        self.initial.get(func).copied().unwrap_or_default()
    }

    /// The cached parallelism-word result for `func`.
    pub fn pw_of(&self, func: &str) -> Option<&PwResult> {
        self.pw.get(func).map(|a| a.as_ref())
    }

    /// Does `func` (transitively) execute collectives?
    pub fn bears_collectives(&self, func: &str) -> bool {
        self.collective_bearing.get(func).copied().unwrap_or(false)
    }
}

/// Compute call contexts and collective-bearing facts for a module on
/// the process-wide pool.
pub fn compute_contexts(m: &Module, entry_context: InitialContext) -> CallContexts {
    compute_contexts_with(m, entry_context, parcoach_pool::global())
}

/// Compute call contexts and collective-bearing facts for a module.
///
/// `entry_context` is the context `main` is assumed to start in
/// (normally [`InitialContext::Sequential`]; the paper's "initial level"
/// option).
///
/// The fixpoint alternates two passes per round: the parallelism words
/// of every function whose context changed are recomputed *in parallel*
/// on `pool` (word propagation is the costliest part of the pipeline and
/// is pure per function), then a sequential pass joins call-site
/// contexts into callees. Chaotic ascending iteration over a finite
/// lattice reaches the same least fixpoint in either schedule, so the
/// result is identical to the old interleaved loop.
pub fn compute_contexts_with(
    m: &Module,
    entry_context: InitialContext,
    pool: &parcoach_pool::Pool,
) -> CallContexts {
    compute_contexts_db(m, entry_context, pool, None)
}

/// [`compute_contexts_with`] consulting an incremental [`QueryDb`] for
/// the per-`(function, context)` parallelism words. The db must have
/// been reconciled against `m` (see [`QueryDb::reconcile_module`]);
/// cached results are shared by `Arc`, fresh ones are inserted back.
pub fn compute_contexts_db(
    m: &Module,
    entry_context: InitialContext,
    pool: &parcoach_pool::Pool,
    mut db: Option<&mut QueryDb>,
) -> CallContexts {
    // --- per-function call-graph summaries: served from the query cache
    // for green functions, derived from the IR otherwise. Everything
    // below (collective-bearing, the context fixpoint, and — via the
    // fact store — entry reachability) reads these instead of re-walking
    // instructions.
    let summaries: Vec<Arc<CallSummary>> = {
        let mut v = Vec::with_capacity(m.funcs.len());
        for f in &m.funcs {
            let cached = db.as_deref_mut().and_then(|db| db.summary(&f.name));
            v.push(match cached {
                Some(s) => s,
                None => {
                    let s = Arc::new(call_summary(f));
                    if let Some(db) = db.as_deref_mut() {
                        db.insert_summary(&f.name, s.clone());
                    }
                    s
                }
            });
        }
        v
    };

    // --- collective-bearing: own collectives (including the
    // communicator-management collectives, which synchronize their
    // parent's members), then propagate up the call graph to a fixpoint.
    let mut bearing: HashMap<String, bool> = m
        .funcs
        .iter()
        .zip(&summaries)
        .map(|(f, s)| (f.name.clone(), s.own_bearing))
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (f, s) in m.funcs.iter().zip(&summaries) {
            if bearing[&f.name] {
                continue;
            }
            let has = s
                .call_sites
                .iter()
                .any(|(_, c, _)| bearing.get(c).copied().unwrap_or(false));
            if has {
                bearing.insert(f.name.clone(), true);
                changed = true;
            }
        }
    }

    // --- initial contexts: ascending fixpoint from main.
    let mut initial: HashMap<String, InitialContext> = m
        .funcs
        .iter()
        .map(|f| (f.name.clone(), InitialContext::Sequential))
        .collect();
    if initial.contains_key("main") {
        initial.insert("main".into(), entry_context);
    }
    // Iterate: recompute each function's pw under its current context and
    // push call-site contexts into callees. The lattice has height 3 and
    // the call graph is finite, so this terminates quickly. The pw result
    // is cached per (function, context): only functions whose context was
    // raised since the last round pay for recomputation.
    let mut multithreaded_calls: Vec<(String, String, Span)> = Vec::new();
    let mut pw_cache: HashMap<String, (InitialContext, Arc<PwResult>)> = HashMap::new();
    for _round in 0..(3 * m.funcs.len().max(1)) {
        let mut any = false;
        multithreaded_calls.clear();
        refresh_stale(m, pool, &mut pw_cache, &initial, &mut db);
        for (f, s) in m.funcs.iter().zip(&summaries) {
            let pw = &pw_cache[&f.name].1;
            // Summaries keep sites in block order, so the entry context
            // of each block is computed once per run of same-block sites.
            let mut cur: Option<(parcoach_ir::types::BlockId, InitialContext)> = None;
            for (bid, callee, span) in &s.call_sites {
                let site_ctx = match cur {
                    Some((b, ctx)) if b == *bid => ctx,
                    _ => {
                        let ctx = site_context(pw, bid.index());
                        cur = Some((*bid, ctx));
                        ctx
                    }
                };
                if !initial.contains_key(callee) {
                    continue;
                }
                let joined = initial[callee].join(site_ctx);
                if joined != initial[callee] {
                    initial.insert(callee.clone(), joined);
                    any = true;
                }
                if site_ctx == InitialContext::Parallel
                    && bearing.get(callee).copied().unwrap_or(false)
                {
                    multithreaded_calls.push((f.name.clone(), callee.clone(), *span));
                }
            }
        }
        if !any {
            break;
        }
    }
    // Ensure the cache reflects the *final* contexts (only needed when
    // the round bound was hit with changes still in flight).
    refresh_stale(m, pool, &mut pw_cache, &initial, &mut db);

    CallContexts {
        initial,
        collective_bearing: bearing,
        multithreaded_calls,
        pw: pw_cache.into_iter().map(|(k, (_c, pw))| (k, pw)).collect(),
        summaries,
    }
}

/// Refresh the fixpoint's pw cache for every function whose context
/// moved since its last computation. Misses run in parallel (words are
/// per-function pure); when a [`QueryDb`] is supplied, memoized results
/// are served as `Arc` clones and fresh ones flow back into it.
fn refresh_stale(
    m: &Module,
    pool: &parcoach_pool::Pool,
    pw_cache: &mut HashMap<String, (InitialContext, Arc<PwResult>)>,
    initial: &HashMap<String, InitialContext>,
    db: &mut Option<&mut QueryDb>,
) {
    let stale: Vec<&FuncIr> = m
        .funcs
        .iter()
        .filter(|f| {
            let ctx = initial[&f.name];
            pw_cache.get(&f.name).map(|(c, _)| *c) != Some(ctx)
        })
        .collect();
    let misses: Vec<&FuncIr> = match db.as_deref_mut() {
        None => stale,
        Some(db) => stale
            .into_iter()
            .filter(|f| {
                let ctx = initial[&f.name];
                match db.pw(&f.name, ctx) {
                    Some(pw) => {
                        pw_cache.insert(f.name.clone(), (ctx, pw));
                        false
                    }
                    None => true,
                }
            })
            .collect(),
    };
    let fresh = pool.par_map(&misses, |f| {
        let ctx = initial[&f.name];
        (f.name.clone(), (ctx, Arc::new(compute_pw(f, ctx))))
    });
    if let Some(db) = db.as_deref_mut() {
        for (name, (ctx, pw)) in &fresh {
            db.insert_pw(name, *ctx, pw.clone());
        }
    }
    pw_cache.extend(fresh);
}

/// Map the pw state at a call-site block to the callee's entry context.
fn site_context(pw: &PwResult, block_index: usize) -> InitialContext {
    match pw.entry.get(block_index).and_then(|s| s.as_ref()) {
        None => InitialContext::Sequential, // unreachable call site
        Some(state) => match state.word() {
            None => InitialContext::Parallel, // conflict: be conservative
            Some(w) => match classify(w).verdict {
                MonoVerdict::SequentialContext => InitialContext::Sequential,
                MonoVerdict::MonoThreaded => InitialContext::ParallelSingle,
                MonoVerdict::MultiThreaded | MonoVerdict::NestedParallelism => {
                    InitialContext::Parallel
                }
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;

    fn lower(src: &str) -> Module {
        let unit = parse_and_check("t.mh", src).expect("valid");
        lower_program(&unit.program, &unit.signatures)
    }

    #[test]
    fn own_collectives_detected() {
        let m = lower(
            "fn a() { MPI_Barrier(); }
             fn b() { }
             fn main() { a(); b(); }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert!(ctx.bears_collectives("a"));
        assert!(!ctx.bears_collectives("b"));
        assert!(ctx.bears_collectives("main")); // transitively via a
    }

    #[test]
    fn transitive_collectives() {
        let m = lower(
            "fn leaf() { MPI_Barrier(); }
             fn mid() { leaf(); }
             fn main() { mid(); }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert!(ctx.bears_collectives("mid"));
        assert!(ctx.bears_collectives("main"));
    }

    #[test]
    fn context_propagates_to_callee_in_parallel() {
        let m = lower(
            "fn work() { let x = 1; }
             fn main() { parallel { work(); } }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert_eq!(ctx.context_of("work"), InitialContext::Parallel);
        assert_eq!(ctx.context_of("main"), InitialContext::Sequential);
    }

    #[test]
    fn context_propagates_single() {
        let m = lower(
            "fn work() { let x = 1; }
             fn main() { parallel { single { work(); } } }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert_eq!(ctx.context_of("work"), InitialContext::ParallelSingle);
    }

    #[test]
    fn context_joins_worst_case() {
        let m = lower(
            "fn work() { let x = 1; }
             fn main() {
                work();
                parallel { single { work(); } }
                parallel { work(); }
             }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert_eq!(ctx.context_of("work"), InitialContext::Parallel);
    }

    #[test]
    fn multithreaded_call_to_collective_fn_reported() {
        let m = lower(
            "fn exchange() { MPI_Barrier(); }
             fn main() { parallel { exchange(); } }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert_eq!(ctx.multithreaded_calls.len(), 1);
        assert_eq!(ctx.multithreaded_calls[0].1, "exchange");
    }

    #[test]
    fn call_chain_two_levels_deep_in_parallel() {
        let m = lower(
            "fn leaf() { MPI_Barrier(); }
             fn mid() { leaf(); }
             fn main() { parallel { mid(); } }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        // mid inherits Parallel; leaf called from mid's Parallel context
        // (call at mid's top level, i.e. the P prefix) also Parallel.
        assert_eq!(ctx.context_of("mid"), InitialContext::Parallel);
        assert_eq!(ctx.context_of("leaf"), InitialContext::Parallel);
        assert!(
            ctx.multithreaded_calls.len() >= 2,
            "both call edges are multithreaded: {:?}",
            ctx.multithreaded_calls
        );
    }

    #[test]
    fn sequential_call_not_reported() {
        let m = lower(
            "fn exchange() { MPI_Barrier(); }
             fn main() { exchange(); }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert!(ctx.multithreaded_calls.is_empty());
    }

    #[test]
    fn recursion_terminates() {
        let m = lower(
            "fn rec(n: int) { if (n > 0) { rec(n - 1); } }
             fn main() { parallel { rec(3); } }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert_eq!(ctx.context_of("rec"), InitialContext::Parallel);
    }
}
