//! Interprocedural call-context analysis.
//!
//! The paper treats the word prefix at function entry as "unknown at
//! compile-time" and lets the programmer pick an initial level. We go one
//! step further (the original PARCOACH does the same interprocedurally):
//! the initial context of each function is derived from the parallelism
//! words at its call sites, joined over all callers, with `main` fixed at
//! [`InitialContext::Sequential`]. The fixpoint is a simple ascending
//! iteration over the (finite, 3-point) context lattice.
//!
//! This module also computes which functions may (transitively) execute
//! MPI collectives — calls to those functions act as *collective events*
//! in the matching phase, and their call sites from multithreaded
//! contexts are reported.

use crate::lang::{classify, MonoVerdict};
use crate::pw::{compute_pw, InitialContext, PwResult};
use parcoach_front::span::Span;
use parcoach_ir::func::Module;
use parcoach_ir::instr::Instr;
use std::collections::HashMap;

/// Per-module interprocedural facts.
#[derive(Debug, Clone)]
pub struct CallContexts {
    /// Initial context per function name.
    pub initial: HashMap<String, InitialContext>,
    /// Functions that may (transitively) execute an MPI collective.
    pub collective_bearing: HashMap<String, bool>,
    /// Call sites of collective-bearing functions found in multithreaded
    /// contexts: (caller, callee, call span).
    pub multithreaded_calls: Vec<(String, String, Span)>,
    /// Parallelism words per function, computed under the final contexts
    /// (reused by the analysis phases — computing pw is the costliest
    /// part of the pipeline).
    pub pw: HashMap<String, PwResult>,
}

impl CallContexts {
    /// The initial context for `func` (Sequential when unknown).
    pub fn context_of(&self, func: &str) -> InitialContext {
        self.initial.get(func).copied().unwrap_or_default()
    }

    /// The cached parallelism-word result for `func`.
    pub fn pw_of(&self, func: &str) -> Option<&PwResult> {
        self.pw.get(func)
    }

    /// Does `func` (transitively) execute collectives?
    pub fn bears_collectives(&self, func: &str) -> bool {
        self.collective_bearing.get(func).copied().unwrap_or(false)
    }
}

/// Compute call contexts and collective-bearing facts for a module on
/// the process-wide pool.
pub fn compute_contexts(m: &Module, entry_context: InitialContext) -> CallContexts {
    compute_contexts_with(m, entry_context, parcoach_pool::global())
}

/// Compute call contexts and collective-bearing facts for a module.
///
/// `entry_context` is the context `main` is assumed to start in
/// (normally [`InitialContext::Sequential`]; the paper's "initial level"
/// option).
///
/// The fixpoint alternates two passes per round: the parallelism words
/// of every function whose context changed are recomputed *in parallel*
/// on `pool` (word propagation is the costliest part of the pipeline and
/// is pure per function), then a sequential pass joins call-site
/// contexts into callees. Chaotic ascending iteration over a finite
/// lattice reaches the same least fixpoint in either schedule, so the
/// result is identical to the old interleaved loop.
pub fn compute_contexts_with(
    m: &Module,
    entry_context: InitialContext,
    pool: &parcoach_pool::Pool,
) -> CallContexts {
    // --- collective-bearing: own collectives (including the
    // communicator-management collectives, which synchronize their
    // parent's members), then propagate up the call graph to a fixpoint.
    let mut bearing: HashMap<String, bool> = m
        .funcs
        .iter()
        .map(|f| {
            let own = !f.collective_blocks().is_empty()
                || f.blocks.iter().flat_map(|b| &b.instrs).any(|i| match i {
                    Instr::Mpi { op, .. } => op.comm_mgmt().is_some(),
                    _ => false,
                });
            (f.name.clone(), own)
        })
        .collect();
    let callees: HashMap<String, Vec<String>> = m
        .funcs
        .iter()
        .map(|f| {
            let mut cs = Vec::new();
            for b in &f.blocks {
                for i in &b.instrs {
                    if let Instr::Call { func, .. } = i {
                        cs.push(func.clone());
                    }
                }
            }
            (f.name.clone(), cs)
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for f in &m.funcs {
            if bearing[&f.name] {
                continue;
            }
            let has = callees[&f.name]
                .iter()
                .any(|c| bearing.get(c).copied().unwrap_or(false));
            if has {
                bearing.insert(f.name.clone(), true);
                changed = true;
            }
        }
    }

    // --- initial contexts: ascending fixpoint from main.
    let mut initial: HashMap<String, InitialContext> = m
        .funcs
        .iter()
        .map(|f| (f.name.clone(), InitialContext::Sequential))
        .collect();
    if initial.contains_key("main") {
        initial.insert("main".into(), entry_context);
    }
    // Iterate: recompute each function's pw under its current context and
    // push call-site contexts into callees. The lattice has height 3 and
    // the call graph is finite, so this terminates quickly. The pw result
    // is cached per (function, context): only functions whose context was
    // raised since the last round pay for recomputation.
    let mut multithreaded_calls: Vec<(String, String, Span)> = Vec::new();
    let mut pw_cache: HashMap<String, (InitialContext, PwResult)> = HashMap::new();
    // Refresh the pw cache for every function whose context moved since
    // its last computation — in parallel, words are per-function pure.
    let refresh_stale = |pw_cache: &mut HashMap<String, (InitialContext, PwResult)>,
                         initial: &HashMap<String, InitialContext>| {
        let stale: Vec<&parcoach_ir::func::FuncIr> = m
            .funcs
            .iter()
            .filter(|f| {
                let ctx = initial[&f.name];
                pw_cache.get(&f.name).map(|(c, _)| *c) != Some(ctx)
            })
            .collect();
        let fresh = pool.par_map(&stale, |f| {
            let ctx = initial[&f.name];
            (f.name.clone(), (ctx, compute_pw(f, ctx)))
        });
        pw_cache.extend(fresh);
    };
    for _round in 0..(3 * m.funcs.len().max(1)) {
        let mut any = false;
        multithreaded_calls.clear();
        refresh_stale(&mut pw_cache, &initial);
        for f in &m.funcs {
            let pw = &pw_cache[&f.name].1;
            for (bid, b) in f.iter_blocks() {
                let call_sites: Vec<(&String, Span)> = b
                    .instrs
                    .iter()
                    .filter_map(|i| match i {
                        Instr::Call { func, span, .. } => Some((func, *span)),
                        _ => None,
                    })
                    .collect();
                if call_sites.is_empty() {
                    continue;
                }
                let site_ctx = site_context(pw, bid.index());
                for (callee, span) in call_sites {
                    if !initial.contains_key(callee) {
                        continue;
                    }
                    let joined = initial[callee].join(site_ctx);
                    if joined != initial[callee] {
                        initial.insert(callee.clone(), joined);
                        any = true;
                    }
                    if site_ctx == InitialContext::Parallel
                        && bearing.get(callee).copied().unwrap_or(false)
                    {
                        multithreaded_calls.push((f.name.clone(), callee.clone(), span));
                    }
                }
            }
        }
        if !any {
            break;
        }
    }
    // Ensure the cache reflects the *final* contexts (only needed when
    // the round bound was hit with changes still in flight).
    refresh_stale(&mut pw_cache, &initial);

    CallContexts {
        initial,
        collective_bearing: bearing,
        multithreaded_calls,
        pw: pw_cache.into_iter().map(|(k, (_c, pw))| (k, pw)).collect(),
    }
}

/// Map the pw state at a call-site block to the callee's entry context.
fn site_context(pw: &PwResult, block_index: usize) -> InitialContext {
    match pw.entry.get(block_index).and_then(|s| s.as_ref()) {
        None => InitialContext::Sequential, // unreachable call site
        Some(state) => match state.word() {
            None => InitialContext::Parallel, // conflict: be conservative
            Some(w) => match classify(w).verdict {
                MonoVerdict::SequentialContext => InitialContext::Sequential,
                MonoVerdict::MonoThreaded => InitialContext::ParallelSingle,
                MonoVerdict::MultiThreaded | MonoVerdict::NestedParallelism => {
                    InitialContext::Parallel
                }
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;

    fn lower(src: &str) -> Module {
        let unit = parse_and_check("t.mh", src).expect("valid");
        lower_program(&unit.program, &unit.signatures)
    }

    #[test]
    fn own_collectives_detected() {
        let m = lower(
            "fn a() { MPI_Barrier(); }
             fn b() { }
             fn main() { a(); b(); }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert!(ctx.bears_collectives("a"));
        assert!(!ctx.bears_collectives("b"));
        assert!(ctx.bears_collectives("main")); // transitively via a
    }

    #[test]
    fn transitive_collectives() {
        let m = lower(
            "fn leaf() { MPI_Barrier(); }
             fn mid() { leaf(); }
             fn main() { mid(); }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert!(ctx.bears_collectives("mid"));
        assert!(ctx.bears_collectives("main"));
    }

    #[test]
    fn context_propagates_to_callee_in_parallel() {
        let m = lower(
            "fn work() { let x = 1; }
             fn main() { parallel { work(); } }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert_eq!(ctx.context_of("work"), InitialContext::Parallel);
        assert_eq!(ctx.context_of("main"), InitialContext::Sequential);
    }

    #[test]
    fn context_propagates_single() {
        let m = lower(
            "fn work() { let x = 1; }
             fn main() { parallel { single { work(); } } }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert_eq!(ctx.context_of("work"), InitialContext::ParallelSingle);
    }

    #[test]
    fn context_joins_worst_case() {
        let m = lower(
            "fn work() { let x = 1; }
             fn main() {
                work();
                parallel { single { work(); } }
                parallel { work(); }
             }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert_eq!(ctx.context_of("work"), InitialContext::Parallel);
    }

    #[test]
    fn multithreaded_call_to_collective_fn_reported() {
        let m = lower(
            "fn exchange() { MPI_Barrier(); }
             fn main() { parallel { exchange(); } }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert_eq!(ctx.multithreaded_calls.len(), 1);
        assert_eq!(ctx.multithreaded_calls[0].1, "exchange");
    }

    #[test]
    fn call_chain_two_levels_deep_in_parallel() {
        let m = lower(
            "fn leaf() { MPI_Barrier(); }
             fn mid() { leaf(); }
             fn main() { parallel { mid(); } }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        // mid inherits Parallel; leaf called from mid's Parallel context
        // (call at mid's top level, i.e. the P prefix) also Parallel.
        assert_eq!(ctx.context_of("mid"), InitialContext::Parallel);
        assert_eq!(ctx.context_of("leaf"), InitialContext::Parallel);
        assert!(
            ctx.multithreaded_calls.len() >= 2,
            "both call edges are multithreaded: {:?}",
            ctx.multithreaded_calls
        );
    }

    #[test]
    fn sequential_call_not_reported() {
        let m = lower(
            "fn exchange() { MPI_Barrier(); }
             fn main() { exchange(); }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert!(ctx.multithreaded_calls.is_empty());
    }

    #[test]
    fn recursion_terminates() {
        let m = lower(
            "fn rec(n: int) { if (n > 0) { rec(n - 1); } }
             fn main() { parallel { rec(3); } }",
        );
        let ctx = compute_contexts(&m, InitialContext::Sequential);
        assert_eq!(ctx.context_of("rec"), InitialContext::Parallel);
    }
}
