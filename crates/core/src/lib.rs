//! # parcoach-core — static/dynamic validation of MPI collectives in
//! multi-threaded context
//!
//! The paper's contribution, reimplemented over the `parcoach-ir` CFG:
//!
//! 1. **Monothread contexts** (`mono`): every collective's parallelism
//!    word ([`word`], [`pw`]) must lie in `L = (S|PB*S)*` ([`lang`]).
//! 2. **Sequential order** (`concurrency`): no two collective-bearing
//!    monothreaded regions may run concurrently (`pw = w·S_j·u` vs
//!    `w·S_k·v`, `j ≠ k`), nor a region with itself across loop
//!    iterations.
//! 3. **Inter-process matching** (`matching`): PARCOACH's Algorithm 1 —
//!    iterated post-dominance frontiers of collective sites find the
//!    conditionals that can desynchronize processes.
//!
//! The phases produce a [`report::StaticReport`] with typed warnings and
//! an instrumentation plan; [`instrument`] materializes the plan as
//! in-IR dynamic checks (`CC` color all-reduce, monothread asserts,
//! concurrency counters) that `parcoach-interp` executes.
//!
//! ```
//! use parcoach_front::parse_and_check;
//! use parcoach_ir::lower::lower_program;
//! use parcoach_core::{AnalysisSession, instrument_module, InstrumentMode};
//!
//! let unit = parse_and_check("demo.mh",
//!     "fn main() { if (rank() == 0) { MPI_Barrier(); } }").unwrap();
//! let module = lower_program(&unit.program, &unit.signatures);
//! let report = AnalysisSession::builder().build().check_module(&module);
//! assert_eq!(report.warnings.len(), 1); // collective mismatch
//! let (instrumented, stats) = instrument_module(&module, &report, InstrumentMode::Selective);
//! assert!(stats.cc_collective > 0);
//! assert!(parcoach_ir::verify_module(&instrumented).is_empty());
//! ```

pub mod cancel;
pub mod comm;
pub mod concurrency;
pub mod context;
pub mod facts;
pub mod instrument;
pub mod intern;
pub mod lang;
pub mod matching;
pub mod mono;
pub mod p2p;
pub mod pipeline;
pub mod pw;
pub mod query;
pub mod report;
pub mod request;
pub mod session;
pub mod word;

pub use cancel::{CancelToken, Cancelled};
pub use comm::{compute_comms, CommDef, CommId, CommTable, ModuleComms};
pub use context::{compute_contexts, compute_contexts_db, compute_contexts_legacy, CallContexts};
pub use facts::{AnalysisCx, FuncFacts};
pub use instrument::{instrument_module, InstrumentMode, InstrumentStats};
pub use intern::{EventArena, EventId, Sym, SymTable, WordArena, WordDag, WordId, WordNode};
pub use lang::{classify, ContextClass, MonoVerdict};
pub use pipeline::{AnalysisOptions, PhaseTimings};
pub use pw::{compute_pw, InitialContext, PwResult};
pub use query::{fingerprint, Fingerprint, QueryDb, QueryStats, SiteContexts};
pub use report::{InstrumentationPlan, StaticReport, StaticWarning, WarningKind};
pub use request::{compute_requests, ModuleRequests, ReqDef, ReqId, ReqTable};
pub use session::{AnalysisSession, AnalysisSessionBuilder};
pub use word::{SKind, Token, Word};
