//! Content-hash-keyed memoized queries for incremental re-analysis.
//!
//! `parcoachd` holds one [`QueryDb`] per open document and re-runs the
//! whole static pipeline after every edit. The pipeline stays
//! byte-identical to a cold run because only **span-free** derived facts
//! are served from the cache:
//!
//! * the parallelism-word result per `(function, initial context)` —
//!   the costliest part of the interprocedural fixpoint
//!   ([`crate::context`]). Its only spans live in
//!   [`Divergence`](crate::pw::Divergence)s, which [`QueryDb::shift`]
//!   rebases when an edit moves the function within the document;
//! * the CFG facts per function ([`CfgFacts`]: dominator/post-dominator
//!   trees, frontiers, natural loops) — pure block-graph structure with
//!   no spans at all;
//! * the **module-wide** tables — communicator classes
//!   ([`ModuleComms`]), request classes ([`ModuleRequests`]) and the
//!   p2p matching core ([`P2pCore`]) — each keyed by a hash of every
//!   function's projection of that family's inputs (`SubFps`), so an
//!   edit touching no communicator/request/p2p instruction anywhere
//!   reuses the whole table. The p2p core stores warning *locators*
//!   (function/block/instruction indices), never spans; the pipeline
//!   re-reads spans from the live IR when materializing warnings.
//!
//! Everything span-bearing (block→event maps, warning assembly, the
//! interning merge) is re-derived from the span-correct IR on every
//! check; it is cheap compared to the cached queries.
//!
//! ## Keys and the red-green pass
//!
//! Each function's cache entries are keyed by a 128-bit **span-insensitive
//! structural fingerprint** of its IR ([`fingerprint`]): every semantic
//! field is hashed, every `Span` is skipped. An edit that only moves a
//! function (whitespace above it) keeps its fingerprint, so its facts
//! stay *green* and are reused; an edit that changes its structure turns
//! the entry *red* and the next check re-derives its facts. The session
//! marks edited functions dirty ([`QueryDb::mark_dirty`]); the
//! reconciliation pass ([`QueryDb::reconcile_module`]) re-fingerprints
//! exactly the dirty set and compares against the stored hash — a
//! reverted or no-op edit turns green again without recomputation
//! (red-green invalidation). Module-level inputs the cached queries read
//! (the callee context lattice, event presence) are part of the key
//! instead: pw is keyed by [`InitialContext`], CFG facts by whether the
//! frontier set was materialized.

use crate::comm::ModuleComms;
use crate::facts::CfgFacts;
use crate::p2p::P2pCore;
use crate::pw::{InitialContext, PwResult};
use crate::request::ModuleRequests;
use parcoach_front::ast::Type;
use parcoach_front::span::Span;
use parcoach_ir::func::{FuncIr, Module};
use parcoach_ir::instr::{BlockKind, CheckOp, Directive, Instr, MpiIr, Terminator};
use parcoach_ir::types::BlockId;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// A 128-bit span-insensitive structural hash of one function's IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(pub u128);

/// FNV-1a, 128-bit variant.
struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x13b + (1u128 << 88);

    fn new() -> Self {
        Fnv128(Self::OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Tag byte separating fields/variants so adjacent fields can never
    /// alias across a boundary shift.
    fn tag(&mut self, t: u8) {
        self.bytes(&[t]);
    }
}

/// Span-free leaves (operators, operands, ids, types) hash via their
/// `Debug` form — exhaustive by construction and unambiguous once
/// interleaved with [`Fnv128::tag`] separators.
impl std::fmt::Write for Fnv128 {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.bytes(s.as_bytes());
        Ok(())
    }
}

/// Compute the span-insensitive structural fingerprint of `f`.
///
/// The walk mirrors the IR shape by hand wherever a `Span` hides
/// ([`Instr`], [`Directive`], [`Terminator`], [`CheckOp`], blocks, the
/// function header) and falls back to `Debug` for span-free leaves
/// ([`MpiIr`], operators, operands, ids).
pub fn fingerprint(f: &FuncIr) -> Fingerprint {
    let mut h = Fnv128::new();
    h.bytes(f.name.as_bytes());
    h.tag(0xF0);
    let _ = write!(
        h,
        "{:?}|{:?}|{:?}|{:?}",
        f.params, f.ret, f.reg_types, f.reg_names
    );
    h.u32(f.entry.0);
    h.u32(f.region_count);
    for b in &f.blocks {
        h.tag(0xB0);
        match &b.kind {
            BlockKind::Normal => h.tag(0),
            BlockKind::Directive(d) => {
                h.tag(1);
                hash_directive(&mut h, d);
            }
        }
        for i in &b.instrs {
            hash_instr(&mut h, i);
        }
        hash_terminator(&mut h, &b.term);
    }
    Fingerprint(h.0)
}

fn hash_instr(h: &mut Fnv128, i: &Instr) {
    h.tag(0x10);
    match i {
        // Span-free variants: Debug covers every field.
        Instr::Copy { .. }
        | Instr::Unary { .. }
        | Instr::Intrinsic { .. }
        | Instr::Print { .. } => {
            h.tag(0);
            let _ = write!(h, "{i:?}");
        }
        Instr::Binary {
            dest,
            op,
            lhs,
            rhs,
            span: _,
        } => {
            h.tag(1);
            let _ = write!(h, "{dest:?}{op:?}{lhs:?}{rhs:?}");
        }
        Instr::ArrayNew {
            dest,
            len,
            init,
            elem,
            span: _,
        } => {
            h.tag(2);
            let _ = write!(h, "{dest:?}{len:?}{init:?}{elem:?}");
        }
        Instr::Load {
            dest,
            arr,
            idx,
            span: _,
        } => {
            h.tag(3);
            let _ = write!(h, "{dest:?}{arr:?}{idx:?}");
        }
        Instr::Store {
            arr,
            idx,
            value,
            span: _,
        } => {
            h.tag(4);
            let _ = write!(h, "{arr:?}{idx:?}{value:?}");
        }
        Instr::Call {
            dest,
            func,
            args,
            span: _,
        } => {
            h.tag(5);
            let _ = write!(h, "{dest:?}{func}|{args:?}");
        }
        Instr::Mpi { dest, op, span: _ } => {
            h.tag(6);
            // MpiIr carries no spans.
            let _ = write!(h, "{dest:?}{op:?}");
        }
        Instr::Check(c) => {
            h.tag(7);
            match c {
                CheckOp::CollectiveCc {
                    color,
                    comm,
                    span: _,
                } => {
                    h.tag(0);
                    let _ = write!(h, "{color}{comm:?}");
                }
                CheckOp::ReturnCc { span: _ } => h.tag(1),
                CheckOp::AssertMonothread { what, span: _ } => {
                    h.tag(2);
                    h.bytes(what.as_bytes());
                }
                CheckOp::ConcEnter { site, span: _ } => {
                    h.tag(3);
                    h.u32(*site);
                }
                CheckOp::ConcExit { site } => {
                    h.tag(4);
                    h.u32(*site);
                }
                CheckOp::P2pEpoch { span: _ } => h.tag(5),
            }
        }
    }
}

fn hash_directive(h: &mut Fnv128, d: &Directive) {
    h.tag(0x20);
    match d {
        // Span-free variants: Debug covers every field.
        Directive::ParallelEnd { .. }
        | Directive::SingleEnd { .. }
        | Directive::MasterEnd { .. }
        | Directive::CriticalEnd { .. }
        | Directive::WorkshareEnd { .. }
        | Directive::PForInit { .. }
        | Directive::SectionBegin { .. }
        | Directive::SectionEnd { .. } => {
            h.tag(0);
            let _ = write!(h, "{d:?}");
        }
        Directive::ParallelBegin {
            region,
            num_threads,
            span: _,
        } => {
            h.tag(1);
            let _ = write!(h, "{region:?}{num_threads:?}");
        }
        Directive::SingleBegin {
            region,
            nowait,
            chosen,
            span: _,
        } => {
            h.tag(2);
            let _ = write!(h, "{region:?}{nowait}{chosen:?}");
        }
        Directive::MasterBegin {
            region,
            chosen,
            span: _,
        } => {
            h.tag(3);
            let _ = write!(h, "{region:?}{chosen:?}");
        }
        Directive::CriticalBegin { region, span: _ } => {
            h.tag(4);
            let _ = write!(h, "{region:?}");
        }
        Directive::WorkshareBegin {
            region,
            kind,
            nowait,
            span: _,
        } => {
            h.tag(5);
            let _ = write!(h, "{region:?}{kind:?}{nowait}");
        }
        Directive::Barrier {
            implicit,
            region,
            span: _,
        } => {
            h.tag(6);
            let _ = write!(h, "{implicit}{region:?}");
        }
    }
}

fn hash_terminator(h: &mut Fnv128, t: &Terminator) {
    h.tag(0x30);
    match t {
        Terminator::Goto(b) => {
            h.tag(0);
            h.u32(b.0);
        }
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
            span: _,
        } => {
            h.tag(1);
            let _ = write!(h, "{cond:?}");
            h.u32(then_bb.0);
            h.u32(else_bb.0);
        }
        Terminator::Return { value, span: _ } => {
            h.tag(2);
            let _ = write!(h, "{value:?}");
        }
        Terminator::Unreachable => h.tag(3),
    }
}

/// Per-function projections of the **module-level** fact inputs: what
/// one function contributes to the communicator tables, the request
/// tables and the p2p matcher. Hashed together in module order they key
/// the module-wide caches ([`QueryDb::module_comm_key`] and friends), so
/// an edit that touches none of a family's inputs anywhere in the module
/// reuses that family's table wholesale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SubFps {
    /// Inputs of the communicator resolution: `0` when the function has
    /// no `comm`-typed register (the resolver's fast path), else a
    /// span-insensitive hash of the signature, the register types and
    /// every instruction defining a `comm`-typed register.
    comm: u128,
    /// Same projection for `request`-typed registers.
    req: u128,
    /// Inputs of the p2p matcher: the full structural fingerprint when
    /// the function contains any point-to-point or wait operation
    /// (matching reads sites, waits *and* dominators), the sentinel `1`
    /// when it only contains `MPI_Finalize` (the epoch census walks all
    /// functions for finalize presence), else `0`.
    p2p: u128,
}

/// Span-insensitive hash of everything the per-register lattice
/// resolution of `ty`-typed registers reads from `f`.
fn typed_def_fp(f: &FuncIr, ty: Type) -> u128 {
    if !f.reg_types.contains(&ty) {
        return 0;
    }
    let mut h = Fnv128::new();
    h.tag(0xD0);
    let _ = write!(h, "{:?}|{:?}", f.params, f.reg_types);
    for b in &f.blocks {
        h.tag(0xB1);
        for i in &b.instrs {
            if i.dest()
                .is_some_and(|d| f.reg_types.get(d.index()) == Some(&ty))
            {
                hash_instr(&mut h, i);
            }
        }
    }
    h.0
}

fn compute_sub_fps(f: &FuncIr, full: Option<Fingerprint>) -> SubFps {
    let mut has_p2p = false;
    let mut has_finalize = false;
    for b in &f.blocks {
        for i in &b.instrs {
            if let Instr::Mpi { op, .. } = i {
                match op {
                    MpiIr::Send { .. }
                    | MpiIr::Recv { .. }
                    | MpiIr::Isend { .. }
                    | MpiIr::Irecv { .. }
                    | MpiIr::Wait { .. }
                    | MpiIr::Waitall { .. } => has_p2p = true,
                    MpiIr::Finalize => has_finalize = true,
                    _ => {}
                }
            }
        }
    }
    let p2p = if has_p2p {
        full.unwrap_or_else(|| fingerprint(f)).0
    } else if has_finalize {
        1
    } else {
        0
    };
    SubFps {
        comm: typed_def_fp(f, Type::Comm),
        req: typed_def_fp(f, Type::Request),
        p2p,
    }
}

/// One function's call-graph contribution, derived from its IR alone —
/// which makes it cacheable by [`fingerprint`] (`Instr::Call` hashes the
/// callee name, so a retargeted call changes the key). The
/// interprocedural context fixpoint re-reads these every check; caching
/// them spares the full instruction re-walk (and its per-site string
/// allocations) for every green function.
#[derive(Debug, Clone)]
pub struct CallSummary {
    /// Does the function itself issue collective events (collective ops
    /// or communicator-management collectives)?
    pub own_bearing: bool,
    /// Does the function contain *any* MPI instruction (including p2p)?
    /// Gates the fact store's per-block event derivation: a function
    /// with no MPI and no collective-bearing callees cannot produce
    /// events, so its blocks are never walked on a warm re-check.
    pub has_mpi: bool,
    /// Every call site as `(block, callee, span)`, in block order then
    /// instruction order. Spans feed multithreaded-call warnings, so
    /// [`QueryDb::shift`] rebases them like pw divergences.
    pub call_sites: Vec<(BlockId, String, Span)>,
}

/// Compute one function's [`CallSummary`] from its IR (one walk).
pub fn call_summary(f: &FuncIr) -> CallSummary {
    let mut own_bearing = false;
    let mut has_mpi = false;
    let mut call_sites = Vec::new();
    for (bid, b) in f.iter_blocks() {
        for i in &b.instrs {
            match i {
                Instr::Mpi { op, .. } => {
                    has_mpi = true;
                    own_bearing |= op.collective_kind().is_some() || op.comm_mgmt().is_some();
                }
                Instr::Call { func, span, .. } => call_sites.push((bid, func.clone(), *span)),
                _ => {}
            }
        }
    }
    CallSummary {
        own_bearing,
        has_mpi,
        call_sites,
    }
}

/// The per-`(function, context)` delta-propagation query of the context
/// fixpoint: each call site's contribution to its callee's entry
/// context, aligned index-for-index with [`CallSummary::call_sites`].
///
/// This is what the incremental worklist in [`crate::context`]
/// re-propagates: when a function's context (or body) is unchanged, its
/// site contexts are served from here and the fixpoint never touches its
/// blocks. Entirely span-free — derived from the pw result and the
/// summary's block ids — so [`QueryDb::shift`] has nothing to rebase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteContexts {
    /// The callee entry context induced by each call site, in
    /// [`CallSummary::call_sites`] order.
    pub per_site: Vec<InitialContext>,
}

/// Hit/miss counters, surfaced through the daemon's `timings` verb and
/// asserted on by the incrementality tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Parallelism-word results served from cache.
    pub pw_hits: u64,
    /// Parallelism-word results recomputed.
    pub pw_misses: u64,
    /// CFG facts served from cache.
    pub cfg_hits: u64,
    /// CFG facts recomputed.
    pub cfg_misses: u64,
    /// Call-site context vectors served from cache (the fixpoint's
    /// delta-propagation query, see [`SiteContexts`]).
    pub site_hits: u64,
    /// Call-site context vectors recomputed.
    pub site_misses: u64,
    /// Red entries whose recomputed fingerprint still matched (edit was
    /// structurally a no-op — the red-green short-circuit).
    pub greened: u64,
    /// Red entries whose facts were actually dropped.
    pub invalidated: u64,
    /// Module-wide communicator tables served from cache.
    pub comm_hits: u64,
    /// Module-wide communicator tables recomputed.
    pub comm_misses: u64,
    /// Module-wide request tables served from cache.
    pub req_hits: u64,
    /// Module-wide request tables recomputed.
    pub req_misses: u64,
    /// Module-wide p2p matching results served from cache.
    pub p2p_hits: u64,
    /// Module-wide p2p matching results recomputed.
    pub p2p_misses: u64,
}

/// One function's memoized facts.
#[derive(Debug, Default)]
struct FuncEntry {
    fp: Option<Fingerprint>,
    /// Set by [`QueryDb::mark_dirty`]; cleared by reconciliation.
    dirty: bool,
    /// Lazily-filled module-fact projections (see `SubFps`); dropped
    /// whenever the structural fingerprint changes.
    sub: Option<SubFps>,
    /// Cached pw per [`InitialContext`] (index = lattice position).
    pw: [Option<Arc<PwResult>>; 3],
    /// Cached call-site contexts per [`InitialContext`], keyed like `pw`
    /// (they are a pure function of the pw result and the summary).
    sites: [Option<Arc<SiteContexts>>; 3],
    /// Cached CFG facts; the flag records whether the frontier set was
    /// materialized (an event-presence change re-keys the entry).
    cfg: Option<(bool, Arc<CfgFacts>)>,
    /// Cached call-graph summary (see [`CallSummary`]).
    summary: Option<Arc<CallSummary>>,
}

/// The per-document memo store. See the module docs for the caching
/// contract; the pipeline consults it through
/// [`analyze_module_db`](crate::pipeline::analyze_module_db).
#[derive(Debug, Default)]
pub struct QueryDb {
    funcs: HashMap<String, FuncEntry>,
    /// The last module-wide communicator tables, keyed by
    /// [`QueryDb::module_comm_key`].
    comms: Option<(u128, Arc<ModuleComms>)>,
    /// The last module-wide request tables, keyed by
    /// [`QueryDb::module_req_key`].
    reqs: Option<(u128, Arc<ModuleRequests>)>,
    /// The last span-free p2p matching core, keyed by
    /// [`QueryDb::module_p2p_key`].
    p2p: Option<(u128, Arc<P2pCore>)>,
    /// Running hit/miss counters.
    pub stats: QueryStats,
}

fn ctx_index(ctx: InitialContext) -> usize {
    match ctx {
        InitialContext::Sequential => 0,
        InitialContext::ParallelSingle => 1,
        InitialContext::Parallel => 2,
    }
}

impl QueryDb {
    /// An empty store (everything misses once).
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark one function's facts as possibly stale. Called by the
    /// session for every edited function; reconciliation decides whether
    /// the facts actually die (red) or survive (green).
    pub fn mark_dirty(&mut self, name: &str) {
        self.funcs.entry(name.to_string()).or_default().dirty = true;
    }

    /// Rebase the spans inside `name`'s cached facts by `delta` bytes —
    /// an edit to an *earlier* function moved this one within the
    /// document. Only pw divergences carry spans; CFG facts are
    /// span-free.
    pub fn shift(&mut self, name: &str, delta: i64) {
        if delta == 0 {
            return;
        }
        let Some(entry) = self.funcs.get_mut(name) else {
            return;
        };
        for slot in entry.pw.iter_mut().flatten() {
            if slot.divergences.is_empty() {
                continue;
            }
            let pw = Arc::make_mut(slot);
            for d in &mut pw.divergences {
                d.span = shift_span(d.span, delta);
            }
        }
        if let Some(s) = entry.summary.as_mut() {
            if !s.call_sites.is_empty() {
                let s = Arc::make_mut(s);
                for (_, _, span) in &mut s.call_sites {
                    *span = shift_span(*span, delta);
                }
            }
        }
    }

    /// The red-green pass: bring every function's stored fingerprint up
    /// to date and drop the facts of functions whose structure changed.
    ///
    /// Clean entries are a hash lookup; dirty entries are
    /// re-fingerprinted and either *greened* (hash unchanged — keep the
    /// facts) or *invalidated* (drop them). Functions deleted from the
    /// module lose their entries. Must run before any `pw`/`cfg` lookup
    /// against `m` — [`analyze_module_db`](crate::pipeline::analyze_module_db)
    /// does this.
    pub fn reconcile_module(&mut self, m: &Module) {
        self.funcs.retain(|name, _| m.by_name.contains_key(name));
        for f in &m.funcs {
            let entry = self.funcs.entry(f.name.clone()).or_default();
            if entry.fp.is_some() && !entry.dirty {
                continue;
            }
            let fp = fingerprint(f);
            if entry.fp == Some(fp) {
                self.stats.greened += 1;
            } else {
                if entry.fp.is_some() {
                    self.stats.invalidated += 1;
                }
                entry.pw = [None, None, None];
                entry.sites = [None, None, None];
                entry.cfg = None;
                entry.summary = None;
                entry.sub = None;
                entry.fp = Some(fp);
            }
            entry.dirty = false;
        }
    }

    /// Cached pw of `name` under `ctx`, if green.
    pub fn pw(&mut self, name: &str, ctx: InitialContext) -> Option<Arc<PwResult>> {
        let hit = self
            .funcs
            .get(name)
            .and_then(|e| e.pw[ctx_index(ctx)].clone());
        match hit {
            Some(pw) => {
                self.stats.pw_hits += 1;
                Some(pw)
            }
            None => {
                self.stats.pw_misses += 1;
                None
            }
        }
    }

    /// Record a freshly computed pw for `name` under `ctx`.
    pub fn insert_pw(&mut self, name: &str, ctx: InitialContext, pw: Arc<PwResult>) {
        self.funcs.entry(name.to_string()).or_default().pw[ctx_index(ctx)] = Some(pw);
    }

    /// Cached CFG facts of `name`, if green and materialized with the
    /// same frontier choice.
    pub fn cfg(&mut self, name: &str, with_pdf: bool) -> Option<Arc<CfgFacts>> {
        let hit = self.funcs.get(name).and_then(|e| match &e.cfg {
            Some((p, cfg)) if *p == with_pdf => Some(cfg.clone()),
            _ => None,
        });
        match hit {
            Some(cfg) => {
                self.stats.cfg_hits += 1;
                Some(cfg)
            }
            None => {
                self.stats.cfg_misses += 1;
                None
            }
        }
    }

    /// Record freshly computed CFG facts for `name`.
    pub fn insert_cfg(&mut self, name: &str, with_pdf: bool, cfg: Arc<CfgFacts>) {
        self.funcs.entry(name.to_string()).or_default().cfg = Some((with_pdf, cfg));
    }

    /// Cached call-site contexts of `name` under `ctx`, if green — the
    /// fixpoint's delta-propagation query.
    pub fn site_contexts(&mut self, name: &str, ctx: InitialContext) -> Option<Arc<SiteContexts>> {
        let hit = self
            .funcs
            .get(name)
            .and_then(|e| e.sites[ctx_index(ctx)].clone());
        match hit {
            Some(s) => {
                self.stats.site_hits += 1;
                Some(s)
            }
            None => {
                self.stats.site_misses += 1;
                None
            }
        }
    }

    /// Record freshly derived call-site contexts for `name` under `ctx`.
    pub fn insert_site_contexts(&mut self, name: &str, ctx: InitialContext, s: Arc<SiteContexts>) {
        self.funcs.entry(name.to_string()).or_default().sites[ctx_index(ctx)] = Some(s);
    }

    /// Cached call-graph summary of `name`, if green.
    pub fn summary(&self, name: &str) -> Option<Arc<CallSummary>> {
        self.funcs.get(name).and_then(|e| e.summary.clone())
    }

    /// Record a freshly computed call summary for `name`.
    pub fn insert_summary(&mut self, name: &str, s: Arc<CallSummary>) {
        self.funcs.entry(name.to_string()).or_default().summary = Some(s);
    }

    /// `f`'s module-fact projections, computing and caching them on
    /// first use after an invalidation.
    fn sub_fps(&mut self, f: &FuncIr) -> SubFps {
        let e = self.funcs.entry(f.name.clone()).or_default();
        if let Some(s) = e.sub {
            return s;
        }
        let s = compute_sub_fps(f, e.fp);
        e.sub = Some(s);
        s
    }

    fn module_key(&mut self, m: &Module, tag: u8, proj: impl Fn(SubFps) -> u128) -> u128 {
        let mut h = Fnv128::new();
        h.tag(tag);
        for f in &m.funcs {
            let sub = self.sub_fps(f);
            h.bytes(f.name.as_bytes());
            h.tag(0x00);
            h.bytes(&proj(sub).to_le_bytes());
        }
        h.0
    }

    /// Cache key of the module-wide communicator tables: every
    /// function's `(name, comm projection)` in module order, so the key
    /// is green exactly when no function's communicator inputs changed.
    pub fn module_comm_key(&mut self, m: &Module) -> u128 {
        self.module_key(m, 0xC1, |s| s.comm)
    }

    /// Cache key of the module-wide request tables (see
    /// [`QueryDb::module_comm_key`]).
    pub fn module_req_key(&mut self, m: &Module) -> u128 {
        self.module_key(m, 0xC2, |s| s.req)
    }

    /// Cache key of the module-wide p2p matching core. Covers everything
    /// the matcher reads: the communicator and request tables (their
    /// keys), per-function p2p/finalize projections, and
    /// entry-reachability (a call-graph edit anywhere can silence or
    /// unmask sites without touching any p2p instruction).
    pub fn module_p2p_key(&mut self, m: &Module, reachable: &[bool]) -> u128 {
        let comm_key = self.module_comm_key(m);
        let req_key = self.module_req_key(m);
        let mut h = Fnv128::new();
        h.tag(0xC3);
        h.bytes(&comm_key.to_le_bytes());
        h.bytes(&req_key.to_le_bytes());
        for (f, r) in m.funcs.iter().zip(reachable) {
            let sub = self.sub_fps(f);
            h.bytes(f.name.as_bytes());
            h.tag(u8::from(*r));
            h.bytes(&sub.p2p.to_le_bytes());
        }
        h.0
    }

    /// The cached module-wide communicator tables, if keyed by `key`.
    pub fn module_comms(&mut self, key: u128) -> Option<Arc<ModuleComms>> {
        match &self.comms {
            Some((k, t)) if *k == key => {
                self.stats.comm_hits += 1;
                Some(t.clone())
            }
            _ => {
                self.stats.comm_misses += 1;
                None
            }
        }
    }

    /// Record freshly computed communicator tables under `key`.
    pub fn insert_module_comms(&mut self, key: u128, t: Arc<ModuleComms>) {
        self.comms = Some((key, t));
    }

    /// The cached module-wide request tables, if keyed by `key`.
    pub fn module_reqs(&mut self, key: u128) -> Option<Arc<ModuleRequests>> {
        match &self.reqs {
            Some((k, t)) if *k == key => {
                self.stats.req_hits += 1;
                Some(t.clone())
            }
            _ => {
                self.stats.req_misses += 1;
                None
            }
        }
    }

    /// Record freshly computed request tables under `key`.
    pub fn insert_module_reqs(&mut self, key: u128, t: Arc<ModuleRequests>) {
        self.reqs = Some((key, t));
    }

    /// The cached p2p matching core, if keyed by `key`.
    pub fn p2p_core(&mut self, key: u128) -> Option<Arc<P2pCore>> {
        match &self.p2p {
            Some((k, c)) if *k == key => {
                self.stats.p2p_hits += 1;
                Some(c.clone())
            }
            _ => {
                self.stats.p2p_misses += 1;
                None
            }
        }
    }

    /// Record a freshly computed p2p matching core under `key`.
    pub fn insert_p2p_core(&mut self, key: u128, c: Arc<P2pCore>) {
        self.p2p = Some((key, c));
    }
}

fn shift_span(span: parcoach_front::span::Span, delta: i64) -> parcoach_front::span::Span {
    use parcoach_front::span::Span;
    if span.is_dummy() {
        return span;
    }
    let lo = span.lo as i64 + delta;
    let hi = span.hi as i64 + delta;
    Span::new(lo.max(0) as u32, hi.max(0) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;

    fn lower(src: &str) -> Module {
        let unit = parse_and_check("t.mh", src).expect("valid");
        lower_program(&unit.program, &unit.signatures)
    }

    #[test]
    fn fingerprint_ignores_spans() {
        let src = "fn main() { if (rank() == 0) { MPI_Barrier(); } }";
        let m0 = lower(src);
        let m1 = lower(&format!("\n\n   {src}"));
        assert_ne!(
            format!("{:?}", m0.funcs[0]),
            format!("{:?}", m1.funcs[0]),
            "spans must differ for the test to mean anything"
        );
        assert_eq!(fingerprint(&m0.funcs[0]), fingerprint(&m1.funcs[0]));
    }

    #[test]
    fn fingerprint_sees_structure() {
        let a = lower("fn main() { MPI_Barrier(); }");
        let b = lower("fn main() { MPI_Allreduce(1, SUM); }");
        let c = lower("fn main() { if (rank() == 0) { MPI_Barrier(); } }");
        let fa = fingerprint(&a.funcs[0]);
        assert_ne!(fa, fingerprint(&b.funcs[0]));
        assert_ne!(fa, fingerprint(&c.funcs[0]));
    }

    #[test]
    fn fingerprint_sees_name_and_params() {
        let m = lower("fn a(x: int) { let y = x; } fn main() { a(1); }");
        let n = lower("fn a(x: float) { let y = x; } fn main() { a(1.0); }");
        assert_ne!(fingerprint(&m.funcs[0]), fingerprint(&n.funcs[0]));
    }

    #[test]
    fn red_green_keeps_facts_on_structural_noop() {
        let m = lower("fn main() { MPI_Barrier(); }");
        let mut db = QueryDb::new();
        db.reconcile_module(&m);
        db.insert_pw(
            "main",
            InitialContext::Sequential,
            Arc::new(crate::pw::compute_pw(
                &m.funcs[0],
                InitialContext::Sequential,
            )),
        );
        // A whitespace-style edit: same structure, different spans.
        let m2 = lower("   fn main() { MPI_Barrier(); }");
        db.mark_dirty("main");
        db.reconcile_module(&m2);
        assert_eq!(db.stats.greened, 1);
        assert!(db.pw("main", InitialContext::Sequential).is_some());
        // A real edit kills the entry.
        let m3 = lower("fn main() { MPI_Barrier(); MPI_Barrier(); }");
        db.mark_dirty("main");
        db.reconcile_module(&m3);
        assert_eq!(db.stats.invalidated, 1);
        assert!(db.pw("main", InitialContext::Sequential).is_none());
    }

    #[test]
    fn reconcile_drops_deleted_functions() {
        let m = lower("fn gone() { let x = 1; } fn main() { gone(); }");
        let mut db = QueryDb::new();
        db.reconcile_module(&m);
        db.insert_pw(
            "gone",
            InitialContext::Sequential,
            Arc::new(crate::pw::compute_pw(
                &m.funcs[0],
                InitialContext::Sequential,
            )),
        );
        let m2 = lower("fn main() { let x = 1; }");
        db.reconcile_module(&m2);
        assert!(db.pw("gone", InitialContext::Sequential).is_none());
    }

    #[test]
    fn shift_rebases_divergence_spans() {
        use parcoach_front::span::Span;
        let m = lower("fn main() { parallel { if (thread_num() == 0) { barrier; } } }");
        let mut pw = crate::pw::compute_pw(&m.funcs[0], InitialContext::Sequential);
        assert!(!pw.divergences.is_empty(), "one-armed barrier diverges");
        // Joins land on synthesized blocks (dummy spans); pin the rebase
        // arithmetic on a real span and the dummy-preservation on the rest.
        pw.divergences[0].span = Span::new(40, 47);
        let mut db = QueryDb::new();
        db.reconcile_module(&m);
        db.insert_pw("main", InitialContext::Sequential, Arc::new(pw));
        db.shift("main", 7);
        let shifted = db.pw("main", InitialContext::Sequential).unwrap();
        assert_eq!(shifted.divergences[0].span, Span::new(47, 54));
        for d in &shifted.divergences[1..] {
            assert!(d.span.is_dummy() || d.span.lo >= 7);
        }
    }
}
