//! The consolidated analysis entry point.
//!
//! The static pipeline grew four overlapping entry points
//! (`analyze_module`, `analyze_module_with`, `analyze_module_timed`,
//! plus ad-hoc `AnalysisOptions` plumbing at every call site).
//! [`AnalysisSession`] replaces them with one builder-configured object
//! that owns the execution resources (pool choice, determinism, seed),
//! the tuning knobs ([`AnalysisOptions`]) and — when incremental mode is
//! on — the memoized query store ([`QueryDb`]) that makes warm
//! re-checks fast:
//!
//! ```
//! use parcoach_core::session::AnalysisSession;
//! use parcoach_front::parse_and_check;
//! use parcoach_ir::lower::lower_program;
//!
//! let unit = parse_and_check("t.mh",
//!     "fn main() { if (rank() == 0) { MPI_Barrier(); } }").unwrap();
//! let module = lower_program(&unit.program, &unit.signatures);
//! let mut session = AnalysisSession::builder()
//!     .jobs(2)
//!     .deterministic(true)
//!     .build();
//! let report = session.check_module(&module);
//! assert_eq!(report.warnings.len(), 1);
//! assert!(session.timings().is_some());
//! ```
//!
//! A default session is stateless: every `check_module` is a cold run,
//! byte-identical to the old free functions. `incremental(true)` turns
//! on the content-hash-keyed memo store; the caller (normally
//! `parcoachd`'s document layer) then reports edits through
//! [`AnalysisSession::mark_edited`] / [`AnalysisSession::shift_function`]
//! so the red-green pass can invalidate precisely.

use crate::cancel::{CancelToken, Cancelled};
use crate::pipeline::{analyze_timed_impl, AnalysisOptions, PhaseTimings};
use crate::pw::InitialContext;
use crate::query::{QueryDb, QueryStats};
use crate::report::{StaticReport, StaticWarning};
use parcoach_ir::func::Module;
use parcoach_pool::{Pool, PoolConfig};

/// Which pool a session runs on.
enum PoolChoice {
    /// The process-wide pool (`PARCOACH_JOBS` / CLI-configured).
    Global,
    /// A session-private pool with explicit width/determinism.
    Owned(Pool),
}

/// Builder for [`AnalysisSession`] — the one place execution and
/// analysis configuration meet.
pub struct AnalysisSessionBuilder {
    jobs: Option<usize>,
    deterministic: bool,
    seed: u64,
    opts: AnalysisOptions,
    incremental: bool,
}

impl AnalysisSessionBuilder {
    /// Pool width. Without this the session runs on the process-wide
    /// pool; with it the session owns a private pool of `n` lanes.
    pub fn jobs(mut self, n: usize) -> Self {
        self.jobs = Some(n.max(1));
        self
    }

    /// Seed the pool's victim selection so task placement reproduces
    /// run to run (reports are byte-identical at any width regardless).
    /// Implies a session-private pool.
    pub fn deterministic(mut self, on: bool) -> Self {
        self.deterministic = on;
        self
    }

    /// Scheduling seed for deterministic mode.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the whole option block.
    pub fn options(mut self, opts: AnalysisOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The context `main` is assumed to start in.
    pub fn entry_context(mut self, ctx: InitialContext) -> Self {
        self.opts.entry_context = ctx;
        self
    }

    /// Toggle the balanced-arms refinement in the matching phase.
    pub fn refine_matching(mut self, on: bool) -> Self {
        self.opts.refine_matching = on;
        self
    }

    /// Toggle `InsufficientThreadLevel` warnings.
    pub fn check_thread_level(mut self, on: bool) -> Self {
        self.opts.check_thread_level = on;
        self
    }

    /// Toggle the non-blocking request life-cycle pass.
    pub fn check_requests(mut self, on: bool) -> Self {
        self.opts.check_requests = on;
        self
    }

    /// Toggle the memoized `PDF+` engine (off = the E10 ablation's
    /// recompute-per-query path).
    pub fn pdf_memo(mut self, on: bool) -> Self {
        self.opts.pdf_memo = on;
        self
    }

    /// Toggle the incremental worklist driver of the context fixpoint
    /// (off = the E13 ablation's legacy round-based re-walk).
    pub fn incr_fixpoint(mut self, on: bool) -> Self {
        self.opts.incr_fixpoint = on;
        self
    }

    /// Toggle the module-wide table memo (communicator/request classes,
    /// p2p matching core) on incremental sessions. Off = recompute per
    /// check — the ablation baseline and the fuzz differential's
    /// `--no-module-memo` mode.
    pub fn module_memo(mut self, on: bool) -> Self {
        self.opts.module_memo = on;
        self
    }

    /// Keep span-free derived facts (parallelism words, CFG facts) in a
    /// content-hash-keyed memo across checks. See the type docs for the
    /// edit-notification contract this puts on the caller.
    pub fn incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Build the session.
    pub fn build(self) -> AnalysisSession {
        let pool = if self.jobs.is_some() || self.deterministic {
            PoolChoice::Owned(Pool::new(PoolConfig {
                jobs: self.jobs.unwrap_or_else(parcoach_pool::default_jobs),
                deterministic: self.deterministic,
                seed: self.seed,
            }))
        } else {
            PoolChoice::Global
        };
        AnalysisSession {
            pool,
            opts: self.opts,
            db: self.incremental.then(QueryDb::new),
            timings: None,
        }
    }
}

/// A configured analysis pipeline: pool + options (+ optional
/// incremental memo store). The one entry point — the historical
/// free-function family (`analyze_module` and friends) is gone.
pub struct AnalysisSession {
    pool: PoolChoice,
    opts: AnalysisOptions,
    /// The memo store; `Some` iff the session is incremental.
    db: Option<QueryDb>,
    /// Breakdown of the most recent check.
    timings: Option<PhaseTimings>,
}

impl Default for AnalysisSession {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl AnalysisSession {
    /// Start configuring a session. The default configuration runs on
    /// the process-wide pool with default options, non-incremental.
    pub fn builder() -> AnalysisSessionBuilder {
        AnalysisSessionBuilder {
            jobs: None,
            deterministic: false,
            seed: 0,
            opts: AnalysisOptions::default(),
            incremental: false,
        }
    }

    /// The pool this session fans work out on.
    pub fn pool(&self) -> &Pool {
        match &self.pool {
            PoolChoice::Global => parcoach_pool::global(),
            PoolChoice::Owned(p) => p,
        }
    }

    /// The session's analysis options.
    pub fn options(&self) -> &AnalysisOptions {
        &self.opts
    }

    /// Run the full static analysis. Byte-identical to the legacy
    /// `analyze_module_with` at any pool width; with `incremental(true)`
    /// the expensive span-free queries are served from the memo wherever
    /// the per-function fingerprints are green.
    pub fn check_module(&mut self, m: &Module) -> StaticReport {
        self.check_impl(m, None).expect("no token, cannot cancel")
    }

    /// [`AnalysisSession::check_module`] with cooperative cancellation:
    /// `token` is observed at every phase boundary, and a cancelled (or
    /// deadline-expired) check returns `Err(Cancelled)` without a
    /// report. Facts computed before the cancellation stay in the
    /// incremental store — they are fingerprint-keyed and valid, so the
    /// next check starts warmer.
    pub fn check_module_cancellable(
        &mut self,
        m: &Module,
        token: &CancelToken,
    ) -> Result<StaticReport, Cancelled> {
        self.check_impl(m, Some(token))
    }

    fn check_impl(
        &mut self,
        m: &Module,
        token: Option<&CancelToken>,
    ) -> Result<StaticReport, Cancelled> {
        let pool = match &self.pool {
            PoolChoice::Global => parcoach_pool::global(),
            PoolChoice::Owned(p) => p,
        };
        let (report, timings) = analyze_timed_impl(m, &self.opts, pool, self.db.as_mut(), token)?;
        self.timings = Some(timings);
        Ok(report)
    }

    /// Run the analysis and return only the warnings attributed to
    /// `name` (`None` if the module has no such function). The warm path
    /// of `parcoachd check {func}`: on an incremental session only the
    /// edited function's facts are re-derived.
    pub fn check_function(&mut self, m: &Module, name: &str) -> Option<Vec<StaticWarning>> {
        if !m.by_name.contains_key(name) {
            return None;
        }
        let report = self.check_module(m);
        Some(
            report
                .warnings
                .into_iter()
                .filter(|w| w.func == name)
                .collect(),
        )
    }

    /// Per-phase wall-time breakdown of the most recent check.
    pub fn timings(&self) -> Option<&PhaseTimings> {
        self.timings.as_ref()
    }

    /// Whether the session keeps a memo store across checks.
    pub fn is_incremental(&self) -> bool {
        self.db.is_some()
    }

    /// Hit/miss counters of the memo store (zeroes when
    /// non-incremental).
    pub fn query_stats(&self) -> QueryStats {
        self.db.as_ref().map(|db| db.stats).unwrap_or_default()
    }

    /// Tell the memo store that `name`'s text changed; the next check's
    /// red-green pass re-fingerprints it and drops its facts only if the
    /// structure really changed. No-op on non-incremental sessions.
    pub fn mark_edited(&mut self, name: &str) {
        if let Some(db) = self.db.as_mut() {
            db.mark_dirty(name);
        }
    }

    /// Tell the memo store that `name` moved by `delta` bytes within the
    /// document (an earlier function grew or shrank), so cached spans
    /// are rebased. No-op on non-incremental sessions.
    pub fn shift_function(&mut self, name: &str, delta: i64) {
        if let Some(db) = self.db.as_mut() {
            db.shift(name, delta);
        }
    }

    /// Drop every memoized fact (e.g. after replacing the document
    /// wholesale). No-op on non-incremental sessions.
    pub fn invalidate_all(&mut self) {
        if let Some(db) = self.db.as_mut() {
            let stats = db.stats;
            *db = QueryDb::new();
            db.stats = stats;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;

    fn lower(src: &str) -> Module {
        let unit = parse_and_check("t.mh", src).expect("valid");
        lower_program(&unit.program, &unit.signatures)
    }

    const SRC: &str = "fn exchange() { MPI_Barrier(); }
         fn main() {
             MPI_Init();
             if (rank() == 0) { exchange(); }
             MPI_Finalize();
         }";

    #[test]
    fn sessions_agree_and_record_timings() {
        let m = lower(SRC);
        let baseline = AnalysisSession::builder()
            .options(AnalysisOptions::default())
            .build()
            .check_module(&m);
        let mut s = AnalysisSession::builder().build();
        let new = s.check_module(&m);
        assert_eq!(format!("{baseline:?}"), format!("{new:?}"));
        assert!(s.timings().unwrap().total > std::time::Duration::ZERO);
    }

    #[test]
    fn session_deterministic_across_widths() {
        let m = lower(SRC);
        let mut s1 = AnalysisSession::builder()
            .jobs(1)
            .deterministic(true)
            .build();
        let mut s4 = AnalysisSession::builder()
            .jobs(4)
            .deterministic(true)
            .build();
        assert_eq!(
            format!("{:?}", s1.check_module(&m)),
            format!("{:?}", s4.check_module(&m))
        );
    }

    #[test]
    fn incremental_warm_check_hits_cache_and_matches_cold() {
        let m = lower(SRC);
        let mut warm = AnalysisSession::builder().incremental(true).build();
        let cold_report = AnalysisSession::builder().build().check_module(&m);
        let first = warm.check_module(&m);
        assert_eq!(format!("{first:?}"), format!("{cold_report:?}"));
        let misses = warm.query_stats().pw_misses;
        assert!(misses > 0);
        // Unedited re-check: everything green, zero new misses.
        let second = warm.check_module(&m);
        assert_eq!(format!("{second:?}"), format!("{cold_report:?}"));
        assert_eq!(warm.query_stats().pw_misses, misses);
        assert!(warm.query_stats().pw_hits > 0);
        assert!(warm.query_stats().cfg_hits > 0);
    }

    #[test]
    fn incremental_edit_invalidate_matches_cold() {
        let m = lower(SRC);
        let mut warm = AnalysisSession::builder().incremental(true).build();
        warm.check_module(&m);
        // Edit `main` (different structure). exchange stays cached.
        let m2 = lower(
            "fn exchange() { MPI_Barrier(); }
             fn main() {
                 MPI_Init();
                 if (rank() > 1) { exchange(); } else { exchange(); }
                 MPI_Finalize();
             }",
        );
        warm.mark_edited("main");
        let warm_report = warm.check_module(&m2);
        let cold_report = AnalysisSession::builder().build().check_module(&m2);
        assert_eq!(format!("{warm_report:?}"), format!("{cold_report:?}"));
    }

    /// Edit-soak for the delta-propagation queries: after an edit to one
    /// function, the pw and site-context queries must miss for exactly
    /// that function and keep serving every other function from cache.
    #[test]
    fn edit_invalidates_exactly_the_dirty_function() {
        let src_v1 = "fn left() { MPI_Barrier(); }
             fn right() { MPI_Barrier(); }
             fn main() {
                 MPI_Init();
                 left();
                 right();
                 MPI_Finalize();
             }";
        // `right` structurally edited; `left` and `main` untouched.
        let src_v2 = "fn left() { MPI_Barrier(); }
             fn right() { MPI_Barrier(); MPI_Barrier(); }
             fn main() {
                 MPI_Init();
                 left();
                 right();
                 MPI_Finalize();
             }";
        let m1 = lower(src_v1);
        let m2 = lower(src_v2);
        let mut s = AnalysisSession::builder().incremental(true).build();
        s.check_module(&m1);
        let cold = s.query_stats();
        // All three functions are analyzed in one context each.
        assert_eq!(cold.pw_misses, 3);
        assert_eq!(cold.site_misses, 3);
        // Unedited soak rounds: pure hits, zero new misses.
        for _ in 0..3 {
            s.check_module(&m1);
        }
        let soaked = s.query_stats();
        assert_eq!(soaked.pw_misses, cold.pw_misses);
        assert_eq!(soaked.site_misses, cold.site_misses);
        assert_eq!(soaked.pw_hits, cold.pw_hits + 3 * 3);
        assert_eq!(soaked.site_hits, cold.site_hits + 3 * 3);
        // Edit exactly one function: exactly one pw miss and one
        // site-context miss; the other two functions stay green.
        s.mark_edited("right");
        let edited = s.check_module(&m2);
        let after = s.query_stats();
        assert_eq!(after.pw_misses, soaked.pw_misses + 1);
        assert_eq!(after.site_misses, soaked.site_misses + 1);
        assert_eq!(after.pw_hits, soaked.pw_hits + 2);
        assert_eq!(after.site_hits, soaked.site_hits + 2);
        // And the warm result is byte-identical to a cold analysis.
        let cold_report = AnalysisSession::builder().build().check_module(&m2);
        assert_eq!(format!("{edited:?}"), format!("{cold_report:?}"));
    }

    /// Module-memo widening: an edit touching no communicator, request
    /// or p2p instruction anywhere in the module reuses the module-wide
    /// tables wholesale — and the cached p2p core rematerializes with
    /// live spans even though the edit moved the suspect code.
    #[test]
    fn module_memo_reuses_tables_across_irrelevant_edits() {
        let body = "fn main() {
                 MPI_Init();
                 let peer = size() - 1 - rank();
                 let v = MPI_Recv(peer, 7);
                 MPI_Send(1, peer, 7);
                 compute();
                 MPI_Finalize();
             }";
        let m1 = lower(&format!("fn compute() {{ let x = 1; }}\n{body}"));
        // `compute` grows: its structure changes and `main` moves within
        // the document, but no comm/request/p2p input changes.
        let m2 = lower(&format!(
            "fn compute() {{ let x = 1; let y = x + 1; }}\n{body}"
        ));
        let mut s = AnalysisSession::builder().incremental(true).build();
        let first = s.check_module(&m1);
        assert_eq!(
            first.count(crate::report::WarningKind::P2pOrder),
            1,
            "{:#?}",
            first.warnings
        );
        let cold = s.query_stats();
        assert_eq!(cold.comm_misses, 1);
        assert_eq!(cold.req_misses, 1);
        assert_eq!(cold.p2p_misses, 1);
        // Unedited warm re-check: pure hits.
        s.check_module(&m1);
        let warm = s.query_stats();
        assert_eq!(warm.comm_hits, cold.comm_hits + 1);
        assert_eq!(warm.req_hits, cold.req_hits + 1);
        assert_eq!(warm.p2p_hits, cold.p2p_hits + 1);
        assert_eq!(warm.p2p_misses, cold.p2p_misses);
        // Edit only `compute`: every module table stays green.
        s.mark_edited("compute");
        let edited = s.check_module(&m2);
        let after = s.query_stats();
        assert_eq!(after.comm_misses, warm.comm_misses);
        assert_eq!(after.req_misses, warm.req_misses);
        assert_eq!(after.p2p_misses, warm.p2p_misses);
        assert_eq!(after.p2p_hits, warm.p2p_hits + 1);
        // Byte-identical to cold — in particular the cached p2p
        // warning's span must track the moved receive.
        let cold_report = AnalysisSession::builder().build().check_module(&m2);
        assert_eq!(format!("{edited:?}"), format!("{cold_report:?}"));
    }

    /// A call-graph edit that changes only *reachability* must miss the
    /// p2p cache: an unreachable helper's sends neither warn nor balance
    /// reachable receives.
    #[test]
    fn module_memo_p2p_key_covers_reachability() {
        let helper = "fn helper() { MPI_Send(1, 0, 5); }";
        let m1 = lower(&format!(
            "{helper}\nfn main() {{ MPI_Init(); helper(); MPI_Finalize(); }}"
        ));
        let m2 = lower(&format!(
            "{helper}\nfn main() {{ MPI_Init(); MPI_Finalize(); }}"
        ));
        let mut s = AnalysisSession::builder().incremental(true).build();
        let first = s.check_module(&m1);
        assert_eq!(first.count(crate::report::WarningKind::UnmatchedP2p), 1);
        s.mark_edited("main");
        let edited = s.check_module(&m2);
        assert!(edited.is_clean(), "{:#?}", edited.warnings);
        assert_eq!(s.query_stats().p2p_misses, 2, "reachability is keyed");
        let cold_report = AnalysisSession::builder().build().check_module(&m2);
        assert_eq!(format!("{edited:?}"), format!("{cold_report:?}"));
    }

    /// The ablation path (`module_memo(false)`) recomputes the tables
    /// every check and stays byte-identical.
    #[test]
    fn module_memo_off_matches_on() {
        let m = lower(
            "fn main() {
                 MPI_Init();
                 let peer = size() - 1 - rank();
                 let v = MPI_Recv(peer, 7);
                 MPI_Send(1, peer, 7);
                 MPI_Finalize();
             }",
        );
        let mut on = AnalysisSession::builder().incremental(true).build();
        let mut off = AnalysisSession::builder()
            .incremental(true)
            .module_memo(false)
            .build();
        for _ in 0..2 {
            assert_eq!(
                format!("{:?}", on.check_module(&m)),
                format!("{:?}", off.check_module(&m))
            );
        }
        assert_eq!(off.query_stats().comm_hits, 0);
        assert_eq!(off.query_stats().p2p_hits, 0);
        assert!(on.query_stats().p2p_hits > 0);
    }

    #[test]
    fn check_function_filters_and_rejects_unknown() {
        let m = lower(SRC);
        let mut s = AnalysisSession::builder().build();
        assert!(s.check_function(&m, "nope").is_none());
        let main_warnings = s.check_function(&m, "main").unwrap();
        assert!(main_warnings.iter().all(|w| w.func == "main"));
        assert!(!main_warnings.is_empty());
    }

    #[test]
    fn invalidate_all_forces_recompute() {
        let m = lower(SRC);
        let mut s = AnalysisSession::builder().incremental(true).build();
        s.check_module(&m);
        let misses = s.query_stats().pw_misses;
        s.invalidate_all();
        s.check_module(&m);
        assert!(s.query_stats().pw_misses > misses);
    }
}
