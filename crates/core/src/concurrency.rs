//! Phase 2 — "any two collective executions are ordered sequentially"
//! (paper §2, property 2).
//!
//! Two nodes `n1`, `n2` are in *concurrent monothreaded regions* when
//! `pw[n1] = w·S_j·u` and `pw[n2] = w·S_k·v` with `j ≠ k`: the regions
//! share the parallel phase `w` (same barrier count since the fork) but
//! are distinct single-threaded regions, so two different threads may
//! execute them simultaneously — the order of their collectives becomes
//! schedule-dependent. Such region pairs go to the set `S_cc` and get a
//! dynamic concurrency counter.
//!
//! Extension (documented in DESIGN.md): a collective-bearing
//! monothreaded region lying on a CFG cycle with no barrier on the cycle
//! is concurrent *with itself* across iterations; we flag it with
//! [`WarningKind::SelfConcurrentRegion`] and instrument it the same way.
//!
//! **Per-communicator generalization**: the order of two collectives
//! only matters when they can meet in the *same* matching space — the
//! same communicator class. Concurrent monothreaded regions issuing
//! collectives on communicators that cannot alias (or mixing
//! point-to-point with collectives) are *legal* under
//! `MPI_THREAD_MULTIPLE`; they produce no warning, but the phase
//! records that `MPI_THREAD_MULTIPLE` is required, which feeds the
//! thread-level adequacy check.

use crate::comm::CommId;
use crate::facts::AnalysisCx;
use crate::intern::WordId;
use crate::report::{StaticWarning, WarningKind};
use parcoach_front::ast::ThreadLevel;
use parcoach_front::span::Span;
use parcoach_ir::func::FuncIr;
use parcoach_ir::instr::{BlockKind, Directive, Instr, MpiIr, Terminator};
use parcoach_ir::types::{BlockId, RegionId};
use std::collections::HashMap;

/// Phase-2 result for one function.
#[derive(Debug, Clone, Default)]
pub struct ConcurrencyResult {
    /// Warnings found.
    pub warnings: Vec<StaticWarning>,
    /// Monothreaded regions to instrument with concurrency counters,
    /// with their cluster site id (regions that may run concurrently with
    /// each other share a site).
    pub sites: Vec<(RegionId, u32)>,
    /// Collective blocks involved (suspects for `CC` instrumentation).
    pub suspects: Vec<BlockId>,
    /// The phase proved two threads may be inside MPI simultaneously on
    /// unrelated communicators (legal, but only under
    /// `MPI_THREAD_MULTIPLE`).
    pub required_level: Option<ThreadLevel>,
}

/// What kind of MPI operation a region node performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    /// A collective on a communicator class.
    Coll(CommId),
    /// A point-to-point operation (send/recv).
    P2p,
}

/// An MPI node together with its innermost monothreaded region.
struct RegionColl {
    block: BlockId,
    span: Span,
    name: &'static str,
    class: OpClass,
    /// Interned entry word of the block (resolved via the module arena).
    word: WordId,
    /// Index in the word of the innermost S token.
    s_pos: usize,
    region: RegionId,
}

/// Run phase 2 on one function, reading words, loops and communicator
/// resolutions from the fact store.
pub fn check_concurrency(cx: &AnalysisCx, fidx: usize) -> ConcurrencyResult {
    let f = &cx.module.funcs[fidx];
    let facts = &cx.funcs[fidx];
    let comms = cx.comms_of(fidx);
    let table = &cx.comms.table;
    let mut out = ConcurrencyResult::default();

    // Collect MPI nodes in monothreaded regions (words ending in S
    // after stripping; phase 1 already handled the rest).
    let mut colls: Vec<RegionColl> = Vec::new();
    let mut mpi_blocks = f.collective_blocks();
    for b in f.p2p_blocks() {
        if !mpi_blocks.contains(&b) {
            mpi_blocks.push(b);
        }
    }
    for (bid, b) in f.iter_blocks() {
        let has_mgmt = b.instrs.iter().any(|i| match i {
            Instr::Mpi { op, .. } => op.comm_mgmt().is_some(),
            _ => false,
        });
        if has_mgmt && !mpi_blocks.contains(&bid) {
            mpi_blocks.push(bid);
        }
    }
    mpi_blocks.sort_unstable();
    for bid in mpi_blocks {
        // None covers unreachable blocks and conflict states alike —
        // exactly the blocks the old `word_at` lookup skipped.
        let Some(wid) = facts.words[bid.index()] else {
            continue;
        };
        let w = cx.words.get(wid);
        // Find the innermost S token (last S in the word).
        let Some(s_pos) = w.tokens().iter().rposition(|t| t.is_s()) else {
            continue;
        };
        // Only S-terminated (monothreaded) contexts concern this phase;
        // tokens after the S would be P (nested) — skip those.
        if w.tokens()[s_pos + 1..].iter().any(|t| t.is_p()) {
            continue;
        }
        let region = w.tokens()[s_pos].region().expect("S token has region");
        for i in &f.block(bid).instrs {
            let Instr::Mpi { op, span, .. } = i else {
                continue;
            };
            let (name, class) = match op {
                MpiIr::Collective { kind, comm, .. } => {
                    (kind.mpi_name(), OpClass::Coll(comms.of_operand(*comm)))
                }
                MpiIr::Send { .. } => ("MPI_Send", OpClass::P2p),
                MpiIr::Recv { .. } => ("MPI_Recv", OpClass::P2p),
                // Non-blocking posts and completions live in the p2p
                // matching space: concurrent regions driving them (or a
                // request posted in one region and waited in a
                // concurrent sibling) are legal under
                // MPI_THREAD_MULTIPLE — no ordering warning, but the
                // level demand is recorded below.
                MpiIr::Isend { .. } => ("MPI_Isend", OpClass::P2p),
                MpiIr::Irecv { .. } => ("MPI_Irecv", OpClass::P2p),
                MpiIr::Wait { .. } => ("MPI_Wait", OpClass::P2p),
                MpiIr::Waitall { .. } => ("MPI_Waitall", OpClass::P2p),
                // Comm management synchronizes the *parent* communicator.
                _ => match op.comm_mgmt() {
                    Some((name, parent)) => (name, OpClass::Coll(comms.of_operand(Some(parent)))),
                    None => continue,
                },
            };
            colls.push(RegionColl {
                block: bid,
                span: *span,
                name,
                class,
                word: wid,
                s_pos,
                region,
            });
        }
    }

    // Pairwise concurrent-region test on the words.
    // Union-find over regions to build instrumentation clusters.
    let mut parent: HashMap<RegionId, RegionId> = HashMap::new();
    fn find(parent: &mut HashMap<RegionId, RegionId>, r: RegionId) -> RegionId {
        let p = *parent.entry(r).or_insert(r);
        if p == r {
            r
        } else {
            let root = find(parent, p);
            parent.insert(r, root);
            root
        }
    }
    let mut concurrent_regions: Vec<RegionId> = Vec::new();

    for i in 0..colls.len() {
        for j in (i + 1)..colls.len() {
            let (a, b) = (&colls[i], &colls[j]);
            if a.region == b.region {
                continue; // same region: ordered by its single executor
            }
            let wa = cx.words.get(a.word);
            let wb = cx.words.get(b.word);
            let lcp = wa.common_prefix_len(wb);
            // Concurrent iff the first differing tokens are both S tokens
            // of different regions — i.e. pw = w·S_j·u vs w·S_k·v.
            let ta = wa.tokens().get(lcp);
            let tb = wb.tokens().get(lcp);
            let concurrent = match (ta, tb) {
                (Some(x), Some(y)) if x.is_s() && y.is_s() => {
                    // j ≠ k guaranteed since the tokens differ at lcp.
                    lcp <= a.s_pos && lcp <= b.s_pos
                }
                _ => false,
            };
            if concurrent {
                match (a.class, b.class) {
                    (OpClass::Coll(ca), OpClass::Coll(cb)) if ca.may_alias(cb) => {
                        let ra = find(&mut parent, a.region);
                        let rb = find(&mut parent, b.region);
                        parent.insert(ra, rb);
                        concurrent_regions.push(a.region);
                        concurrent_regions.push(b.region);
                        let comm_note = if ca.is_world() && cb.is_world() {
                            String::new()
                        } else {
                            format!(" on {}", table.label(ca))
                        };
                        out.warnings.push(StaticWarning {
                            kind: WarningKind::ConcurrentCollectives,
                            func: f.name.clone(),
                            message: format!(
                                "{} and {} are in concurrent monothreaded regions{comm_note} \
                                 (words {wa} / {wb}); their order is schedule-dependent",
                                a.name, b.name
                            ),
                            span: a.span,
                            related: vec![(b.span, format!("concurrent {} here", b.name))],
                        });
                        out.suspects.push(a.block);
                        out.suspects.push(b.block);
                    }
                    // Unrelated matching spaces (different communicator
                    // classes, or point-to-point involved): a legal
                    // MPI_THREAD_MULTIPLE pattern. No warning, but two
                    // threads may now be inside MPI simultaneously.
                    _ => out.required_level = Some(ThreadLevel::Multiple),
                }
            }
        }
    }

    // Self-concurrency: region begin block on a cycle without a barrier
    // on that cycle. Only meaningful for nowait-style regions (with a
    // barrier on the cycle, iterations are phase-separated). A non-empty
    // `colls` implies the function has MPI nodes, so its CFG facts
    // (loops included) exist.
    for c in &colls {
        let Some(begin) = f.region_begin_block(c.region) else {
            continue;
        };
        for l in facts.cfg().loops.loops_containing(begin) {
            let has_barrier = l.blocks.iter().any(|&b| {
                matches!(
                    f.block(b).kind,
                    BlockKind::Directive(Directive::Barrier { .. })
                )
            });
            if !has_barrier {
                if c.class == OpClass::P2p {
                    // Overlapping iterations of a p2p region are legal
                    // under MPI_THREAD_MULTIPLE (matching is by tag, not
                    // by order across threads).
                    out.required_level = Some(ThreadLevel::Multiple);
                    break;
                }
                concurrent_regions.push(c.region);
                // Union with itself just materializes the cluster.
                let r = find(&mut parent, c.region);
                parent.insert(r, r);
                out.warnings.push(StaticWarning {
                    kind: WarningKind::SelfConcurrentRegion,
                    func: f.name.clone(),
                    message: format!(
                        "{} is in a monothreaded region inside a loop with no \
                         barrier on the cycle; iterations of the region may \
                         overlap",
                        c.name
                    ),
                    span: c.span,
                    related: vec![(f.block(l.header).span, "loop here".into())],
                });
                out.suspects.push(c.block);
                break; // one warning per collective is enough
            }
        }
    }

    // Materialize instrumentation sites: one per concurrent region, site
    // id = cluster representative (dense renumbering).
    concurrent_regions.sort_unstable();
    concurrent_regions.dedup();
    let mut site_ids: HashMap<RegionId, u32> = HashMap::new();
    let mut next_site = 0u32;
    for &r in &concurrent_regions {
        let root = find(&mut parent, r);
        let site = *site_ids.entry(root).or_insert_with(|| {
            let s = next_site;
            next_site += 1;
            s
        });
        out.sites.push((r, site));
    }
    out.suspects.sort_unstable();
    out.suspects.dedup();
    out
}

/// The body-entry block of a conditional region (then-edge of its begin
/// directive block). Used by the instrumentation pass.
pub fn region_body_entry(f: &FuncIr, r: RegionId) -> Option<BlockId> {
    let begin = f.region_begin_block(r)?;
    match &f.block(begin).term {
        Terminator::Branch { then_bb, .. } => Some(*then_bb),
        // Unconditional regions (parallel/critical/workshare) enter
        // directly.
        Terminator::Goto(t) => Some(*t),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pw::InitialContext;
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;

    fn run(src: &str) -> ConcurrencyResult {
        let unit = parse_and_check("t.mh", src).expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        let cx = AnalysisCx::build(&m, InitialContext::Sequential, parcoach_pool::global());
        check_concurrency(&cx, m.by_name["main"])
    }

    #[test]
    fn nowait_singles_are_concurrent() {
        let r = run("fn main() {
                parallel {
                    single nowait { MPI_Barrier(); }
                    single { MPI_Allreduce(1, SUM); }
                }
            }");
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::ConcurrentCollectives);
        assert_eq!(r.suspects.len(), 2);
        // Both regions share one cluster site.
        assert_eq!(r.sites.len(), 2);
        assert_eq!(r.sites[0].1, r.sites[1].1);
    }

    #[test]
    fn barrier_separated_singles_are_ordered() {
        let r = run("fn main() {
                parallel {
                    single { MPI_Barrier(); }
                    single { MPI_Allreduce(1, SUM); }
                }
            }");
        assert!(
            r.warnings.is_empty(),
            "implicit barrier orders the singles: {:?}",
            r.warnings
        );
    }

    #[test]
    fn explicit_barrier_after_nowait_orders() {
        let r = run("fn main() {
                parallel {
                    single nowait { MPI_Barrier(); }
                    barrier;
                    single { MPI_Allreduce(1, SUM); }
                }
            }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn sections_with_collectives_concurrent() {
        let r = run("fn main() {
                parallel {
                    sections {
                        section { MPI_Barrier(); }
                        section { MPI_Allreduce(1, SUM); }
                    }
                }
            }");
        assert_eq!(r.warnings.len(), 1);
        assert_eq!(r.warnings[0].kind, WarningKind::ConcurrentCollectives);
    }

    #[test]
    fn single_and_master_concurrent() {
        // master has no implicit barrier; a nowait single before it can
        // overlap.
        let r = run("fn main() {
                parallel {
                    single nowait { MPI_Barrier(); }
                    master { MPI_Barrier(); }
                }
            }");
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
    }

    #[test]
    fn same_region_not_self_pair() {
        let r = run("fn main() {
                parallel {
                    single { MPI_Barrier(); MPI_Allreduce(1, SUM); }
                }
            }");
        assert!(
            r.warnings.is_empty(),
            "collectives in the same region are ordered: {:?}",
            r.warnings
        );
    }

    #[test]
    fn nowait_single_in_loop_self_concurrent() {
        let r = run("fn main() {
                parallel {
                    for (i in 0..10) {
                        single nowait { MPI_Allreduce(1, SUM); }
                    }
                }
            }");
        assert!(
            r.warnings
                .iter()
                .any(|w| w.kind == WarningKind::SelfConcurrentRegion),
            "{:?}",
            r.warnings
        );
        assert!(!r.sites.is_empty());
    }

    #[test]
    fn single_with_barrier_in_loop_not_self_concurrent() {
        let r = run("fn main() {
                parallel {
                    for (i in 0..10) {
                        single { MPI_Allreduce(1, SUM); }
                    }
                }
            }");
        assert!(
            !r.warnings
                .iter()
                .any(|w| w.kind == WarningKind::SelfConcurrentRegion),
            "implicit barrier separates iterations: {:?}",
            r.warnings
        );
    }

    #[test]
    fn different_parallel_regions_not_concurrent() {
        // Two singles in two *successive* parallel regions: the join
        // between regions orders them.
        let r = run("fn main() {
                parallel { single nowait { MPI_Barrier(); } }
                parallel { single nowait { MPI_Allreduce(1, SUM); } }
            }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn concurrent_regions_on_different_comms_legal_under_multiple() {
        // The MPIxThreads pattern: one section drives COMM_WORLD, the
        // other a duplicated communicator — unrelated matching spaces,
        // so no ordering warning, but MPI_THREAD_MULTIPLE is required.
        let r = run("fn main() {
                let c = MPI_Comm_dup(MPI_COMM_WORLD);
                parallel {
                    sections {
                        section { MPI_Barrier(); }
                        section { MPI_Barrier(c); }
                    }
                }
            }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
        assert!(r.sites.is_empty());
        assert_eq!(r.required_level, Some(ThreadLevel::Multiple));
    }

    #[test]
    fn concurrent_regions_same_comm_class_still_flagged() {
        let r = run("fn main() {
                let c = MPI_Comm_dup(MPI_COMM_WORLD);
                parallel {
                    sections {
                        section { MPI_Barrier(c); }
                        section { let x = MPI_Allreduce(1, SUM, c); }
                    }
                }
            }");
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::ConcurrentCollectives);
    }

    #[test]
    fn concurrent_p2p_sections_require_multiple_only() {
        let r = run("fn main() {
                parallel {
                    sections {
                        section { MPI_Send(1.0, 0, 10); }
                        section { let v = MPI_Recv(0, 10); }
                    }
                }
            }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
        assert_eq!(r.required_level, Some(ThreadLevel::Multiple));
    }

    #[test]
    fn deep_nesting_concurrent_with_sibling() {
        // single S1 { parallel { single S3 { coll } } } vs sibling nowait
        // single S2 { coll }: words P0·S1·P2·S3 vs P0·S2 → concurrent.
        let r = run("fn main() {
                parallel {
                    single nowait {
                        parallel {
                            single { MPI_Barrier(); }
                        }
                    }
                    single { MPI_Allreduce(1, SUM); }
                }
            }");
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
    }
}
