//! Static communicator abstraction: a small interned communicator table
//! plus a per-register resolution pass.
//!
//! The analysis does not know the *runtime* communicator objects, but it
//! can distinguish their *creation sites*: `MPI_COMM_WORLD`, each
//! `MPI_Comm_split(...)` call site and each `MPI_Comm_dup(...)` call
//! site form one static communicator class. Every rank executing the
//! same (SPMD) program creates its communicators at the same sites, so
//! two collectives resolve to the same class exactly when they can meet
//! at run time — subcommunicators created by one split site match among
//! themselves and never against another site's. Handles flowing through
//! control-flow merges or function boundaries degrade to
//! [`CommId::UNKNOWN`], which conservatively groups with everything.

use parcoach_front::ast::Type;
use parcoach_front::span::Span;
use parcoach_ir::func::{FuncIr, Module};
use parcoach_ir::instr::{Instr, MpiIr};
use parcoach_ir::types::Value;
use std::collections::HashMap;
use std::fmt;

/// An interned static communicator class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommId(pub u32);

impl CommId {
    /// `MPI_COMM_WORLD`.
    pub const WORLD: CommId = CommId(0);
    /// A handle the analysis could not resolve to one creation site
    /// (merged control flow, function parameter, call result).
    pub const UNKNOWN: CommId = CommId(1);

    /// True for the world communicator.
    pub fn is_world(self) -> bool {
        self == CommId::WORLD
    }

    /// True for the unresolved class.
    pub fn is_unknown(self) -> bool {
        self == CommId::UNKNOWN
    }

    /// Can collectives on `self` and `other` meet at run time? Equal
    /// classes always can; the unknown class conservatively meets
    /// everything.
    pub fn may_alias(self, other: CommId) -> bool {
        self == other || self.is_unknown() || other.is_unknown()
    }
}

/// How a static communicator class was created.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommDef {
    /// `MPI_COMM_WORLD`.
    World,
    /// Unresolvable handle.
    Unknown,
    /// One `MPI_Comm_split` call site (keyed by source span).
    Split(Span),
    /// One `MPI_Comm_dup` call site (keyed by source span).
    Dup(Span),
}

/// The module-wide interned communicator table.
#[derive(Debug, Clone, Default)]
pub struct CommTable {
    defs: Vec<CommDef>,
    by_def: HashMap<CommDef, CommId>,
}

impl CommTable {
    fn new() -> CommTable {
        let mut t = CommTable::default();
        let w = t.intern(CommDef::World);
        let u = t.intern(CommDef::Unknown);
        debug_assert_eq!(w, CommId::WORLD);
        debug_assert_eq!(u, CommId::UNKNOWN);
        t
    }

    /// Intern a definition, returning its stable id.
    pub fn intern(&mut self, def: CommDef) -> CommId {
        if let Some(&id) = self.by_def.get(&def) {
            return id;
        }
        let id = CommId(self.defs.len() as u32);
        self.defs.push(def);
        self.by_def.insert(def, id);
        id
    }

    /// The definition of an interned id.
    pub fn def(&self, id: CommId) -> CommDef {
        self.defs[id.0 as usize]
    }

    /// Number of interned classes (including world and unknown).
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True when only the two built-in classes exist.
    pub fn is_empty(&self) -> bool {
        self.defs.len() <= 2
    }

    /// Human label for warnings: `COMM_WORLD`, `comm split at <lo>`, ….
    pub fn label(&self, id: CommId) -> CommLabel<'_> {
        CommLabel { table: self, id }
    }
}

/// Display adapter for communicator labels in warnings.
pub struct CommLabel<'a> {
    table: &'a CommTable,
    id: CommId,
}

impl fmt::Display for CommLabel<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.table.def(self.id) {
            CommDef::World => write!(f, "MPI_COMM_WORLD"),
            CommDef::Unknown => write!(f, "an unresolved communicator"),
            CommDef::Split(_) => write!(f, "split communicator #{}", self.id.0),
            CommDef::Dup(_) => write!(f, "duplicated communicator #{}", self.id.0),
        }
    }
}

/// Per-register communicator lattice value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegComm {
    /// Not yet assigned (bottom).
    Bottom,
    /// Exactly this class along every def.
    One(CommId),
    /// Multiple classes merge here (top → [`CommId::UNKNOWN`]).
    Many,
}

impl RegComm {
    fn join(self, other: CommId) -> RegComm {
        match self {
            RegComm::Bottom => RegComm::One(other),
            RegComm::One(c) if c == other => self,
            _ => RegComm::Many,
        }
    }
}

/// Resolved communicator classes for one function's registers.
#[derive(Debug, Clone, Default)]
pub struct FuncComms {
    /// Class per register index; None for non-comm registers.
    per_reg: Vec<Option<CommId>>,
}

impl FuncComms {
    /// The class a comm-typed operand resolves to (None operand = world).
    pub fn of_operand(&self, v: Option<Value>) -> CommId {
        match v {
            None => CommId::WORLD,
            Some(Value::Reg(r)) => self
                .per_reg
                .get(r.index())
                .copied()
                .flatten()
                .unwrap_or(CommId::UNKNOWN),
            // Comm operands are never constants (sema enforces the type).
            Some(Value::Const(_)) => CommId::UNKNOWN,
        }
    }
}

/// Module-wide result: the interned table + per-function resolution.
#[derive(Debug, Clone, Default)]
pub struct ModuleComms {
    /// The interned table.
    pub table: CommTable,
    /// Per function name: register resolution.
    pub per_func: HashMap<String, FuncComms>,
}

/// Shared empty resolution for functions absent from the map.
static EMPTY_FUNC_COMMS: FuncComms = FuncComms {
    per_reg: Vec::new(),
};

impl ModuleComms {
    /// Borrowed resolution for one function (a shared empty resolution
    /// when absent) — the analysis phases read this through
    /// [`crate::facts::AnalysisCx`].
    pub fn func(&self, name: &str) -> &FuncComms {
        self.per_func.get(name).unwrap_or(&EMPTY_FUNC_COMMS)
    }

    /// Resolve a comm operand of an instruction in `func`.
    pub fn resolve(&self, func: &str, v: Option<Value>) -> CommId {
        match self.per_func.get(func) {
            Some(fc) => fc.of_operand(v),
            None => match v {
                None => CommId::WORLD,
                Some(_) => CommId::UNKNOWN,
            },
        }
    }
}

/// Compute the communicator table and per-function register resolution
/// for a whole module. Deterministic: functions are visited in module
/// order and instructions in block order, so interned ids are stable.
pub fn compute_comms(m: &Module) -> ModuleComms {
    let mut table = CommTable::new();
    let mut per_func = HashMap::new();
    for f in &m.funcs {
        per_func.insert(f.name.clone(), resolve_func(f, &mut table));
    }
    ModuleComms { table, per_func }
}

/// Flow-insensitive per-register fixpoint over one function.
///
/// Registers are not SSA: a register assigned communicators from two
/// different creation sites (or any non-MPI definition, e.g. a call
/// result or parameter) degrades to [`CommId::UNKNOWN`]. Copy chains of
/// comm-typed registers propagate; the loop iterates until stable
/// (bounded by the register count, in practice two rounds).
fn resolve_func(f: &FuncIr, table: &mut CommTable) -> FuncComms {
    let n = f.reg_types.len();
    // Fast path: a function with no comm-typed register can neither
    // create a communicator class (creation sites define comm-typed
    // destinations) nor carry one — the fixpoint below would do one
    // full instruction walk only to conclude exactly this.
    if !f.reg_types.contains(&Type::Comm) {
        return FuncComms {
            per_reg: vec![None; n],
        };
    }
    let mut state: Vec<RegComm> = (0..n)
        .map(|i| {
            if f.reg_types[i] == Type::Comm {
                RegComm::Bottom
            } else {
                RegComm::Many // non-comm registers are never queried
            }
        })
        .collect();
    // Comm-typed parameters come from unknown callers.
    for &p in &f.params {
        if f.reg_types[p.index()] == Type::Comm {
            state[p.index()] = RegComm::Many;
        }
    }
    loop {
        let mut changed = false;
        let set = |state: &mut Vec<RegComm>, r: parcoach_ir::types::Reg, c: CommId| {
            let next = state[r.index()].join(c);
            if next != state[r.index()] {
                state[r.index()] = next;
                true
            } else {
                false
            }
        };
        for b in &f.blocks {
            for i in &b.instrs {
                match i {
                    Instr::Mpi {
                        dest: Some(d), op, ..
                    } => {
                        let def = match (op, i.span()) {
                            (MpiIr::CommWorld, _) => Some(CommDef::World),
                            (MpiIr::CommSplit { .. }, Some(sp)) => Some(CommDef::Split(sp)),
                            (MpiIr::CommDup { .. }, Some(sp)) => Some(CommDef::Dup(sp)),
                            _ => None,
                        };
                        if let Some(def) = def {
                            let id = table.intern(def);
                            changed |= set(&mut state, *d, id);
                        }
                    }
                    Instr::Copy {
                        dest,
                        src: Value::Reg(s),
                    } if f.reg_types[dest.index()] == Type::Comm => match state[s.index()] {
                        RegComm::Bottom => {}
                        RegComm::One(c) => changed |= set(&mut state, *dest, c),
                        RegComm::Many => {
                            changed |= set(&mut state, *dest, CommId::UNKNOWN);
                            if state[dest.index()] != RegComm::Many {
                                state[dest.index()] = RegComm::Many;
                            }
                        }
                    },
                    // Any other definition of a comm-typed register
                    // (call result, constant copy) is unresolvable.
                    _ => {
                        if let Some(d) = i.dest() {
                            if f.reg_types[d.index()] == Type::Comm
                                && !matches!(
                                    i,
                                    Instr::Mpi { .. }
                                        | Instr::Copy {
                                            src: Value::Reg(_),
                                            ..
                                        }
                                )
                                && state[d.index()] != RegComm::Many
                            {
                                state[d.index()] = RegComm::Many;
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    FuncComms {
        per_reg: (0..n)
            .map(|i| {
                if f.reg_types[i] != Type::Comm {
                    None
                } else {
                    Some(match state[i] {
                        RegComm::Bottom => CommId::UNKNOWN, // never assigned
                        RegComm::One(c) => c,
                        RegComm::Many => CommId::UNKNOWN,
                    })
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;

    fn comms(src: &str) -> (Module, ModuleComms) {
        let unit = parse_and_check("t.mh", src).expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        let c = compute_comms(&m);
        (m, c)
    }

    /// Comm classes of every collective in `main`, in program order.
    fn collective_comms(src: &str) -> Vec<CommId> {
        let (m, mc) = comms(src);
        let f = m.main().unwrap();
        let fc = mc.func("main");
        let mut out = Vec::new();
        for b in &f.blocks {
            for i in &b.instrs {
                if let Instr::Mpi {
                    op: MpiIr::Collective { comm, .. },
                    ..
                } = i
                {
                    out.push(fc.of_operand(*comm));
                }
            }
        }
        out
    }

    #[test]
    fn default_comm_is_world() {
        let ids = collective_comms("fn main() { MPI_Barrier(); }");
        assert_eq!(ids, vec![CommId::WORLD]);
    }

    #[test]
    fn explicit_world_is_world() {
        let ids = collective_comms("fn main() { MPI_Barrier(MPI_COMM_WORLD); }");
        assert_eq!(ids, vec![CommId::WORLD]);
    }

    #[test]
    fn split_sites_distinct() {
        let ids = collective_comms(
            "fn main() {
                let a = MPI_Comm_split(MPI_COMM_WORLD, 0, rank());
                let b = MPI_Comm_split(MPI_COMM_WORLD, 0, rank());
                MPI_Barrier(a);
                MPI_Barrier(b);
                MPI_Barrier();
            }",
        );
        assert_eq!(ids.len(), 3);
        assert_ne!(ids[0], ids[1], "two split sites are distinct classes");
        assert_eq!(ids[2], CommId::WORLD);
        assert!(!ids[0].may_alias(ids[1]));
    }

    #[test]
    fn dup_and_copy_propagate() {
        let ids = collective_comms(
            "fn main() {
                let c = MPI_Comm_dup(MPI_COMM_WORLD);
                let d = c;
                MPI_Barrier(c);
                MPI_Barrier(d);
            }",
        );
        assert_eq!(ids[0], ids[1], "copies keep the class");
        assert!(!ids[0].is_world());
        assert!(!ids[0].is_unknown());
    }

    #[test]
    fn merged_assignment_degrades_to_unknown() {
        let ids = collective_comms(
            "fn main() {
                let c = MPI_Comm_dup(MPI_COMM_WORLD);
                if (rank() == 0) { c = MPI_Comm_split(MPI_COMM_WORLD, 0, 0); }
                MPI_Barrier(c);
            }",
        );
        assert_eq!(ids, vec![CommId::UNKNOWN]);
        assert!(CommId::UNKNOWN.may_alias(CommId::WORLD));
    }

    #[test]
    fn labels_render() {
        let (_m, mc) = comms(
            "fn main() {
                let a = MPI_Comm_split(MPI_COMM_WORLD, 0, rank());
                MPI_Barrier(a);
            }",
        );
        assert_eq!(mc.table.label(CommId::WORLD).to_string(), "MPI_COMM_WORLD");
        let split = CommId(2);
        assert!(mc.table.label(split).to_string().contains("split"));
    }
}
