//! Static non-blocking-request abstraction: a small interned request
//! table plus a per-register resolution pass — the request-side sibling
//! of [`crate::comm`].
//!
//! Every `MPI_Isend` / `MPI_Irecv` call site forms one static **request
//! class**; in SPMD programs all ranks post their requests at the same
//! sites, so a `Wait` operand resolves to the class of the post that
//! produced it. Handles merged across control flow degrade to
//! [`ReqId::UNKNOWN`], which conservatively aliases everything. Request
//! handles cannot cross function boundaries in MiniHPC (no `request`
//! parameters or returns), so resolution is purely per-function.
//!
//! On top of the resolution the pass checks the request life-cycle:
//!
//! * **unwaited-request** — a post whose class no `MPI_Wait` /
//!   `MPI_Waitall` in the function can ever complete: the request
//!   leaks. A leaked isend leaves its message permanently buffered and
//!   a leaked irecv leaves its matching message unconsumed — both
//!   surface dynamically as a p2p epoch imbalance at the pre-finalize
//!   census, which is why the pipeline places the census whenever this
//!   warning fires.
//! * **wait-without-post** — a wait whose operand register is never
//!   assigned a request on any path (an IR-level invariant violation;
//!   unreachable from type-checked source, but kept so hand-built or
//!   transformed IR fails loudly instead of waiting on a null handle at
//!   run time).

use crate::report::{StaticWarning, WarningKind};
use parcoach_front::ast::Type;
use parcoach_front::span::Span;
use parcoach_ir::func::{FuncIr, Module};
use parcoach_ir::instr::{Instr, MpiIr};
use parcoach_ir::types::Value;
use std::collections::HashMap;

/// An interned static request class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(pub u32);

impl ReqId {
    /// A handle the analysis could not resolve to one post site
    /// (merged control flow).
    pub const UNKNOWN: ReqId = ReqId(0);

    /// True for the unresolved class.
    pub fn is_unknown(self) -> bool {
        self == ReqId::UNKNOWN
    }
}

/// How a static request class was created.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqDef {
    /// Unresolvable handle.
    Unknown,
    /// One `MPI_Isend` call site (keyed by source span).
    Isend(Span),
    /// One `MPI_Irecv` call site (keyed by source span).
    Irecv(Span),
}

/// The module-wide interned request table.
#[derive(Debug, Clone, Default)]
pub struct ReqTable {
    defs: Vec<ReqDef>,
    by_def: HashMap<ReqDef, ReqId>,
}

impl ReqTable {
    fn new() -> ReqTable {
        let mut t = ReqTable::default();
        let u = t.intern(ReqDef::Unknown);
        debug_assert_eq!(u, ReqId::UNKNOWN);
        t
    }

    /// Intern a definition, returning its stable id.
    pub fn intern(&mut self, def: ReqDef) -> ReqId {
        if let Some(&id) = self.by_def.get(&def) {
            return id;
        }
        let id = ReqId(self.defs.len() as u32);
        self.defs.push(def);
        self.by_def.insert(def, id);
        id
    }

    /// The definition of an interned id.
    pub fn def(&self, id: ReqId) -> ReqDef {
        self.defs[id.0 as usize]
    }

    /// Number of interned classes (including the unknown class).
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True when only the built-in unknown class exists.
    pub fn is_empty(&self) -> bool {
        self.defs.len() <= 1
    }
}

/// Per-register resolution of one request-typed register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqResolution {
    /// Never assigned a request on any path (wait-without-post).
    NeverPosted,
    /// Exactly this class along every def.
    One(ReqId),
    /// Multiple classes merge here.
    Unknown,
}

/// Per-register lattice value during the fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegReq {
    Bottom,
    One(ReqId),
    Many,
}

impl RegReq {
    fn join(self, other: ReqId) -> RegReq {
        match self {
            RegReq::Bottom => RegReq::One(other),
            RegReq::One(c) if c == other => self,
            _ => RegReq::Many,
        }
    }
}

/// Resolved request classes for one function's registers.
#[derive(Debug, Clone, Default)]
pub struct FuncRequests {
    /// Resolution per register index; None for non-request registers.
    per_reg: Vec<Option<ReqResolution>>,
}

impl FuncRequests {
    /// The resolution of a request-typed operand.
    pub fn of_operand(&self, v: Value) -> ReqResolution {
        match v {
            Value::Reg(r) => self
                .per_reg
                .get(r.index())
                .copied()
                .flatten()
                .unwrap_or(ReqResolution::Unknown),
            // Request operands are never constants (sema enforces the
            // type); a constant here is hand-built IR.
            Value::Const(_) => ReqResolution::Unknown,
        }
    }
}

/// Module-wide result: the interned table + per-function resolution.
#[derive(Debug, Clone, Default)]
pub struct ModuleRequests {
    /// The interned table.
    pub table: ReqTable,
    /// Per function name: register resolution.
    pub per_func: HashMap<String, FuncRequests>,
}

/// Shared empty resolution for functions absent from the map.
static EMPTY_FUNC_REQUESTS: FuncRequests = FuncRequests {
    per_reg: Vec::new(),
};

impl ModuleRequests {
    /// Borrowed resolution for one function (a shared empty resolution
    /// when absent) — the analysis phases read this through
    /// [`crate::facts::AnalysisCx`].
    pub fn func(&self, name: &str) -> &FuncRequests {
        self.per_func.get(name).unwrap_or(&EMPTY_FUNC_REQUESTS)
    }
}

/// Compute the request table and per-function register resolution for a
/// whole module. Deterministic: functions are visited in module order
/// and instructions in block order, so interned ids are stable.
pub fn compute_requests(m: &Module) -> ModuleRequests {
    let mut table = ReqTable::new();
    let mut per_func = HashMap::new();
    for f in &m.funcs {
        per_func.insert(f.name.clone(), resolve_func(f, &mut table));
    }
    ModuleRequests { table, per_func }
}

/// Flow-insensitive per-register fixpoint over one function, mirroring
/// [`crate::comm`]'s communicator resolution.
fn resolve_func(f: &FuncIr, table: &mut ReqTable) -> FuncRequests {
    let n = f.reg_types.len();
    // Fast path: a function with no request-typed register can neither
    // post a request (Isend/Irecv define request-typed destinations)
    // nor wait on one — skip the instruction-walking fixpoint.
    if !f.reg_types.contains(&Type::Request) {
        return FuncRequests {
            per_reg: vec![None; n],
        };
    }
    let mut state: Vec<RegReq> = (0..n)
        .map(|i| {
            if f.reg_types[i] == Type::Request {
                RegReq::Bottom
            } else {
                RegReq::Many // non-request registers are never queried
            }
        })
        .collect();
    // Request-typed parameters cannot exist in type-checked source, but
    // hand-built IR gets the conservative treatment.
    for &p in &f.params {
        if f.reg_types[p.index()] == Type::Request {
            state[p.index()] = RegReq::Many;
        }
    }
    loop {
        let mut changed = false;
        let set = |state: &mut Vec<RegReq>, r: parcoach_ir::types::Reg, c: ReqId| {
            let next = state[r.index()].join(c);
            if next != state[r.index()] {
                state[r.index()] = next;
                true
            } else {
                false
            }
        };
        for b in &f.blocks {
            for i in &b.instrs {
                match i {
                    Instr::Mpi {
                        dest: Some(d), op, ..
                    } => {
                        let def = match (op, i.span()) {
                            (MpiIr::Isend { .. }, Some(sp)) => Some(ReqDef::Isend(sp)),
                            (MpiIr::Irecv { .. }, Some(sp)) => Some(ReqDef::Irecv(sp)),
                            _ => None,
                        };
                        if let Some(def) = def {
                            let id = table.intern(def);
                            changed |= set(&mut state, *d, id);
                        }
                    }
                    Instr::Copy {
                        dest,
                        src: Value::Reg(s),
                    } if f.reg_types[dest.index()] == Type::Request => match state[s.index()] {
                        RegReq::Bottom => {}
                        RegReq::One(c) => changed |= set(&mut state, *dest, c),
                        RegReq::Many => {
                            if state[dest.index()] != RegReq::Many {
                                state[dest.index()] = RegReq::Many;
                                changed = true;
                            }
                        }
                    },
                    // Any other definition of a request-typed register
                    // is unresolvable.
                    _ => {
                        if let Some(d) = i.dest() {
                            if f.reg_types[d.index()] == Type::Request
                                && !matches!(
                                    i,
                                    Instr::Mpi { .. }
                                        | Instr::Copy {
                                            src: Value::Reg(_),
                                            ..
                                        }
                                )
                                && state[d.index()] != RegReq::Many
                            {
                                state[d.index()] = RegReq::Many;
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    FuncRequests {
        per_reg: (0..n)
            .map(|i| {
                if f.reg_types[i] != Type::Request {
                    None
                } else {
                    Some(match state[i] {
                        RegReq::Bottom => ReqResolution::NeverPosted,
                        RegReq::One(c) => ReqResolution::One(c),
                        RegReq::Many => ReqResolution::Unknown,
                    })
                }
            })
            .collect(),
    }
}

/// Result of the request life-cycle pass.
#[derive(Debug, Clone, Default)]
pub struct RequestResult {
    /// Warnings found.
    pub warnings: Vec<StaticWarning>,
}

/// Check every function's request life-cycle: each post class must be
/// completable by some wait, and every wait must have a post. Register
/// resolutions come from the fact store.
pub fn check_requests(cx: &crate::facts::AnalysisCx) -> RequestResult {
    let m = cx.module;
    let mut out = RequestResult::default();
    for (fidx, f) in m.funcs.iter().enumerate() {
        // Requests in entry-unreachable functions are never posted;
        // diagnosing their life-cycle would be a guaranteed false
        // positive (same policy as the other phases).
        if !cx.is_reachable(fidx) {
            continue;
        }
        let fr = cx.reqs_of(fidx);
        // Collect post sites and the classes the function's waits cover.
        let mut posts: Vec<(ReqId, &'static str, Span)> = Vec::new();
        let mut waited: Vec<ReqId> = Vec::new();
        let mut any_unknown_wait = false;
        for (_bid, b) in f.iter_blocks() {
            for i in &b.instrs {
                let Instr::Mpi { op, span, .. } = i else {
                    continue;
                };
                match op {
                    MpiIr::Isend { .. } => {
                        posts.push((post_class(fr, i), "MPI_Isend", *span));
                    }
                    MpiIr::Irecv { .. } => {
                        posts.push((post_class(fr, i), "MPI_Irecv", *span));
                    }
                    MpiIr::Wait { request } => {
                        record_wait(
                            fr,
                            *request,
                            *span,
                            f,
                            &mut waited,
                            &mut any_unknown_wait,
                            &mut out,
                        );
                    }
                    MpiIr::Waitall { requests } => {
                        for r in requests {
                            record_wait(
                                fr,
                                *r,
                                *span,
                                f,
                                &mut waited,
                                &mut any_unknown_wait,
                                &mut out,
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
        if any_unknown_wait {
            // Some wait operand may complete any class: no leak can be
            // proven in this function.
            continue;
        }
        for (class, name, span) in posts {
            if class.is_unknown() || waited.contains(&class) {
                continue;
            }
            out.warnings.push(StaticWarning {
                kind: WarningKind::UnwaitedRequest,
                func: f.name.clone(),
                message: format!(
                    "the request posted by this {name} is never completed by \
                     MPI_Wait or MPI_Waitall: the request leaks and its message \
                     is never {}",
                    if name == "MPI_Isend" {
                        "consumed by the receiver"
                    } else {
                        "received"
                    }
                ),
                span,
                related: Vec::new(),
            });
        }
    }
    out
}

/// The class the destination register of a post resolves to.
fn post_class(fr: &FuncRequests, post: &Instr) -> ReqId {
    match post.dest() {
        Some(d) => match fr.of_operand(Value::Reg(d)) {
            ReqResolution::One(c) => c,
            _ => ReqId::UNKNOWN,
        },
        None => ReqId::UNKNOWN,
    }
}

/// Record one wait operand: its class joins the waited set; a
/// never-posted operand is reported.
fn record_wait(
    fr: &FuncRequests,
    operand: Value,
    span: Span,
    f: &FuncIr,
    waited: &mut Vec<ReqId>,
    any_unknown: &mut bool,
    out: &mut RequestResult,
) {
    match fr.of_operand(operand) {
        ReqResolution::One(c) => waited.push(c),
        ReqResolution::Unknown => *any_unknown = true,
        ReqResolution::NeverPosted => out.warnings.push(StaticWarning {
            kind: WarningKind::WaitWithoutPost,
            func: f.name.clone(),
            message: "this wait's request operand is never produced by an \
                      MPI_Isend/MPI_Irecv on any path"
                .into(),
            span,
            related: Vec::new(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;

    fn run(src: &str) -> (ModuleRequests, RequestResult) {
        let unit = parse_and_check("t.mh", src).expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        let cx = crate::facts::AnalysisCx::build(
            &m,
            crate::pw::InitialContext::Sequential,
            parcoach_pool::global(),
        );
        let result = check_requests(&cx);
        (compute_requests(&m), result)
    }

    #[test]
    fn waited_requests_are_quiet() {
        let (reqs, r) = run("fn main() {
                let a = MPI_Irecv(0, 1);
                let b = MPI_Isend(1, 0, 1);
                let v = MPI_Wait(a);
                MPI_Waitall(b);
            }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
        assert_eq!(reqs.table.len(), 3, "two post sites + unknown");
    }

    #[test]
    fn leaked_isend_flagged() {
        let (_reqs, r) = run("fn main() {
                let s = MPI_Isend(1, 0, 1);
            }");
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::UnwaitedRequest);
        assert!(r.warnings[0].message.contains("MPI_Isend"));
    }

    #[test]
    fn leaked_irecv_flagged() {
        let (_reqs, r) = run("fn main() {
                let a = MPI_Irecv(MPI_ANY_SOURCE, MPI_ANY_TAG);
                let b = MPI_Irecv(0, 1);
                let v = MPI_Wait(b);
            }");
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::UnwaitedRequest);
        assert!(r.warnings[0].message.contains("MPI_Irecv"));
    }

    #[test]
    fn copies_keep_the_class() {
        let (_reqs, r) = run("fn main() {
                let a = MPI_Irecv(0, 1);
                let b = a;
                let v = MPI_Wait(b);
            }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn merged_wait_operand_is_conservative() {
        // A wait on a control-flow-merged handle may complete either
        // post: no leak is provable, no warning fires.
        let (_reqs, r) = run("fn main() {
                let a = MPI_Irecv(0, 1);
                if (rank() == 0) { a = MPI_Irecv(0, 2); }
                let v = MPI_Wait(a);
            }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn wait_without_post_flagged_on_raw_ir() {
        use parcoach_ir::func::{BasicBlock, FuncIr, Module};
        use parcoach_ir::instr::Terminator;
        use parcoach_ir::types::{BlockId, Reg};
        // Hand-built IR: a request register that is never defined,
        // waited on — unreachable from type-checked source.
        let mut b = BasicBlock::new();
        b.instrs.push(Instr::Mpi {
            dest: None,
            op: MpiIr::Wait {
                request: Value::Reg(Reg(0)),
            },
            span: Span::DUMMY,
        });
        b.term = Terminator::Return {
            value: None,
            span: Span::DUMMY,
        };
        let f = FuncIr {
            name: "main".into(),
            params: vec![],
            ret: Type::Void,
            reg_types: vec![Type::Request],
            reg_names: vec![None],
            blocks: vec![b],
            entry: BlockId(0),
            region_count: 0,
            span: Span::DUMMY,
        };
        let m = Module::new(vec![f]);
        let cx = crate::facts::AnalysisCx::build(
            &m,
            crate::pw::InitialContext::Sequential,
            parcoach_pool::global(),
        );
        let r = check_requests(&cx);
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::WaitWithoutPost);
    }
}
