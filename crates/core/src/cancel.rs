//! Cooperative cancellation for in-flight analyses.
//!
//! `parcoachd` serves many clients from one process; a client that edits
//! again mid-check (or disconnects) should not pin a worker on a result
//! nobody will read. A [`CancelToken`] is handed to
//! [`AnalysisSession::check_module_cancellable`](crate::session::AnalysisSession::check_module_cancellable)
//! and observed at the pipeline's phase boundaries — the coarsest
//! granularity that needs no unwinding: a cancelled check may leave
//! freshly computed facts in the incremental store, but they are
//! fingerprint-keyed and stay valid, so the next check simply starts
//! warmer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation handle: cloned to the requesting side (which
/// calls [`CancelToken::cancel`]) while the analysis polls
/// [`CancelToken::is_cancelled`] at phase boundaries. An optional
/// deadline cancels the token by itself — the daemon's per-request
/// `deadlineMs` rides on this.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels on an explicit [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally cancels itself once `budget` elapses.
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            flag: Arc::default(),
            deadline: Instant::now().checked_add(budget),
        }
    }

    /// A view of this token that *additionally* expires once `budget`
    /// elapses. The flag is shared — cancelling either side cancels
    /// both — but the deadline tightens only the view, which is what a
    /// per-request `deadlineMs` riding on a per-connection token needs.
    pub fn bounded(&self, budget: Duration) -> CancelToken {
        let at = Instant::now().checked_add(budget);
        CancelToken {
            flag: Arc::clone(&self.flag),
            deadline: match (self.deadline, at) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }

    /// Request cancellation (idempotent, safe from any thread).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested, or the deadline passed?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// The analysis observed a cancellation request at a phase boundary and
/// stopped; no report was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "analysis cancelled")
    }
}

impl std::error::Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_cancels_once_and_shares_state() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled(), "cancel must be visible through clones");
    }

    #[test]
    fn bounded_shares_the_flag_and_tightens_the_deadline() {
        let t = CancelToken::new();
        let b = t.bounded(Duration::ZERO);
        assert!(b.is_cancelled(), "bounded view expires on its own");
        assert!(!t.is_cancelled(), "the parent token does not");
        let c = t.bounded(Duration::from_secs(3600));
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled(), "flag is shared both ways");
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }
}
