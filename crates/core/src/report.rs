//! Static-analysis warnings and the aggregate report.
//!
//! "At compile-time our analysis issues warnings for potential MPI
//! collective errors within an MPI process and between MPI processes.
//! The type of each potential error is specified (collective mismatch,
//! concurrent collective calls, …) with the names and lines in the
//! source code of MPI collective calls involved." (paper §4)

use crate::pw::InitialContext;
use parcoach_front::ast::ThreadLevel;
use parcoach_front::diag::{Diagnostic, Diagnostics};
use parcoach_front::span::{SourceMap, Span};
use parcoach_ir::types::BlockId;
use std::fmt;

/// The kind of potential error a warning reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WarningKind {
    /// Phase 1: a collective whose parallelism word is not in `L` — it
    /// may be executed by several non-synchronized threads.
    MultithreadedCollective,
    /// Phase 1 variant: nested parallelism around the collective (one
    /// executor per team).
    NestedParallelismCollective,
    /// Phase 1 interprocedural variant: a function containing collectives
    /// is called from a multithreaded context.
    MultithreadedCall,
    /// Phase 2: two collectives in *concurrent monothreaded regions* —
    /// their relative order is nondeterministic.
    ConcurrentCollectives,
    /// Phase 2 variant: a collective-bearing monothreaded region inside a
    /// loop with no barrier on the cycle — concurrent with itself across
    /// iterations.
    SelfConcurrentRegion,
    /// Phase 3 (Algorithm 1): the set of executed collectives depends on
    /// a conditional — processes may not all execute the same sequence.
    CollectiveMismatch,
    /// The parallel-construct/barrier structure itself differs between
    /// branches (a barrier on one path only): candidate thread deadlock.
    BarrierDivergence,
    /// A collective requires a higher MPI thread level than the program
    /// requested via `MPI_Init_thread`.
    InsufficientThreadLevel,
    /// Point-to-point matching: a send or receive whose (communicator,
    /// tag) key no operation of the opposite direction can ever match.
    UnmatchedP2p,
    /// Point-to-point matching: a receive that precedes every matching
    /// send on every path — the head-to-head `recv; send` deadlock.
    /// For non-blocking receives the blocking point is the wait, so the
    /// warning anchors there.
    P2pOrder,
    /// Request life-cycle: an `MPI_Isend`/`MPI_Irecv` whose request no
    /// wait in the function can ever complete — the request leaks.
    UnwaitedRequest,
    /// Request life-cycle: a wait whose operand is never produced by a
    /// post on any path (IR-level invariant violation).
    WaitWithoutPost,
}

impl WarningKind {
    /// Stable machine-readable code.
    pub fn code(self) -> &'static str {
        match self {
            WarningKind::MultithreadedCollective => "multithreaded-collective",
            WarningKind::NestedParallelismCollective => "nested-parallelism-collective",
            WarningKind::MultithreadedCall => "multithreaded-call",
            WarningKind::ConcurrentCollectives => "concurrent-collectives",
            WarningKind::SelfConcurrentRegion => "self-concurrent-region",
            WarningKind::CollectiveMismatch => "collective-mismatch",
            WarningKind::BarrierDivergence => "barrier-divergence",
            WarningKind::InsufficientThreadLevel => "insufficient-thread-level",
            WarningKind::UnmatchedP2p => "unmatched-p2p",
            WarningKind::P2pOrder => "mismatched-order",
            WarningKind::UnwaitedRequest => "unwaited-request",
            WarningKind::WaitWithoutPost => "wait-without-post",
        }
    }

    /// Human-readable category, as the paper's error-type strings.
    pub fn describe(self) -> &'static str {
        match self {
            WarningKind::MultithreadedCollective => "collective in multithreaded context",
            WarningKind::NestedParallelismCollective => "collective under nested parallelism",
            WarningKind::MultithreadedCall => {
                "call to collective-bearing function from multithreaded context"
            }
            WarningKind::ConcurrentCollectives => "concurrent collective calls",
            WarningKind::SelfConcurrentRegion => {
                "collective region concurrent with itself across loop iterations"
            }
            WarningKind::CollectiveMismatch => "collective mismatch",
            WarningKind::BarrierDivergence => "control-flow divergent barrier",
            WarningKind::InsufficientThreadLevel => "insufficient MPI thread level",
            WarningKind::UnmatchedP2p => "unmatched point-to-point operation",
            WarningKind::P2pOrder => "point-to-point receive/send order mismatch",
            WarningKind::UnwaitedRequest => "non-blocking request never completed",
            WarningKind::WaitWithoutPost => "wait on a never-posted request",
        }
    }
}

impl fmt::Display for WarningKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// One static warning.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticWarning {
    /// Error category.
    pub kind: WarningKind,
    /// Function the warning is in.
    pub func: String,
    /// Main message (includes collective names).
    pub message: String,
    /// Primary source location (the collective, usually).
    pub span: Span,
    /// Secondary locations: conditionals, sibling collectives, parallel
    /// constructs responsible.
    pub related: Vec<(Span, String)>,
}

impl StaticWarning {
    /// Convert into a frontend diagnostic for uniform rendering.
    pub fn to_diagnostic(&self) -> Diagnostic {
        let mut d = Diagnostic::warning(
            self.kind.code(),
            format!("[{}] {} (in `{}`)", self.kind, self.message, self.func),
            self.span,
        );
        for (span, label) in &self.related {
            d = d.with_note(*span, label.clone());
        }
        d
    }
}

/// Instrumentation demand produced by the static phase: which blocks
/// need which dynamic checks (the paper's sets `S`, `S_ipw`, `S_cc`).
#[derive(Debug, Clone, Default)]
pub struct InstrumentationPlan {
    /// Per function: suspect collective blocks (set `S`) — get a `CC`
    /// call and, when the context is unproven, a monothread assert.
    pub suspect_collectives: Vec<(String, BlockId)>,
    /// Per function: blocks whose monothread context must be verified at
    /// run time (set `S_ipw`).
    pub monothread_checks: Vec<(String, BlockId)>,
    /// Per function: monothreaded regions that need concurrency counting
    /// (set `S_cc`), as (function, region id, cluster site id). Regions
    /// that may overlap share a site id.
    pub concurrency_sites: Vec<(String, u32, u32)>,
    /// Functions whose returns need a `CC` (they contain suspect
    /// collectives or mismatch candidates).
    pub cc_functions: Vec<String>,
    /// Functions whose `MPI_Finalize` gets the point-to-point epoch
    /// census (they contain suspect p2p traffic).
    pub p2p_epoch_functions: Vec<String>,
}

impl InstrumentationPlan {
    /// Total number of planned check sites (ablation metric).
    pub fn total_sites(&self) -> usize {
        self.suspect_collectives.len() + self.monothread_checks.len() + self.concurrency_sites.len()
    }
}

/// The complete result of the static phase over a module.
#[derive(Debug, Clone, Default)]
pub struct StaticReport {
    /// All warnings, in discovery order.
    pub warnings: Vec<StaticWarning>,
    /// The instrumentation demand.
    pub plan: InstrumentationPlan,
    /// Initial context each function was analysed under.
    pub contexts: Vec<(String, InitialContext)>,
    /// Thread level requested by the program (`MPI_Init_thread`), if any.
    pub requested_level: Option<ThreadLevel>,
    /// Highest thread level any collective requires.
    pub required_level: ThreadLevel,
    /// PDF+ divergence candidates found by Algorithm 1 *before* the
    /// balanced-arms refinement (ablation metric E5b).
    pub pdf_candidates: usize,
    /// Candidates confirmed after refinement.
    pub pdf_confirmed: usize,
}

impl StaticReport {
    /// Count warnings of a kind.
    pub fn count(&self, kind: WarningKind) -> usize {
        self.warnings.iter().filter(|w| w.kind == kind).count()
    }

    /// True when no potential error was found: the program is statically
    /// verified and needs **no instrumentation** (the selective-
    /// instrumentation fast path).
    pub fn is_clean(&self) -> bool {
        self.warnings.is_empty()
    }

    /// Render all warnings against the source map.
    pub fn render(&self, sm: &SourceMap) -> String {
        let mut ds = Diagnostics::new();
        for w in &self.warnings {
            ds.push(w.to_diagnostic());
        }
        let mut out = ds.render(sm);
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "{} warning(s); instrumentation: {} collective site(s), {} monothread check(s), {} concurrency site(s), {} p2p epoch function(s)",
            self.warnings.len(),
            self.plan.suspect_collectives.len(),
            self.plan.monothread_checks.len(),
            self.plan.concurrency_sites.len(),
            self.plan.p2p_epoch_functions.len(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_distinct_codes() {
        let all = [
            WarningKind::MultithreadedCollective,
            WarningKind::NestedParallelismCollective,
            WarningKind::MultithreadedCall,
            WarningKind::ConcurrentCollectives,
            WarningKind::SelfConcurrentRegion,
            WarningKind::CollectiveMismatch,
            WarningKind::BarrierDivergence,
            WarningKind::InsufficientThreadLevel,
            WarningKind::UnmatchedP2p,
            WarningKind::P2pOrder,
            WarningKind::UnwaitedRequest,
            WarningKind::WaitWithoutPost,
        ];
        let mut codes: Vec<_> = all.iter().map(|k| k.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
    }

    #[test]
    fn warning_renders_with_related() {
        let sm = SourceMap::new("x.mh", "if (rank() == 0) { MPI_Barrier(); }\n");
        let w = StaticWarning {
            kind: WarningKind::CollectiveMismatch,
            func: "main".into(),
            message: "MPI_Barrier may not be executed by all processes".into(),
            span: Span::new(19, 32),
            related: vec![(Span::new(0, 2), "depends on this conditional".into())],
        };
        let s = w.to_diagnostic().render(&sm);
        assert!(s.contains("collective mismatch"), "{s}");
        assert!(s.contains("MPI_Barrier"), "{s}");
        assert!(s.contains("depends on this conditional"), "{s}");
    }

    #[test]
    fn clean_report() {
        let r = StaticReport::default();
        assert!(r.is_clean());
        assert_eq!(r.plan.total_sites(), 0);
    }
}
