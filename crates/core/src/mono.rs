//! Phase 1 — "all MPI collectives are executed in a monothreaded
//! context" (paper §2, property 1).
//!
//! For every collective node, classify its parallelism word against
//! `L = (S|PB*S)*`. Nodes that fail (or whose word is control-flow
//! dependent) join the suspect set `S` and get a runtime monothread
//! check (the paper's `S_ipw` instrumentation); the warning cites the
//! parallel construct responsible.

use crate::facts::AnalysisCx;
use crate::lang::MonoVerdict;
use crate::pw::{PwState, SYNTH_BASE};
use crate::report::{StaticWarning, WarningKind};
use crate::word::Token;
use parcoach_front::ast::ThreadLevel;
use parcoach_front::span::Span;
use parcoach_ir::func::FuncIr;
use parcoach_ir::types::BlockId;

/// Phase-1 result for one function.
#[derive(Debug, Clone, Default)]
pub struct MonoResult {
    /// Warnings found.
    pub warnings: Vec<StaticWarning>,
    /// Collective blocks in (possibly) multithreaded context — the set
    /// `S`; these need `CC` + monothread checks.
    pub suspects: Vec<BlockId>,
    /// The highest MPI thread level required by any collective of this
    /// function (None when the function has no collectives).
    pub required_level: Option<ThreadLevel>,
}

/// Run phase 1 on one function, reading its parallelism words from the
/// fact store.
pub fn check_monothread(cx: &AnalysisCx, fidx: usize) -> MonoResult {
    let f = &cx.module.funcs[fidx];
    let pw = &cx.funcs[fidx].pw;
    let mut out = MonoResult::default();

    // Structural divergences (barrier in one branch only) are reported
    // regardless of collectives: they are candidate thread deadlocks.
    for d in &pw.divergences {
        out.warnings.push(StaticWarning {
            kind: WarningKind::BarrierDivergence,
            func: f.name.clone(),
            message: format!(
                "parallel construct / barrier structure differs between paths \
                 ({} vs {}) — a barrier may be executed by only part of the team",
                d.left, d.right
            ),
            span: d.span,
            related: Vec::new(),
        });
    }

    // One classification loop for everything that synchronizes like a
    // collective: the data collectives and the communicator-management
    // collectives (`MPI_Comm_split`/`dup`, which synchronize their
    // parent's members — a whole team creating a communicator is the
    // same error as a whole team entering a barrier).
    for (bid, block) in f.iter_blocks() {
        for i in &block.instrs {
            let parcoach_ir::instr::Instr::Mpi { op, span, .. } = i else {
                continue;
            };
            let name = match op.collective_kind() {
                Some(k) => k.mpi_name(),
                None => match op.comm_mgmt() {
                    Some((n, _)) => n,
                    None => continue,
                },
            };
            let span = *span;
            match pw.entry[bid.index()] {
                None => continue, // unreachable
                Some(PwState::Conflict) => {
                    // Conflict state: context depends on control flow.
                    out.warnings.push(StaticWarning {
                        kind: WarningKind::MultithreadedCollective,
                        func: f.name.clone(),
                        message: format!(
                            "{name} is reached with control-flow-dependent thread \
                             context; cannot prove monothreaded execution"
                        ),
                        span,
                        related: Vec::new(),
                    });
                    out.suspects.push(bid);
                    out.bump_level(ThreadLevel::Multiple);
                }
                Some(PwState::Word(node)) => {
                    // The verdict is cached on the word node; the word
                    // itself materializes only for warning messages.
                    let class = pw.class(node);
                    out.bump_level(class.required_level);
                    match class.verdict {
                        MonoVerdict::SequentialContext | MonoVerdict::MonoThreaded => {}
                        MonoVerdict::MultiThreaded => {
                            let w = pw.dag.materialize(node);
                            let related = responsible_construct(f, &w);
                            out.warnings.push(StaticWarning {
                                kind: WarningKind::MultithreadedCollective,
                                func: f.name.clone(),
                                message: format!(
                                    "{name} may be executed by multiple non-synchronized \
                                     threads (parallelism word {w}); requires \
                                     MPI_THREAD_MULTIPLE and a proof that a single \
                                     thread calls it"
                                ),
                                span,
                                related,
                            });
                            out.suspects.push(bid);
                        }
                        MonoVerdict::NestedParallelism => {
                            let w = pw.dag.materialize(node);
                            let related = responsible_construct(f, &w);
                            out.warnings.push(StaticWarning {
                                kind: WarningKind::NestedParallelismCollective,
                                func: f.name.clone(),
                                message: format!(
                                    "{name} sits under nested parallel regions \
                                     (parallelism word {w}); one thread per team may \
                                     execute it"
                                ),
                                span,
                                related,
                            });
                            out.suspects.push(bid);
                        }
                    }
                }
            }
        }
    }

    // Point-to-point thread-level demand. Unlike collectives, p2p in a
    // multithreaded context is *not* an error (matching is by tag, and
    // MPIxThreads-style designs rely on it) — but it is only legal when
    // the program holds the thread level its context demands: any
    // thread of a team calling MPI needs MPI_THREAD_MULTIPLE, a
    // monothreaded region SERIALIZED (FUNNELED for master chains).
    for bid in f.p2p_blocks() {
        match pw.entry[bid.index()] {
            None => continue, // unreachable
            Some(PwState::Conflict) => out.bump_level(ThreadLevel::Multiple),
            Some(PwState::Word(node)) => out.bump_level(pw.class(node).required_level),
        }
    }

    out.suspects.dedup();
    out
}

impl MonoResult {
    fn bump_level(&mut self, l: ThreadLevel) {
        self.required_level = Some(match self.required_level {
            None => l,
            Some(cur) => cur.max(l),
        });
    }
}

/// Locate the parallel construct responsible for the multithreaded
/// context: the innermost `P` token's begin block (or a note that the
/// context comes from the caller when the token is synthetic).
fn responsible_construct(f: &FuncIr, w: &crate::word::Word) -> Vec<(Span, String)> {
    let mut related = Vec::new();
    if let Some(Token::P(r)) = w.tokens().iter().rev().find(|t| t.is_p()) {
        if r.0 >= SYNTH_BASE {
            related.push((
                Span::DUMMY,
                "the multithreaded context comes from a caller of this function".to_string(),
            ));
        } else if let Some(begin) = f.region_begin_block(*r) {
            related.push((
                f.block(begin).span,
                "parallel region opened here".to_string(),
            ));
        }
    }
    related
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pw::InitialContext;
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;
    use parcoach_ir::Module;

    fn run(src: &str) -> (Module, Vec<MonoResult>) {
        let unit = parse_and_check("t.mh", src).expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        let cx = AnalysisCx::build(&m, InitialContext::Sequential, parcoach_pool::global());
        let results = (0..m.funcs.len())
            .map(|i| check_monothread(&cx, i))
            .collect();
        (m, results)
    }

    fn main_result(src: &str) -> MonoResult {
        let (m, rs) = run(src);
        let idx = m.by_name["main"];
        rs.into_iter().nth(idx).unwrap()
    }

    #[test]
    fn whole_team_comm_creation_flagged() {
        // Every thread of the team enters the comm_dup collective —
        // the same error as a whole-team barrier.
        let r = main_result("fn main() { parallel { let c = MPI_Comm_dup(MPI_COMM_WORLD); } }");
        assert!(
            r.warnings
                .iter()
                .any(|w| w.kind == WarningKind::MultithreadedCollective
                    && w.message.contains("MPI_Comm_dup")),
            "{:?}",
            r.warnings
        );
        assert_eq!(r.required_level, Some(ThreadLevel::Multiple));
        // Sequential comm creation is fine.
        let r = main_result("fn main() { let c = MPI_Comm_split(MPI_COMM_WORLD, 0, rank()); }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn p2p_levels_no_warning() {
        // Sequential p2p: SINGLE is enough.
        let r = main_result("fn main() { MPI_Send(1, 0, 1); let v = MPI_Recv(0, 1); }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
        assert_eq!(r.required_level, Some(ThreadLevel::Single));
        // Whole-team p2p: requires MULTIPLE but is not an error.
        let r = main_result("fn main() { parallel { MPI_Send(1, 0, 1); } }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
        assert_eq!(r.required_level, Some(ThreadLevel::Multiple));
        // Funneled p2p.
        let r = main_result("fn main() { parallel { master { MPI_Send(1, 0, 1); } } }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
        assert_eq!(r.required_level, Some(ThreadLevel::Funneled));
    }

    #[test]
    fn sequential_collective_clean() {
        let r = main_result("fn main() { MPI_Barrier(); }");
        assert!(r.warnings.is_empty());
        assert_eq!(r.required_level, Some(ThreadLevel::Single));
    }

    #[test]
    fn collective_in_single_clean_serialized() {
        let r = main_result("fn main() { parallel { single { MPI_Barrier(); } } }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
        assert_eq!(r.required_level, Some(ThreadLevel::Serialized));
    }

    #[test]
    fn collective_in_master_funneled() {
        let r = main_result("fn main() { parallel { master { MPI_Barrier(); } } }");
        assert!(r.warnings.is_empty());
        assert_eq!(r.required_level, Some(ThreadLevel::Funneled));
    }

    #[test]
    fn bare_parallel_collective_flagged() {
        let r = main_result("fn main() { parallel { MPI_Barrier(); } }");
        assert_eq!(r.warnings.len(), 1);
        assert_eq!(r.warnings[0].kind, WarningKind::MultithreadedCollective);
        assert_eq!(r.suspects.len(), 1);
        assert_eq!(r.required_level, Some(ThreadLevel::Multiple));
        // The responsible parallel construct is cited.
        assert!(!r.warnings[0].related.is_empty());
    }

    #[test]
    fn nested_parallelism_flagged_differently() {
        let r = main_result("fn main() { parallel { parallel { single { MPI_Barrier(); } } } }");
        assert_eq!(r.warnings.len(), 1);
        assert_eq!(r.warnings[0].kind, WarningKind::NestedParallelismCollective);
    }

    #[test]
    fn collective_in_pfor_flagged() {
        let r = main_result("fn main() { parallel { pfor (i in 0..4) { MPI_Barrier(); } } }");
        assert!(r
            .warnings
            .iter()
            .any(|w| w.kind == WarningKind::MultithreadedCollective));
    }

    #[test]
    fn collective_in_critical_flagged() {
        // critical serializes but every thread executes: N calls per rank.
        let r = main_result("fn main() { parallel { critical { MPI_Barrier(); } } }");
        assert!(r
            .warnings
            .iter()
            .any(|w| w.kind == WarningKind::MultithreadedCollective));
    }

    #[test]
    fn divergent_barrier_reported() {
        let r = main_result("fn main() { parallel { if (thread_num() == 0) { barrier; } } }");
        assert!(r
            .warnings
            .iter()
            .any(|w| w.kind == WarningKind::BarrierDivergence));
    }

    #[test]
    fn callee_in_parallel_context_flagged() {
        let (m, rs) = run("fn exchange() { MPI_Allreduce(1, SUM); }
             fn main() { parallel { exchange(); } }");
        let idx = m.by_name["exchange"];
        let r = &rs[idx];
        assert!(
            r.warnings
                .iter()
                .any(|w| w.kind == WarningKind::MultithreadedCollective),
            "collective in callee called from parallel must be flagged: {:?}",
            r.warnings
        );
        // The related note explains the context comes from the caller.
        assert!(r.warnings[0]
            .related
            .iter()
            .any(|(_, l)| l.contains("caller")));
    }

    #[test]
    fn callee_in_single_context_clean() {
        let (m, rs) = run("fn exchange() { MPI_Allreduce(1, SUM); }
             fn main() { parallel { single { exchange(); } } }");
        let idx = m.by_name["exchange"];
        assert!(rs[idx].warnings.is_empty(), "{:?}", rs[idx].warnings);
        assert_eq!(rs[idx].required_level, Some(ThreadLevel::Serialized));
    }

    #[test]
    fn conflict_context_collective_flagged() {
        // Barrier divergence upstream makes the collective's context
        // control-dependent.
        let r = main_result(
            "fn main() {
                parallel {
                    if (thread_num() == 0) { barrier; }
                    single { MPI_Barrier(); }
                }
            }",
        );
        assert!(r
            .warnings
            .iter()
            .any(|w| w.kind == WarningKind::MultithreadedCollective
                && w.message.contains("control-flow-dependent")));
    }
}
