//! Parallelism words (paper §2).
//!
//! For a CFG node `n`, the parallelism word `pw[n]` is "the sequence of
//! the parallel constructs (pragma parallel, single, …) and the barriers
//! traversed from the beginning of a function to the node". Parallel
//! regions contribute `P_i` tokens, single-threaded regions (`single`,
//! `master`, one `section`) contribute `S_i`, barriers contribute `B`.
//! "A simplification is done when OpenMP regions end": closing a region
//! removes its token (and everything after it) from the word.

use parcoach_ir::types::RegionId;
use std::cmp::Ordering;
use std::fmt;

/// The flavour of a single-threaded (`S`) region. Needed to derive the
/// *required MPI thread level*: a collective guarded only by `master`
/// regions can run under `MPI_THREAD_FUNNELED`, while `single`/`section`
/// need `MPI_THREAD_SERIALIZED`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SKind {
    /// `single` region — an arbitrary thread executes.
    Single,
    /// `master` region — the team master executes.
    Master,
    /// one `section` of a `sections` construct — an arbitrary thread.
    Section,
}

impl fmt::Display for SKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SKind::Single => write!(f, "single"),
            SKind::Master => write!(f, "master"),
            SKind::Section => write!(f, "section"),
        }
    }
}

/// One token of a parallelism word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Token {
    /// `P_i`: a parallel region (team fork).
    P(RegionId),
    /// `S_i`: a single-threaded region.
    S(RegionId, SKind),
    /// `B`: a thread barrier (explicit or implicit).
    B,
}

impl Token {
    /// Region id for `P`/`S` tokens.
    pub fn region(self) -> Option<RegionId> {
        match self {
            Token::P(r) | Token::S(r, _) => Some(r),
            Token::B => None,
        }
    }

    /// Is this an `S` token?
    pub fn is_s(self) -> bool {
        matches!(self, Token::S(..))
    }

    /// Is this a `P` token?
    pub fn is_p(self) -> bool {
        matches!(self, Token::P(_))
    }
}

impl Token {
    /// Sort key for [`Word::cmp_for_report`]: `B` sorts before any region
    /// token, `P` before `S`, regions by id, and `S` kinds in declaration
    /// order. Purely structural — no span or symbol information — so the
    /// order is stable across parses of the same module.
    fn report_key(self) -> (u8, u32, u8) {
        match self {
            Token::B => (0, 0, 0),
            Token::P(r) => (1, r.0, 0),
            Token::S(r, k) => (
                2,
                r.0,
                match k {
                    SKind::Single => 0,
                    SKind::Master => 1,
                    SKind::Section => 2,
                },
            ),
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::P(r) => write!(f, "P{}", r.0),
            Token::S(r, _) => write!(f, "S{}", r.0),
            Token::B => write!(f, "B"),
        }
    }
}

/// A parallelism word: a (short) sequence of tokens.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Word(pub Vec<Token>);

impl Word {
    /// The empty word (function entry at the default initial level).
    pub fn empty() -> Word {
        Word(Vec::new())
    }

    /// Append a token.
    pub fn push(&mut self, t: Token) {
        self.0.push(t);
    }

    /// Word extended by one token (functional form).
    pub fn extended(&self, t: Token) -> Word {
        let mut w = self.clone();
        w.push(t);
        w
    }

    /// Close region `r`: truncate the word at (and including) the last
    /// occurrence of the region's `P`/`S` token. Returns `false` when the
    /// token is absent — a structural error the caller reports.
    pub fn close_region(&mut self, r: RegionId) -> bool {
        if let Some(pos) = self.0.iter().rposition(|t| t.region() == Some(r)) {
            self.0.truncate(pos);
            true
        } else {
            false
        }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty word.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Tokens as a slice.
    pub fn tokens(&self) -> &[Token] {
        &self.0
    }

    /// The word with all `B` tokens removed (monothread-membership only
    /// looks at the `P`/`S` structure; "Bs are ignored as barriers do not
    /// influence the level of thread parallelism").
    pub fn stripped(&self) -> Vec<Token> {
        self.0.iter().copied().filter(|t| *t != Token::B).collect()
    }

    /// Length of the longest common prefix with `other`.
    pub fn common_prefix_len(&self, other: &Word) -> usize {
        self.0
            .iter()
            .zip(other.0.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// True when `other` equals `self` plus a suffix consisting only of
    /// `B` tokens (the loop-head phase-merge case).
    pub fn is_barrier_extension_of(&self, other: &Word) -> bool {
        self.0.len() >= other.0.len()
            && self.0[..other.0.len()] == other.0[..]
            && self.0[other.0.len()..].iter().all(|t| *t == Token::B)
    }

    /// Number of `B` tokens in the word.
    pub fn barrier_count(&self) -> usize {
        self.0.iter().filter(|t| **t == Token::B).count()
    }

    /// Deterministic total order used when words are listed in reports or
    /// test transcripts: shorter words first, length ties broken
    /// lexicographically by `Token::report_key`. Independent of arena or
    /// dag interning order, so the hash-consed representation in
    /// [`crate::intern::WordDag`] must reproduce it exactly after
    /// materialization (pinned by the `lang_props` property tests).
    pub fn cmp_for_report(&self, other: &Word) -> Ordering {
        self.0.len().cmp(&other.0.len()).then_with(|| {
            for (a, b) in self.0.iter().zip(other.0.iter()) {
                let ord = a.report_key().cmp(&b.report_key());
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        })
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "ε");
        }
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

impl From<Vec<Token>> for Word {
    fn from(v: Vec<Token>) -> Word {
        Word(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RegionId {
        RegionId(i)
    }

    #[test]
    fn close_region_truncates() {
        // P0 S1 B — closing S1 leaves P0 (B after it goes too).
        let mut w = Word(vec![
            Token::P(r(0)),
            Token::S(r(1), SKind::Single),
            Token::B,
        ]);
        assert!(w.close_region(r(1)));
        assert_eq!(w, Word(vec![Token::P(r(0))]));
        // Closing P0 empties.
        assert!(w.close_region(r(0)));
        assert!(w.is_empty());
        // Closing again fails.
        assert!(!w.close_region(r(0)));
    }

    #[test]
    fn close_region_picks_last_occurrence() {
        // Degenerate but defensive: same region twice (loop re-entry).
        let mut w = Word(vec![
            Token::S(r(1), SKind::Single),
            Token::B,
            Token::S(r(1), SKind::Single),
        ]);
        assert!(w.close_region(r(1)));
        assert_eq!(w.0.len(), 2);
    }

    #[test]
    fn stripped_removes_barriers() {
        let w = Word(vec![
            Token::P(r(0)),
            Token::B,
            Token::B,
            Token::S(r(1), SKind::Master),
        ]);
        assert_eq!(
            w.stripped(),
            vec![Token::P(r(0)), Token::S(r(1), SKind::Master)]
        );
        assert_eq!(w.barrier_count(), 2);
    }

    #[test]
    fn common_prefix() {
        let a = Word(vec![Token::P(r(0)), Token::S(r(1), SKind::Single)]);
        let b = Word(vec![Token::P(r(0)), Token::S(r(2), SKind::Single)]);
        assert_eq!(a.common_prefix_len(&b), 1);
        assert_eq!(a.common_prefix_len(&a), 2);
        assert_eq!(Word::empty().common_prefix_len(&a), 0);
    }

    #[test]
    fn barrier_extension() {
        let base = Word(vec![Token::P(r(0))]);
        let ext = Word(vec![Token::P(r(0)), Token::B, Token::B]);
        assert!(ext.is_barrier_extension_of(&base));
        assert!(base.is_barrier_extension_of(&base));
        assert!(!base.is_barrier_extension_of(&ext));
        let other = Word(vec![Token::P(r(0)), Token::S(r(1), SKind::Single)]);
        assert!(!other.is_barrier_extension_of(&base));
    }

    #[test]
    fn report_order_is_length_then_lexicographic() {
        let empty = Word::empty();
        let b = Word(vec![Token::B]);
        let p = Word(vec![Token::P(r(0))]);
        let s = Word(vec![Token::S(r(0), SKind::Single)]);
        let long = Word(vec![Token::B, Token::B]);
        // Shorter first.
        assert_eq!(empty.cmp_for_report(&b), Ordering::Less);
        assert_eq!(long.cmp_for_report(&b), Ordering::Greater);
        // Same length: B < P < S.
        assert_eq!(b.cmp_for_report(&p), Ordering::Less);
        assert_eq!(p.cmp_for_report(&s), Ordering::Less);
        // Region ids order same-shape tokens.
        let p1 = Word(vec![Token::P(r(1))]);
        assert_eq!(p.cmp_for_report(&p1), Ordering::Less);
        // S kinds order within a region.
        let master = Word(vec![Token::S(r(0), SKind::Master)]);
        assert_eq!(s.cmp_for_report(&master), Ordering::Less);
        // Reflexive equality.
        assert_eq!(s.cmp_for_report(&s), Ordering::Equal);
    }

    #[test]
    fn display() {
        assert_eq!(Word::empty().to_string(), "ε");
        let w = Word(vec![
            Token::P(r(0)),
            Token::B,
            Token::S(r(3), SKind::Single),
        ]);
        assert_eq!(w.to_string(), "P0·B·S3");
    }
}
