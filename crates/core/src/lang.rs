//! The accepted language `L = (S | P B* S)*` and the monothread-context
//! classification (paper §2).
//!
//! "Checking that a collective is executed in a monothreaded region boils
//! down to check the parallelism word of its node": the word must end
//! with an `S` (ignoring `B`s), and no two `P` may appear without an `S`
//! in between (nested parallelism: one thread *per team* would execute,
//! i.e. several threads overall).

use crate::word::{SKind, Token, Word};
use parcoach_front::ast::ThreadLevel;

/// Verdict of the monothread-context check for one word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonoVerdict {
    /// `pw ∈ L` and the word is empty: the node runs outside any
    /// parallel construct (the initial thread).
    SequentialContext,
    /// `pw ∈ L`, non-empty: monothreaded inside parallel region(s).
    MonoThreaded,
    /// `pw ∉ L` because the word does not end in `S`: all threads of the
    /// innermost team may execute the node.
    MultiThreaded,
    /// `pw ∉ L` because of `P…P` with no `S` in between: nested
    /// parallelism — even an `S` suffix leaves one executor *per team*.
    NestedParallelism,
}

impl MonoVerdict {
    /// Is the node provably executed by at most one thread?
    pub fn is_monothreaded(self) -> bool {
        matches!(
            self,
            MonoVerdict::SequentialContext | MonoVerdict::MonoThreaded
        )
    }
}

/// Result of classifying one parallelism word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextClass {
    /// The membership verdict.
    pub verdict: MonoVerdict,
    /// The minimum MPI thread level under which an MPI call at this node
    /// is legal.
    pub required_level: ThreadLevel,
}

/// Classify a parallelism word.
///
/// Membership in `L = (S|PB*S)*` is checked on the `B`-stripped word: it
/// holds iff every `P` token is immediately followed by an `S` token.
/// The required level is derived as:
///
/// * empty word → `MPI_THREAD_SINGLE` (no threading at this node);
/// * ∈ `L`, every `P` guarded by a `master` chain → `MPI_THREAD_FUNNELED`
///   (the executing thread *is* the initial thread);
/// * ∈ `L` otherwise → `MPI_THREAD_SERIALIZED` (exactly one thread, but
///   an arbitrary one);
/// * ∉ `L` → `MPI_THREAD_MULTIPLE` (several threads may call MPI
///   concurrently — and the collective itself is a bug the analysis
///   reports unless exactly one thread can be proven).
pub fn classify(word: &Word) -> ContextClass {
    let stripped = word.stripped();
    if stripped.is_empty() {
        return ContextClass {
            verdict: MonoVerdict::SequentialContext,
            required_level: ThreadLevel::Single,
        };
    }
    // Membership scan: after the scan, `pending_p` means a trailing `P`.
    let mut nested = false;
    let mut pending_p = false;
    for t in &stripped {
        match t {
            Token::P(_) => {
                if pending_p {
                    nested = true; // P…P without S in between
                }
                pending_p = true;
            }
            Token::S(..) => {
                pending_p = false;
            }
            Token::B => unreachable!("stripped word has no B"),
        }
    }
    if nested {
        return ContextClass {
            verdict: MonoVerdict::NestedParallelism,
            required_level: ThreadLevel::Multiple,
        };
    }
    if pending_p {
        return ContextClass {
            verdict: MonoVerdict::MultiThreaded,
            required_level: ThreadLevel::Multiple,
        };
    }
    // ∈ L. Funneled iff every P is immediately followed by a Master S —
    // then the single executor is the master of every team on the chain,
    // i.e. the initial thread.
    let mut funneled = true;
    let mut i = 0;
    while i < stripped.len() {
        if let Token::P(_) = stripped[i] {
            match stripped.get(i + 1) {
                Some(Token::S(_, SKind::Master)) => {}
                _ => funneled = false,
            }
        }
        i += 1;
    }
    ContextClass {
        verdict: MonoVerdict::MonoThreaded,
        required_level: if funneled {
            ThreadLevel::Funneled
        } else {
            ThreadLevel::Serialized
        },
    }
}

/// Reference implementation of `L`-membership by explicit regular-
/// expression derivative over the full (unstripped) word — used by the
/// property tests to cross-check [`classify`].
///
/// `L = (S | P B* S)*`, with the reading that stray `B`s outside a
/// `P…S` bracket are ignored (the paper: "Bs are ignored as barriers do
/// not influence the level of thread parallelism").
pub fn in_language_reference(word: &Word) -> bool {
    // State machine: 0 = between groups (accepting), 1 = after P,
    // awaiting B* then S.
    let mut state = 0u8;
    for t in word.tokens() {
        state = match (state, t) {
            (0, Token::S(..)) => 0,
            (0, Token::P(_)) => 1,
            (0, Token::B) => 0, // ignored outside groups
            (1, Token::B) => 1,
            (1, Token::S(..)) => 0,
            (1, Token::P(_)) => return false, // nested parallelism
            _ => unreachable!(),
        };
    }
    state == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcoach_ir::types::RegionId;

    fn p(i: u32) -> Token {
        Token::P(RegionId(i))
    }
    fn s(i: u32) -> Token {
        Token::S(RegionId(i), SKind::Single)
    }
    fn m(i: u32) -> Token {
        Token::S(RegionId(i), SKind::Master)
    }
    fn b() -> Token {
        Token::B
    }

    #[test]
    fn empty_word_is_sequential() {
        let c = classify(&Word::empty());
        assert_eq!(c.verdict, MonoVerdict::SequentialContext);
        assert_eq!(c.required_level, ThreadLevel::Single);
    }

    #[test]
    fn p_then_s_is_mono_serialized() {
        let c = classify(&Word(vec![p(0), s(1)]));
        assert_eq!(c.verdict, MonoVerdict::MonoThreaded);
        assert_eq!(c.required_level, ThreadLevel::Serialized);
    }

    #[test]
    fn p_then_master_is_funneled() {
        let c = classify(&Word(vec![p(0), m(1)]));
        assert_eq!(c.verdict, MonoVerdict::MonoThreaded);
        assert_eq!(c.required_level, ThreadLevel::Funneled);
    }

    #[test]
    fn barriers_are_transparent() {
        let c = classify(&Word(vec![p(0), b(), b(), s(1)]));
        assert_eq!(c.verdict, MonoVerdict::MonoThreaded);
        // With a barrier but still single: serialized.
        assert_eq!(c.required_level, ThreadLevel::Serialized);
    }

    #[test]
    fn bare_p_is_multithreaded() {
        let c = classify(&Word(vec![p(0)]));
        assert_eq!(c.verdict, MonoVerdict::MultiThreaded);
        assert_eq!(c.required_level, ThreadLevel::Multiple);
        let c = classify(&Word(vec![p(0), b()]));
        assert_eq!(c.verdict, MonoVerdict::MultiThreaded);
    }

    #[test]
    fn nested_parallelism_detected() {
        // P P S: even though it ends with S, one thread per team executes.
        let c = classify(&Word(vec![p(0), p(1), s(2)]));
        assert_eq!(c.verdict, MonoVerdict::NestedParallelism);
        assert_eq!(c.required_level, ThreadLevel::Multiple);
    }

    #[test]
    fn properly_nested_p_s_p_s_is_mono() {
        // parallel { single { parallel { single { X } } } }
        let c = classify(&Word(vec![p(0), s(1), p(2), s(3)]));
        assert_eq!(c.verdict, MonoVerdict::MonoThreaded);
        assert_eq!(c.required_level, ThreadLevel::Serialized);
    }

    #[test]
    fn master_chain_funneled_master_of_single_not() {
        // parallel { master { parallel { master { X } } } } → funneled
        let c = classify(&Word(vec![p(0), m(1), p(2), m(3)]));
        assert_eq!(c.required_level, ThreadLevel::Funneled);
        // parallel { single { parallel { master { X } } } } → the inner
        // master is the master of a team forked by an arbitrary thread:
        // serialized, not funneled.
        let c = classify(&Word(vec![p(0), s(1), p(2), m(3)]));
        assert_eq!(c.required_level, ThreadLevel::Serialized);
    }

    #[test]
    fn reference_agrees_on_samples() {
        let samples: Vec<Word> = vec![
            Word::empty(),
            Word(vec![p(0)]),
            Word(vec![p(0), s(1)]),
            Word(vec![p(0), b(), s(1)]),
            Word(vec![p(0), p(1)]),
            Word(vec![p(0), p(1), s(2)]),
            Word(vec![s(1)]),
            Word(vec![b(), s(1)]),
            Word(vec![p(0), s(1), b(), s(2)]),
            Word(vec![p(0), s(1), p(2)]),
        ];
        for w in samples {
            assert_eq!(
                classify(&w).verdict.is_monothreaded(),
                in_language_reference(&w),
                "disagreement on {w}"
            );
        }
    }
}
