//! Static instrumentation for execution-time verification (paper §3).
//!
//! Inserts the dynamic checks the static phase asked for:
//!
//! * `CC` (collective check) **before each suspect MPI collective** and
//!   **before `return` statements** of functions containing suspect
//!   collectives — the color all-reduce of PARCOACH's Algorithm 3;
//! * a **monothread assertion** before collectives whose context could
//!   not be proven (`S_ipw`);
//! * **concurrency counters** around possibly-concurrent monothreaded
//!   regions (`S_cc`).
//!
//! "The cost of the runtime checks is limited by a selective
//! instrumentation, avoiding unnecessary checks": functions with no
//! warnings receive no checks at all in [`InstrumentMode::Selective`].
//! [`InstrumentMode::Full`] instruments every collective and every
//! return of every collective-bearing function — the naive baseline the
//! ablation experiment (E5) compares against.

use crate::report::StaticReport;
use parcoach_ir::func::{FuncIr, Module};
use parcoach_ir::instr::{CheckOp, Instr, MpiIr, Terminator};
use parcoach_ir::types::{BlockId, RegionId};
use std::collections::{HashMap, HashSet};

/// How aggressively to instrument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InstrumentMode {
    /// Only what the static analysis demanded (the paper's approach).
    #[default]
    Selective,
    /// Every collective and return in collective-bearing functions (the
    /// no-static-analysis baseline).
    Full,
}

/// Counters describing what was inserted (ablation metric).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InstrumentStats {
    /// `CC` calls guarding collectives.
    pub cc_collective: usize,
    /// `CC` calls at returns.
    pub cc_return: usize,
    /// Monothread assertions.
    pub monothread_asserts: usize,
    /// Concurrency counter enter/exit pairs.
    pub concurrency_sites: usize,
    /// Point-to-point epoch census checks (before `MPI_Finalize`).
    pub p2p_epochs: usize,
}

impl InstrumentStats {
    /// Total inserted checks.
    pub fn total(&self) -> usize {
        self.cc_collective
            + self.cc_return
            + self.monothread_asserts
            + self.concurrency_sites
            + self.p2p_epochs
    }
}

/// Instrument a module according to the static report. Returns the
/// transformed module and insertion statistics.
///
/// The input module is cloned; the original stays pristine (the compile-
/// time benchmark measures exactly this pass).
pub fn instrument_module(
    m: &Module,
    report: &StaticReport,
    mode: InstrumentMode,
) -> (Module, InstrumentStats) {
    let mut out = m.clone();
    let mut stats = InstrumentStats::default();

    // Index the plan per function. (`suspect_collectives` is carried in
    // the plan for reporting; CC coverage is function-granular via
    // `cc_functions`, which the pipeline derives from the suspects.)
    let mut mono_checks: HashMap<&str, HashSet<BlockId>> = HashMap::new();
    for (f, b) in &report.plan.monothread_checks {
        mono_checks.entry(f).or_default().insert(*b);
    }
    let mut conc_sites: HashMap<&str, Vec<(u32, u32)>> = HashMap::new();
    for (f, region, site) in &report.plan.concurrency_sites {
        conc_sites.entry(f).or_default().push((*region, *site));
    }
    let cc_funcs: HashSet<&str> = report
        .plan
        .cc_functions
        .iter()
        .map(|s| s.as_str())
        .collect();

    let p2p_funcs: HashSet<&str> = report
        .plan
        .p2p_epoch_functions
        .iter()
        .map(|s| s.as_str())
        .collect();
    // Full mode guards every finalize when the module has p2p traffic
    // anywhere (the counters are world-global; the suspect send may
    // live in a different function than the finalize).
    let module_has_p2p = m.funcs.iter().any(|f| f.has_p2p());

    for func in &mut out.funcs {
        let name = func.name.clone();
        let full = mode == InstrumentMode::Full && func.has_mpi();
        let cc_here = full || cc_funcs.contains(name.as_str());
        let mono_blocks = mono_checks.get(name.as_str()).cloned().unwrap_or_default();

        instrument_collectives(func, cc_here, &mono_blocks, &mut stats);

        if cc_here {
            instrument_returns(func, &mut stats);
        }

        if let Some(sites) = conc_sites.get(name.as_str()) {
            for &(region, site) in sites {
                if instrument_region_counter(func, RegionId(region), site) {
                    stats.concurrency_sites += 1;
                }
            }
        }

        if (full && module_has_p2p) || p2p_funcs.contains(name.as_str()) {
            instrument_p2p_epochs(func, &mut stats);
        }
    }

    (out, stats)
}

/// Insert `CC` + monothread asserts before collectives.
fn instrument_collectives(
    func: &mut FuncIr,
    cc_here: bool,
    mono_blocks: &HashSet<BlockId>,
    stats: &mut InstrumentStats,
) {
    for bidx in 0..func.blocks.len() {
        let bid = BlockId(bidx as u32);
        // When a function is CC-instrumented, *every* collective in it
        // gets a CC — a mismatch can pair any two collectives across
        // processes, so partial coverage would miss errors. Suspect
        // blocks additionally get the monothread assert.
        let needs_cc = cc_here;
        let block = &mut func.blocks[bidx];
        let mut i = 0;
        while i < block.instrs.len() {
            // Data collectives and the communicator-management
            // collectives (split/dup, which synchronize their parent)
            // are guarded alike.
            let (what, color, comm, span) = match &block.instrs[i] {
                Instr::Mpi {
                    op: MpiIr::Collective { kind, comm, .. },
                    span,
                    ..
                } => (kind.mpi_name(), kind.color(), *comm, *span),
                Instr::Mpi { op, span, .. } => match op.comm_mgmt() {
                    Some((name, parent)) => {
                        let color = if name == "MPI_Comm_split" {
                            parcoach_ir::instr::COLOR_COMM_SPLIT
                        } else {
                            parcoach_ir::instr::COLOR_COMM_DUP
                        };
                        (name, color, Some(parent), *span)
                    }
                    None => {
                        i += 1;
                        continue;
                    }
                },
                _ => {
                    i += 1;
                    continue;
                }
            };
            let mut inserted = 0;
            if mono_blocks.contains(&bid) {
                block
                    .instrs
                    .insert(i, Instr::Check(CheckOp::AssertMonothread { what, span }));
                stats.monothread_asserts += 1;
                inserted += 1;
            }
            if needs_cc {
                // The CC runs on the guarded collective's communicator
                // (see CheckOp::CollectiveCc).
                block
                    .instrs
                    .insert(i, Instr::Check(CheckOp::CollectiveCc { color, comm, span }));
                stats.cc_collective += 1;
                inserted += 1;
            }
            i += inserted + 1;
        }
    }
}

/// Append a `ReturnCc` check at the end of every returning block.
fn instrument_returns(func: &mut FuncIr, stats: &mut InstrumentStats) {
    for block in &mut func.blocks {
        if let Terminator::Return { span, .. } = block.term {
            block.instrs.push(Instr::Check(CheckOp::ReturnCc { span }));
            stats.cc_return += 1;
        }
    }
}

/// Insert a `P2pEpoch` census immediately before every `MPI_Finalize`:
/// the communicators' final synchronization point, where every buffered
/// message must have been received (MPI semantics) — so unbalanced
/// per-communicator send/receive totals are a definite error.
fn instrument_p2p_epochs(func: &mut FuncIr, stats: &mut InstrumentStats) {
    for block in &mut func.blocks {
        let mut i = 0;
        while i < block.instrs.len() {
            if let Instr::Mpi {
                op: MpiIr::Finalize,
                span,
                ..
            } = &block.instrs[i]
            {
                let span = *span;
                block
                    .instrs
                    .insert(i, Instr::Check(CheckOp::P2pEpoch { span }));
                stats.p2p_epochs += 1;
                i += 1;
            }
            i += 1;
        }
    }
}

/// Place `ConcEnter` at the region's body entry and `ConcExit` in its end
/// directive block. Returns false when the region cannot be resolved.
fn instrument_region_counter(func: &mut FuncIr, region: RegionId, site: u32) -> bool {
    let Some(body_entry) = crate::concurrency::region_body_entry(func, region) else {
        return false;
    };
    // Locate the end-directive block of the region.
    let end_block = func.iter_blocks().find_map(|(id, b)| {
        b.directive()
            .filter(|d| d.closes_region() && d.region() == Some(region))
            .map(|_| id)
    });
    let Some(end_block) = end_block else {
        return false;
    };
    let span = func.block(body_entry).span;
    func.block_mut(body_entry)
        .instrs
        .insert(0, Instr::Check(CheckOp::ConcEnter { site, span }));
    func.block_mut(end_block)
        .instrs
        .push(Instr::Check(CheckOp::ConcExit { site }));
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AnalysisSession;
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;
    use parcoach_ir::verify::verify_module;

    fn pipeline(src: &str, mode: InstrumentMode) -> (Module, InstrumentStats) {
        let unit = parse_and_check("t.mh", src).expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        let report = AnalysisSession::builder().build().check_module(&m);
        let (instr, stats) = instrument_module(&m, &report, mode);
        let errs = verify_module(&instr);
        assert!(errs.is_empty(), "instrumented module must verify: {errs:?}");
        (instr, stats)
    }

    #[test]
    fn clean_program_gets_no_checks() {
        let (_m, stats) = pipeline(
            "fn main() { MPI_Init(); MPI_Barrier(); MPI_Finalize(); }",
            InstrumentMode::Selective,
        );
        assert_eq!(
            stats.total(),
            0,
            "selective instrumentation on a clean program"
        );
    }

    #[test]
    fn full_mode_instruments_clean_program() {
        let (_m, stats) = pipeline(
            "fn main() { MPI_Init(); MPI_Barrier(); MPI_Finalize(); }",
            InstrumentMode::Full,
        );
        assert_eq!(stats.cc_collective, 1);
        assert_eq!(stats.cc_return, 1);
    }

    #[test]
    fn rank_dependent_barrier_gets_cc_and_return_cc() {
        let (m, stats) = pipeline(
            "fn main() { if (rank() == 0) { MPI_Barrier(); } }",
            InstrumentMode::Selective,
        );
        assert_eq!(stats.cc_collective, 1);
        assert_eq!(stats.cc_return, 1);
        let f = m.main().unwrap();
        let has_cc = f.blocks.iter().any(|b| {
            b.instrs
                .iter()
                .any(|i| matches!(i, Instr::Check(CheckOp::CollectiveCc { .. })))
        });
        assert!(has_cc);
    }

    #[test]
    fn multithreaded_collective_gets_assert() {
        let (_m, stats) = pipeline(
            "fn main() { parallel { MPI_Barrier(); } }",
            InstrumentMode::Selective,
        );
        assert!(stats.monothread_asserts >= 1);
        assert!(stats.cc_collective >= 1);
    }

    #[test]
    fn concurrent_singles_get_counters() {
        let (m, stats) = pipeline(
            "fn main() {
                parallel {
                    single nowait { MPI_Barrier(); }
                    single { MPI_Allreduce(1, SUM); }
                }
            }",
            InstrumentMode::Selective,
        );
        assert_eq!(stats.concurrency_sites, 2);
        let f = m.main().unwrap();
        let enters = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Check(CheckOp::ConcEnter { .. })))
            .count();
        let exits = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Check(CheckOp::ConcExit { .. })))
            .count();
        assert_eq!(enters, 2);
        assert_eq!(exits, 2);
    }

    #[test]
    fn selective_beats_full_on_mixed_program() {
        let src = "
            fn clean() { MPI_Barrier(); }
            fn dirty() { if (rank() == 0) { MPI_Barrier(); } }
            fn main() { clean(); dirty(); }
        ";
        let (_s, sel) = pipeline(src, InstrumentMode::Selective);
        let (_f, full) = pipeline(src, InstrumentMode::Full);
        assert!(
            sel.total() < full.total(),
            "selective {sel:?} must insert fewer checks than full {full:?}"
        );
    }

    #[test]
    fn original_module_untouched() {
        let unit = parse_and_check("t.mh", "fn main() { if (rank() == 0) { MPI_Barrier(); } }")
            .expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        let before = m.total_instrs();
        let report = AnalysisSession::builder().build().check_module(&m);
        let _ = instrument_module(&m, &report, InstrumentMode::Selective);
        assert_eq!(m.total_instrs(), before);
    }
}
