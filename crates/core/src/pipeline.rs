//! The end-to-end static phase: run all three verification properties
//! over a module and assemble the warning report + instrumentation plan.

use crate::concurrency::check_concurrency;
use crate::matching::{check_matching, MatchingOptions};
use crate::mono::check_monothread;
use crate::pw::{compute_pw, InitialContext};
use crate::report::{InstrumentationPlan, StaticReport, StaticWarning, WarningKind};
use parcoach_front::ast::ThreadLevel;
use parcoach_ir::dom::{DomTree, PostDomTree};
use parcoach_ir::func::Module;
use parcoach_ir::instr::{Instr, MpiIr};
use parcoach_ir::loops::LoopInfo;
use std::collections::HashSet;

/// Tuning knobs for the static phase.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Context `main` starts in (the paper's "initial level" option).
    pub entry_context: InitialContext,
    /// Apply the balanced-arms refinement in the matching phase.
    pub refine_matching: bool,
    /// Emit `InsufficientThreadLevel` warnings.
    pub check_thread_level: bool,
    /// Run the non-blocking request life-cycle pass (`request`). On
    /// request-free modules disabling it is report-invisible — pinned by
    /// the `no_request_modules_match_blocking_path` property test.
    pub check_requests: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            entry_context: InitialContext::Sequential,
            refine_matching: true,
            check_thread_level: true,
            check_requests: true,
        }
    }
}

/// Run the complete static analysis over a lowered module on the
/// process-wide pool (see [`analyze_module_with`]).
pub fn analyze_module(m: &Module, opts: &AnalysisOptions) -> StaticReport {
    analyze_module_with(m, opts, parcoach_pool::global())
}

/// The three per-function phases' output for one function, produced on a
/// pool worker and merged into the report in function order.
struct FuncAnalysis {
    warnings: Vec<StaticWarning>,
    /// Collective blocks needing `CC` instrumentation (phases 1–3, in
    /// phase order).
    suspects: Vec<parcoach_ir::types::BlockId>,
    /// Phase-1 suspects also need monothread asserts.
    monothread_checks: Vec<parcoach_ir::types::BlockId>,
    /// Phase-2 `(region, site)` pairs, in discovery order (site ids are
    /// renumbered globally after the merge).
    concurrency_sites: Vec<(u32, u32)>,
    needs_cc: bool,
    tainted: Vec<String>,
    required_level: Option<ThreadLevel>,
    pdf_candidates: usize,
    pdf_confirmed: usize,
}

/// Phases 1–3 for one function. Pure: reads only the function, the
/// (already fixed) interprocedural contexts and the communicator
/// resolution, so every function can run on a different worker.
fn analyze_function(
    f: &parcoach_ir::func::FuncIr,
    ctxs: &crate::context::CallContexts,
    comms: &crate::comm::ModuleComms,
    opts: &AnalysisOptions,
) -> FuncAnalysis {
    let init = ctxs.context_of(&f.name);
    let pw = match ctxs.pw_of(&f.name) {
        Some(pw) => pw.clone(),
        None => compute_pw(f, init),
    };
    let mut out = FuncAnalysis {
        warnings: Vec::new(),
        suspects: Vec::new(),
        monothread_checks: Vec::new(),
        concurrency_sites: Vec::new(),
        needs_cc: false,
        tainted: Vec::new(),
        required_level: None,
        pdf_candidates: 0,
        pdf_confirmed: 0,
    };

    let fc = comms.of_func(&f.name);

    // Phase 1 — monothread contexts.
    let mono = check_monothread(f, &pw, ctxs);
    out.required_level = mono.required_level;
    out.suspects.extend(mono.suspects.iter().copied());
    out.monothread_checks.extend(mono.suspects.iter().copied());
    out.needs_cc |= !mono.suspects.is_empty();
    out.warnings.extend(mono.warnings);

    // Phase 2 — sequential order of collectives (per communicator).
    let dom = DomTree::compute(f);
    let loops = LoopInfo::compute(f, &dom);
    let conc = check_concurrency(f, &pw, &loops, &fc, &comms.table);
    out.suspects.extend(conc.suspects.iter().copied());
    out.concurrency_sites
        .extend(conc.sites.iter().map(|(region, site)| (region.0, *site)));
    out.needs_cc |= !conc.suspects.is_empty();
    out.warnings.extend(conc.warnings);
    if let Some(l) = conc.required_level {
        out.required_level = Some(out.required_level.map_or(l, |cur| cur.max(l)));
    }

    // Phase 3 — inter-process matching (Algorithm 1, per communicator).
    let pdt = PostDomTree::compute(f);
    let mat = check_matching(
        f,
        ctxs,
        &pdt,
        &fc,
        &comms.table,
        MatchingOptions {
            refine: opts.refine_matching,
        },
    );
    out.suspects.extend(mat.suspects.iter().copied());
    out.needs_cc |= !mat.suspects.is_empty();
    out.tainted = mat.tainted_callees;
    out.pdf_candidates = mat.candidates_before_refinement;
    out.pdf_confirmed = mat.candidates_confirmed;
    out.warnings.extend(mat.warnings);
    out
}

/// Run the complete static analysis over a lowered module, fanning the
/// per-function phases out over `pool`.
///
/// The report is **byte-identical for any pool width**: workers fill one
/// slot per function and the merge walks the slots in function order, so
/// warning order, plan order and the global site renumbering all match
/// the sequential (`jobs = 1`) walk exactly.
pub fn analyze_module_with(
    m: &Module,
    opts: &AnalysisOptions,
    pool: &parcoach_pool::Pool,
) -> StaticReport {
    let mut report = StaticReport::default();
    let ctxs = crate::context::compute_contexts_with(m, opts.entry_context, pool);
    let comms = crate::comm::compute_comms(m);

    // Interprocedural phase-1 findings: collective-bearing functions
    // called from multithreaded contexts.
    for (caller, callee, span) in &ctxs.multithreaded_calls {
        report.warnings.push(StaticWarning {
            kind: WarningKind::MultithreadedCall,
            func: caller.clone(),
            message: format!(
                "`{callee}` executes MPI collectives but is called from a \
                 multithreaded context; every thread of the team will run its \
                 collectives"
            ),
            span: *span,
            related: Vec::new(),
        });
    }

    // Per-function fan-out: the phases only read `f` and the fixed
    // interprocedural facts.
    let per_func = pool.par_map(&m.funcs, |f| analyze_function(f, &ctxs, &comms, opts));

    let mut cc_functions: HashSet<String> = HashSet::new();
    let mut tainted: Vec<String> = Vec::new();
    let mut required_level = ThreadLevel::Single;

    // Merge in function order — the same order the sequential loop used.
    for (f, fa) in m.funcs.iter().zip(per_func) {
        report
            .contexts
            .push((f.name.clone(), ctxs.context_of(&f.name)));
        if let Some(l) = fa.required_level {
            required_level = required_level.max(l);
        }
        for b in &fa.suspects {
            report.plan.suspect_collectives.push((f.name.clone(), *b));
        }
        for b in &fa.monothread_checks {
            report.plan.monothread_checks.push((f.name.clone(), *b));
        }
        for (region, site) in &fa.concurrency_sites {
            report
                .plan
                .concurrency_sites
                .push((f.name.clone(), *region, *site));
        }
        if fa.needs_cc {
            cc_functions.insert(f.name.clone());
        }
        tainted.extend(fa.tainted);
        report.pdf_candidates += fa.pdf_candidates;
        report.pdf_confirmed += fa.pdf_confirmed;
        report.warnings.extend(fa.warnings);
    }

    // Functions called under divergent conditions need CC inside their
    // bodies too — a mismatch pairs *their* collectives across processes.
    // Propagate down the call graph.
    let mut work = tainted;
    while let Some(fname) = work.pop() {
        if !cc_functions.insert(fname.clone()) {
            continue;
        }
        if let Some(f) = m.func(&fname) {
            for b in &f.blocks {
                for i in &b.instrs {
                    if let Instr::Call { func: callee, .. } = i {
                        if ctxs.bears_collectives(callee) && !cc_functions.contains(callee) {
                            work.push(callee.clone());
                        }
                    }
                }
            }
        }
    }
    report.plan.cc_functions = cc_functions.into_iter().collect();
    report.plan.cc_functions.sort_unstable();

    // Point-to-point matching (module-wide: sends in one function may
    // feed receives in another). Sequential and after the merge, so its
    // warning order is identical at any pool width. The request
    // resolution feeds the matcher (deferred completion of non-blocking
    // receives) and the life-cycle pass.
    let reqs = crate::request::compute_requests(m);
    let p2p = crate::p2p::check_p2p(m, &comms, &reqs);
    report.warnings.extend(p2p.warnings);
    report.plan.p2p_epoch_functions = p2p.epoch_functions;

    // Request life-cycle (leaked request / wait-without-post). A leaked
    // request leaves traffic permanently unconsumed, so the p2p epoch
    // census must also be placed when only this pass warns.
    if opts.check_requests {
        let req = crate::request::check_requests(m, &reqs);
        if !req.warnings.is_empty() && report.plan.p2p_epoch_functions.is_empty() {
            report.plan.p2p_epoch_functions = crate::p2p::finalize_functions(m);
        }
        report.warnings.extend(req.warnings);
    }

    // Renumber concurrency sites globally (per-function numbering would
    // collide at run time).
    renumber_sites(&mut report.plan);

    // Thread-level adequacy.
    report.required_level = required_level;
    report.requested_level = requested_level(m);
    if opts.check_thread_level {
        if let Some(req) = report.requested_level {
            if required_level > req {
                let span = init_span(m).unwrap_or(parcoach_front::span::Span::DUMMY);
                report.warnings.push(StaticWarning {
                    kind: WarningKind::InsufficientThreadLevel,
                    func: "main".into(),
                    message: format!(
                        "program requests {} but its MPI calls require at least {}",
                        req, required_level
                    ),
                    span,
                    related: Vec::new(),
                });
            }
        }
    }

    // Deterministic ordering for stable output.
    report
        .plan
        .suspect_collectives
        .sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    report.plan.suspect_collectives.dedup();
    report
        .plan
        .monothread_checks
        .sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    report.plan.monothread_checks.dedup();
    report
}

/// Make concurrency site ids unique across functions.
fn renumber_sites(plan: &mut InstrumentationPlan) {
    use std::collections::HashMap;
    let mut mapping: HashMap<(String, u32), u32> = HashMap::new();
    let mut next = 0u32;
    for (f, _region, site) in plan.concurrency_sites.iter_mut() {
        let key = (f.clone(), *site);
        let global = *mapping.entry(key).or_insert_with(|| {
            let g = next;
            next += 1;
            g
        });
        *site = global;
    }
}

/// The thread level the program requests via `MPI_Init`/`MPI_Init_thread`
/// (plain `MPI_Init` counts as `SINGLE`).
fn requested_level(m: &Module) -> Option<ThreadLevel> {
    let mut best: Option<ThreadLevel> = None;
    for f in &m.funcs {
        for b in &f.blocks {
            for i in &b.instrs {
                if let Instr::Mpi {
                    op: MpiIr::Init { required },
                    ..
                } = i
                {
                    let l = required.unwrap_or(ThreadLevel::Single);
                    best = Some(best.map_or(l, |cur: ThreadLevel| cur.max(l)));
                }
            }
        }
    }
    best
}

fn init_span(m: &Module) -> Option<parcoach_front::span::Span> {
    for f in &m.funcs {
        for b in &f.blocks {
            for i in &b.instrs {
                if let Instr::Mpi {
                    op: MpiIr::Init { .. },
                    span,
                    ..
                } = i
                {
                    return Some(*span);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;

    fn analyze(src: &str) -> StaticReport {
        let unit = parse_and_check("t.mh", src).expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        analyze_module(&m, &AnalysisOptions::default())
    }

    #[test]
    fn clean_hybrid_program() {
        let r = analyze(
            "fn main() {
                MPI_Init_thread(SERIALIZED);
                parallel num_threads(4) {
                    pfor (i in 0..100) { let x = i * 2; }
                    single { MPI_Barrier(); }
                }
                MPI_Finalize();
            }",
        );
        assert!(r.is_clean(), "{:#?}", r.warnings);
        assert_eq!(r.required_level, ThreadLevel::Serialized);
        assert_eq!(r.requested_level, Some(ThreadLevel::Serialized));
        assert!(r.plan.cc_functions.is_empty());
    }

    #[test]
    fn insufficient_thread_level() {
        let r = analyze(
            "fn main() {
                MPI_Init();
                parallel { single { MPI_Barrier(); } }
                MPI_Finalize();
            }",
        );
        assert_eq!(r.count(WarningKind::InsufficientThreadLevel), 1);
    }

    #[test]
    fn funneled_is_enough_for_master() {
        let r = analyze(
            "fn main() {
                MPI_Init_thread(FUNNELED);
                parallel { master { MPI_Barrier(); } }
                MPI_Finalize();
            }",
        );
        assert_eq!(r.count(WarningKind::InsufficientThreadLevel), 0);
    }

    #[test]
    fn mismatch_plus_multithreaded_together() {
        let r = analyze(
            "fn main() {
                parallel {
                    if (thread_num() == 0) {
                        critical { MPI_Barrier(); }
                    }
                }
            }",
        );
        assert!(r.count(WarningKind::MultithreadedCollective) >= 1);
        assert!(r.count(WarningKind::CollectiveMismatch) >= 1);
        assert!(!r.plan.cc_functions.is_empty());
    }

    #[test]
    fn leaked_request_places_epoch_census() {
        // The only warning is the request-pass leak: the census must
        // still be placed at the finalize so the run catches it.
        let r = analyze(
            "fn main() {
                MPI_Init();
                let peer = size() - 1 - rank();
                let rr = MPI_Irecv(peer, 5);
                MPI_Send(1.0, peer, 5);
                MPI_Finalize();
            }",
        );
        assert_eq!(
            r.count(WarningKind::UnwaitedRequest),
            1,
            "{:#?}",
            r.warnings
        );
        assert_eq!(r.plan.p2p_epoch_functions, vec!["main".to_string()]);
    }

    #[test]
    fn whole_team_nonblocking_requires_multiple() {
        let r = analyze(
            "fn main() {
                MPI_Init_thread(SERIALIZED);
                let peer = size() - 1 - rank();
                parallel num_threads(2) {
                    let s = MPI_Isend(thread_num(), peer, 3);
                    let v = MPI_Wait(s);
                }
                MPI_Finalize();
            }",
        );
        assert_eq!(r.required_level, ThreadLevel::Multiple);
        assert_eq!(r.count(WarningKind::InsufficientThreadLevel), 1);
        // Non-blocking p2p in a team is not itself an error.
        assert_eq!(r.count(WarningKind::MultithreadedCollective), 0);
    }

    #[test]
    fn correct_nonblocking_exchange_is_clean() {
        let r = analyze(
            "fn main() {
                MPI_Init();
                let peer = size() - 1 - rank();
                let rr = MPI_Irecv(MPI_ANY_SOURCE, MPI_ANY_TAG);
                let ss = MPI_Isend(rank() + 1, peer, 5);
                MPI_Waitall(rr, ss);
                MPI_Finalize();
            }",
        );
        assert!(r.is_clean(), "{:#?}", r.warnings);
        assert!(r.plan.p2p_epoch_functions.is_empty());
    }

    #[test]
    fn tainted_callee_gets_cc() {
        let r = analyze(
            "fn exchange() { MPI_Barrier(); MPI_Allreduce(1, SUM); }
             fn main() { if (rank() == 0) { exchange(); } }",
        );
        assert!(
            r.plan.cc_functions.contains(&"exchange".to_string()),
            "divergently-called function must be CC'd: {:?}",
            r.plan.cc_functions
        );
        assert!(r.plan.cc_functions.contains(&"main".to_string()));
    }

    #[test]
    fn taint_propagates_transitively() {
        let r = analyze(
            "fn leaf() { MPI_Barrier(); }
             fn mid() { leaf(); }
             fn main() { if (rank() == 0) { mid(); } }",
        );
        assert!(r.plan.cc_functions.contains(&"mid".to_string()));
        assert!(r.plan.cc_functions.contains(&"leaf".to_string()));
    }

    #[test]
    fn site_ids_globally_unique() {
        let r = analyze(
            "fn a() {
                parallel {
                    single nowait { MPI_Barrier(); }
                    single { MPI_Barrier(); }
                }
             }
             fn b() {
                parallel {
                    single nowait { MPI_Allreduce(1, SUM); }
                    single { MPI_Allreduce(1, SUM); }
                }
             }
             fn main() { a(); b(); }",
        );
        let mut per_pair: Vec<u32> = r.plan.concurrency_sites.iter().map(|s| s.2).collect();
        per_pair.sort_unstable();
        per_pair.dedup();
        // Two clusters (one per function) → two distinct global site ids.
        assert_eq!(per_pair.len(), 2, "{:?}", r.plan.concurrency_sites);
    }

    #[test]
    fn contexts_recorded_for_all_functions() {
        let r = analyze(
            "fn w() { let x = 1; }
             fn main() { parallel { w(); } }",
        );
        assert_eq!(r.contexts.len(), 2);
    }

    #[test]
    fn report_renders() {
        let unit = parse_and_check(
            "demo.mh",
            "fn main() { if (rank() == 0) { MPI_Barrier(); } }",
        )
        .expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        let r = analyze_module(&m, &AnalysisOptions::default());
        let text = r.render(&unit.source_map);
        assert!(text.contains("collective mismatch"), "{text}");
        assert!(text.contains("demo.mh:"), "{text}");
        assert!(text.contains("warning(s)"), "{text}");
    }
}
