//! The end-to-end static phase: build the fact store, run all
//! verification phases over it, assemble the warning report + the
//! instrumentation plan.

use crate::concurrency::check_concurrency;
use crate::facts::AnalysisCx;
use crate::intern::Sym;
use crate::matching::{check_matching, MatchingOptions};
use crate::mono::check_monothread;
use crate::pw::InitialContext;
use crate::report::{InstrumentationPlan, StaticReport, StaticWarning, WarningKind};
use parcoach_front::ast::ThreadLevel;
use parcoach_ir::func::Module;
use parcoach_ir::instr::{Instr, MpiIr};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Tuning knobs for the static phase.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Context `main` starts in (the paper's "initial level" option).
    pub entry_context: InitialContext,
    /// Apply the balanced-arms refinement in the matching phase.
    pub refine_matching: bool,
    /// Emit `InsufficientThreadLevel` warnings.
    pub check_thread_level: bool,
    /// Run the non-blocking request life-cycle pass (`request`). On
    /// request-free modules disabling it is report-invisible — pinned by
    /// the `no_request_modules_match_blocking_path` property test.
    pub check_requests: bool,
    /// Serve `PDF+` queries from the per-function memo over precomputed
    /// frontiers. `false` recomputes the frontier per event set — the
    /// pre-fact-store engine, kept for the E10 ablation and pinned
    /// report-identical by `fact_store_matches_legacy_reports`.
    pub pdf_memo: bool,
    /// Drive the interprocedural context fixpoint with the incremental
    /// worklist (`true`, the default). `false` falls back to the legacy
    /// round-based re-walk — kept for the E13 ablation and the fuzz
    /// differential's `--legacy-fixpoint` mode, and pinned
    /// report-identical by `incr_fixpoint_matches_legacy_reports`.
    pub incr_fixpoint: bool,
    /// Serve the **module-wide** tables (communicator classes, request
    /// classes, the p2p matching core) from the incremental store when
    /// their input fingerprints are green (`true`, the default; only
    /// effective on sessions with a [`crate::query::QueryDb`]). `false`
    /// recomputes them every check — the ablation baseline and the fuzz
    /// differential's `--no-module-memo` mode.
    pub module_memo: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            entry_context: InitialContext::Sequential,
            refine_matching: true,
            check_thread_level: true,
            check_requests: true,
            pdf_memo: true,
            incr_fixpoint: true,
            module_memo: true,
        }
    }
}

/// Wall-clock breakdown of one static-analysis run.
///
/// The sequential stages (`contexts`, `facts`, `p2p`, `requests`) are
/// plain wall times; the per-function stages (`mono`, `concurrency`,
/// `matching`) are summed across pool workers, so at `jobs > 1` they
/// report aggregate CPU time, not elapsed time. `total` is the true
/// end-to-end wall clock. The request/communicator register resolutions
/// are part of `facts`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Interprocedural context fixpoint (incl. parallelism words).
    pub contexts: Duration,
    /// Fact-store construction: dom/post-dom trees, frontiers, loops,
    /// block→event maps, register resolutions, interning.
    pub facts: Duration,
    /// Phase 1 — monothread contexts.
    pub mono: Duration,
    /// Phase 2 — sequential order of collectives.
    pub concurrency: Duration,
    /// Phase 3 — inter-process matching (Algorithm 1, PDF+).
    pub matching: Duration,
    /// Module-wide point-to-point matching.
    pub p2p: Duration,
    /// Request life-cycle pass.
    pub requests: Duration,
    /// End-to-end wall clock of the whole analysis.
    pub total: Duration,
}

impl PhaseTimings {
    /// `(phase name, duration)` rows in pipeline order — the shape the
    /// CLI printer and the bench JSON writer share.
    pub fn lines(&self) -> [(&'static str, Duration); 8] {
        [
            ("contexts", self.contexts),
            ("facts", self.facts),
            ("mono", self.mono),
            ("concurrency", self.concurrency),
            ("matching", self.matching),
            ("p2p", self.p2p),
            ("requests", self.requests),
            ("total", self.total),
        ]
    }
}

/// Atomic accumulator for the per-function phases (workers add their
/// share; relaxed ordering is fine — the sink is read after the pool
/// joins).
#[derive(Default)]
struct TimingSink {
    contexts: AtomicU64,
    facts: AtomicU64,
    mono: AtomicU64,
    concurrency: AtomicU64,
    matching: AtomicU64,
    p2p: AtomicU64,
    requests: AtomicU64,
}

impl TimingSink {
    fn add(cell: &AtomicU64, since: Instant) {
        cell.fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn into_timings(self, total: Duration) -> PhaseTimings {
        let d = |c: AtomicU64| Duration::from_nanos(c.into_inner());
        PhaseTimings {
            contexts: d(self.contexts),
            facts: d(self.facts),
            mono: d(self.mono),
            concurrency: d(self.concurrency),
            matching: d(self.matching),
            p2p: d(self.p2p),
            requests: d(self.requests),
            total,
        }
    }
}

/// The shared timed entry: one cold or warm analysis with a per-phase
/// breakdown and optional cooperative cancellation at phase boundaries.
/// [`crate::session::AnalysisSession`] is the public surface.
pub(crate) fn analyze_timed_impl(
    m: &Module,
    opts: &AnalysisOptions,
    pool: &parcoach_pool::Pool,
    db: Option<&mut crate::query::QueryDb>,
    token: Option<&crate::cancel::CancelToken>,
) -> Result<(StaticReport, PhaseTimings), crate::cancel::Cancelled> {
    let sink = TimingSink::default();
    let t0 = Instant::now();
    let report = analyze_module_inner(m, opts, pool, Some(&sink), db, token)?;
    let timings = sink.into_timings(t0.elapsed());
    Ok((report, timings))
}

/// [`AnalysisSession::check_module`](crate::session::AnalysisSession::check_module)
/// as a free function over an explicit [`crate::query::QueryDb`]: the
/// red-green reconciliation pass runs first, then the pw, CFG and
/// module-table queries are served from cache wherever the fingerprints
/// are green. The report is byte-identical to a cold run — only
/// span-free facts are cached, and the db's span-rebase hook keeps
/// cached divergences aligned with the document (the edit-soak property
/// test pins this).
pub fn analyze_module_db(
    m: &Module,
    opts: &AnalysisOptions,
    pool: &parcoach_pool::Pool,
    db: &mut crate::query::QueryDb,
) -> (StaticReport, PhaseTimings) {
    analyze_timed_impl(m, opts, pool, Some(db), None).expect("no token, cannot cancel")
}

/// The three per-function phases' output for one function, produced on a
/// pool worker and merged into the report in function order. `Default`
/// is the empty analysis — what an entry-unreachable function gets.
#[derive(Default)]
struct FuncAnalysis {
    warnings: Vec<StaticWarning>,
    /// Collective blocks needing `CC` instrumentation (phases 1–3, in
    /// phase order).
    suspects: Vec<parcoach_ir::types::BlockId>,
    /// Phase-1 suspects also need monothread asserts.
    monothread_checks: Vec<parcoach_ir::types::BlockId>,
    /// Phase-2 `(region, site)` pairs, in discovery order (site ids are
    /// renumbered globally after the merge).
    concurrency_sites: Vec<(u32, u32)>,
    needs_cc: bool,
    tainted: Vec<Sym>,
    required_level: Option<ThreadLevel>,
    pdf_candidates: usize,
    pdf_confirmed: usize,
}

/// Phases 1–3 for one function. Pure: reads only the shared fact store,
/// so every function can run on a different worker.
fn analyze_function(
    cx: &AnalysisCx,
    fidx: usize,
    opts: &AnalysisOptions,
    sink: Option<&TimingSink>,
) -> FuncAnalysis {
    let mut out = FuncAnalysis {
        warnings: Vec::new(),
        suspects: Vec::new(),
        monothread_checks: Vec::new(),
        concurrency_sites: Vec::new(),
        needs_cc: false,
        tainted: Vec::new(),
        required_level: None,
        pdf_candidates: 0,
        pdf_confirmed: 0,
    };

    // Phase 1 — monothread contexts.
    let t = Instant::now();
    let mono = check_monothread(cx, fidx);
    if let Some(s) = sink {
        TimingSink::add(&s.mono, t);
    }
    out.required_level = mono.required_level;
    out.suspects.extend(mono.suspects.iter().copied());
    out.monothread_checks.extend(mono.suspects.iter().copied());
    out.needs_cc |= !mono.suspects.is_empty();
    out.warnings.extend(mono.warnings);

    // Phase 2 — sequential order of collectives (per communicator).
    let t = Instant::now();
    let conc = check_concurrency(cx, fidx);
    if let Some(s) = sink {
        TimingSink::add(&s.concurrency, t);
    }
    out.suspects.extend(conc.suspects.iter().copied());
    out.concurrency_sites
        .extend(conc.sites.iter().map(|(region, site)| (region.0, *site)));
    out.needs_cc |= !conc.suspects.is_empty();
    out.warnings.extend(conc.warnings);
    if let Some(l) = conc.required_level {
        out.required_level = Some(out.required_level.map_or(l, |cur| cur.max(l)));
    }

    // Phase 3 — inter-process matching (Algorithm 1, per communicator).
    let t = Instant::now();
    let mat = check_matching(
        cx,
        fidx,
        MatchingOptions {
            refine: opts.refine_matching,
            memoize: opts.pdf_memo,
        },
    );
    if let Some(s) = sink {
        TimingSink::add(&s.matching, t);
    }
    out.suspects.extend(mat.suspects.iter().copied());
    out.needs_cc |= !mat.suspects.is_empty();
    out.tainted = mat.tainted_callees;
    out.pdf_candidates = mat.candidates_before_refinement;
    out.pdf_confirmed = mat.candidates_confirmed;
    out.warnings.extend(mat.warnings);
    out
}

/// Observe a cancellation request, if a token is installed. Called at
/// phase boundaries: a cancelled check may leave freshly computed facts
/// in the db (they are fingerprint-keyed and remain valid — the next
/// check simply starts warmer).
fn checkpoint(token: Option<&crate::cancel::CancelToken>) -> Result<(), crate::cancel::Cancelled> {
    match token {
        Some(t) if t.is_cancelled() => Err(crate::cancel::Cancelled),
        _ => Ok(()),
    }
}

fn analyze_module_inner(
    m: &Module,
    opts: &AnalysisOptions,
    pool: &parcoach_pool::Pool,
    sink: Option<&TimingSink>,
    mut db: Option<&mut crate::query::QueryDb>,
    token: Option<&crate::cancel::CancelToken>,
) -> Result<StaticReport, crate::cancel::Cancelled> {
    let mut report = StaticReport::default();
    checkpoint(token)?;

    // Red-green pass: bring the memo store's fingerprints up to date so
    // the context and fact queries below only miss on real changes.
    if let Some(db) = db.as_deref_mut() {
        db.reconcile_module(m);
    }

    // Interprocedural contexts, then the shared fact store.
    let t = Instant::now();
    let ctxs = if opts.incr_fixpoint {
        crate::context::compute_contexts_db(m, opts.entry_context, pool, db.as_deref_mut())
    } else {
        crate::context::compute_contexts_legacy(m, opts.entry_context, pool, db.as_deref_mut())
    };
    if let Some(s) = sink {
        TimingSink::add(&s.contexts, t);
    }
    checkpoint(token)?;
    let t = Instant::now();
    let cx = AnalysisCx::from_contexts_db(m, ctxs, pool, db.as_deref_mut(), opts.module_memo);
    if let Some(s) = sink {
        TimingSink::add(&s.facts, t);
    }
    checkpoint(token)?;

    // Interprocedural phase-1 findings: collective-bearing functions
    // called from multithreaded contexts. Only for call sites that can
    // actually execute — see `AnalysisCx::reachable`.
    for (caller, callee, span) in &cx.ctxs.multithreaded_calls {
        if !cx.is_reachable_name(caller) {
            continue;
        }
        report.warnings.push(StaticWarning {
            kind: WarningKind::MultithreadedCall,
            func: caller.clone(),
            message: format!(
                "`{callee}` executes MPI collectives but is called from a \
                 multithreaded context; every thread of the team will run its \
                 collectives"
            ),
            span: *span,
            related: Vec::new(),
        });
    }

    // Per-function fan-out: the phases only read the shared facts.
    // Entry-unreachable functions are skipped wholesale — their
    // operations never execute, so any diagnosis would be a guaranteed
    // false positive (and their suspects would bloat the plan).
    let idxs: Vec<usize> = (0..m.funcs.len()).collect();
    let per_func = pool.par_map(&idxs, |&i| {
        if cx.is_reachable(i) {
            analyze_function(&cx, i, opts, sink)
        } else {
            FuncAnalysis::default()
        }
    });
    checkpoint(token)?;

    let mut cc_functions: HashSet<Sym> = HashSet::new();
    let mut tainted: Vec<Sym> = Vec::new();
    let mut required_level = ThreadLevel::Single;

    // Merge in function order — the same order the sequential loop used.
    for (f, fa) in m.funcs.iter().zip(per_func) {
        report
            .contexts
            .push((f.name.clone(), cx.ctxs.context_of(&f.name)));
        if let Some(l) = fa.required_level {
            required_level = required_level.max(l);
        }
        for b in &fa.suspects {
            report.plan.suspect_collectives.push((f.name.clone(), *b));
        }
        for b in &fa.monothread_checks {
            report.plan.monothread_checks.push((f.name.clone(), *b));
        }
        for (region, site) in &fa.concurrency_sites {
            report
                .plan
                .concurrency_sites
                .push((f.name.clone(), *region, *site));
        }
        if fa.needs_cc {
            cc_functions.insert(cx.syms.lookup(&f.name).expect("module functions interned"));
        }
        tainted.extend(fa.tainted);
        report.pdf_candidates += fa.pdf_candidates;
        report.pdf_confirmed += fa.pdf_confirmed;
        report.warnings.extend(fa.warnings);
    }

    // Functions called under divergent conditions need CC inside their
    // bodies too — a mismatch pairs *their* collectives across processes.
    // Propagate down the call graph, entirely on interned symbols.
    let mut work = tainted;
    while let Some(sym) = work.pop() {
        if !cc_functions.insert(sym) {
            continue;
        }
        if let Some(f) = m.func(cx.syms.name(sym)) {
            for b in &f.blocks {
                for i in &b.instrs {
                    if let Instr::Call { func: callee, .. } = i {
                        if cx.ctxs.bears_collectives(callee) {
                            if let Some(cs) = cx.syms.lookup(callee) {
                                if !cc_functions.contains(&cs) {
                                    work.push(cs);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    report.plan.cc_functions = cc_functions
        .into_iter()
        .map(|s| cx.syms.name(s).to_string())
        .collect();
    report.plan.cc_functions.sort_unstable();

    // Point-to-point matching (module-wide: sends in one function may
    // feed receives in another). Sequential and after the merge, so its
    // warning order is identical at any pool width. The request
    // resolution (already in the fact store) feeds the matcher (deferred
    // completion of non-blocking receives) and the life-cycle pass.
    // With the module memo on, the span-free matching core is served
    // wholesale from the store when no function's p2p inputs (sites,
    // waits, comm/request tables, reachability, finalize placement)
    // changed; warning spans are re-read from the live IR either way.
    let t = Instant::now();
    let p2p = match db.filter(|_| opts.module_memo) {
        Some(db) => {
            let key = db.module_p2p_key(m, &cx.reachable);
            match db.p2p_core(key) {
                Some(core) => crate::p2p::materialize_p2p(&core, m),
                None => {
                    let core = std::sync::Arc::new(crate::p2p::p2p_core(&cx));
                    let out = crate::p2p::materialize_p2p(&core, m);
                    db.insert_p2p_core(key, core);
                    out
                }
            }
        }
        None => crate::p2p::check_p2p(&cx),
    };
    if let Some(s) = sink {
        TimingSink::add(&s.p2p, t);
    }
    report.warnings.extend(p2p.warnings);
    report.plan.p2p_epoch_functions = p2p.epoch_functions;
    checkpoint(token)?;

    // Request life-cycle (leaked request / wait-without-post). A leaked
    // request leaves traffic permanently unconsumed, so the p2p epoch
    // census must also be placed when only this pass warns.
    if opts.check_requests {
        let t = Instant::now();
        let req = crate::request::check_requests(&cx);
        if let Some(s) = sink {
            TimingSink::add(&s.requests, t);
        }
        if !req.warnings.is_empty() && report.plan.p2p_epoch_functions.is_empty() {
            report.plan.p2p_epoch_functions = crate::p2p::finalize_functions(m);
        }
        report.warnings.extend(req.warnings);
    }

    // Renumber concurrency sites globally (per-function numbering would
    // collide at run time).
    renumber_sites(&mut report.plan);

    // Thread-level adequacy.
    report.required_level = required_level;
    report.requested_level = requested_level(m);
    if opts.check_thread_level {
        if let Some(req) = report.requested_level {
            if required_level > req {
                let span = init_span(m).unwrap_or(parcoach_front::span::Span::DUMMY);
                report.warnings.push(StaticWarning {
                    kind: WarningKind::InsufficientThreadLevel,
                    func: "main".into(),
                    message: format!(
                        "program requests {} but its MPI calls require at least {}",
                        req, required_level
                    ),
                    span,
                    related: Vec::new(),
                });
            }
        }
    }

    // Deterministic ordering for stable output.
    report
        .plan
        .suspect_collectives
        .sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    report.plan.suspect_collectives.dedup();
    report
        .plan
        .monothread_checks
        .sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    report.plan.monothread_checks.dedup();
    Ok(report)
}

/// Make concurrency site ids unique across functions.
fn renumber_sites(plan: &mut InstrumentationPlan) {
    use std::collections::HashMap;
    let mut mapping: HashMap<(String, u32), u32> = HashMap::new();
    let mut next = 0u32;
    for (f, _region, site) in plan.concurrency_sites.iter_mut() {
        let key = (f.clone(), *site);
        let global = *mapping.entry(key).or_insert_with(|| {
            let g = next;
            next += 1;
            g
        });
        *site = global;
    }
}

/// The thread level the program requests via `MPI_Init`/`MPI_Init_thread`
/// (plain `MPI_Init` counts as `SINGLE`).
fn requested_level(m: &Module) -> Option<ThreadLevel> {
    let mut best: Option<ThreadLevel> = None;
    for f in &m.funcs {
        for b in &f.blocks {
            for i in &b.instrs {
                if let Instr::Mpi {
                    op: MpiIr::Init { required },
                    ..
                } = i
                {
                    let l = required.unwrap_or(ThreadLevel::Single);
                    best = Some(best.map_or(l, |cur: ThreadLevel| cur.max(l)));
                }
            }
        }
    }
    best
}

fn init_span(m: &Module) -> Option<parcoach_front::span::Span> {
    for f in &m.funcs {
        for b in &f.blocks {
            for i in &b.instrs {
                if let Instr::Mpi {
                    op: MpiIr::Init { .. },
                    span,
                    ..
                } = i
                {
                    return Some(*span);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;

    use crate::session::AnalysisSession;

    fn analyze(src: &str) -> StaticReport {
        let unit = parse_and_check("t.mh", src).expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        AnalysisSession::builder().build().check_module(&m)
    }

    #[test]
    fn clean_hybrid_program() {
        let r = analyze(
            "fn main() {
                MPI_Init_thread(SERIALIZED);
                parallel num_threads(4) {
                    pfor (i in 0..100) { let x = i * 2; }
                    single { MPI_Barrier(); }
                }
                MPI_Finalize();
            }",
        );
        assert!(r.is_clean(), "{:#?}", r.warnings);
        assert_eq!(r.required_level, ThreadLevel::Serialized);
        assert_eq!(r.requested_level, Some(ThreadLevel::Serialized));
        assert!(r.plan.cc_functions.is_empty());
    }

    #[test]
    fn insufficient_thread_level() {
        let r = analyze(
            "fn main() {
                MPI_Init();
                parallel { single { MPI_Barrier(); } }
                MPI_Finalize();
            }",
        );
        assert_eq!(r.count(WarningKind::InsufficientThreadLevel), 1);
    }

    #[test]
    fn funneled_is_enough_for_master() {
        let r = analyze(
            "fn main() {
                MPI_Init_thread(FUNNELED);
                parallel { master { MPI_Barrier(); } }
                MPI_Finalize();
            }",
        );
        assert_eq!(r.count(WarningKind::InsufficientThreadLevel), 0);
    }

    #[test]
    fn mismatch_plus_multithreaded_together() {
        let r = analyze(
            "fn main() {
                parallel {
                    if (thread_num() == 0) {
                        critical { MPI_Barrier(); }
                    }
                }
            }",
        );
        assert!(r.count(WarningKind::MultithreadedCollective) >= 1);
        assert!(r.count(WarningKind::CollectiveMismatch) >= 1);
        assert!(!r.plan.cc_functions.is_empty());
    }

    #[test]
    fn leaked_request_places_epoch_census() {
        // The only warning is the request-pass leak: the census must
        // still be placed at the finalize so the run catches it.
        let r = analyze(
            "fn main() {
                MPI_Init();
                let peer = size() - 1 - rank();
                let rr = MPI_Irecv(peer, 5);
                MPI_Send(1.0, peer, 5);
                MPI_Finalize();
            }",
        );
        assert_eq!(
            r.count(WarningKind::UnwaitedRequest),
            1,
            "{:#?}",
            r.warnings
        );
        assert_eq!(r.plan.p2p_epoch_functions, vec!["main".to_string()]);
    }

    #[test]
    fn whole_team_nonblocking_requires_multiple() {
        let r = analyze(
            "fn main() {
                MPI_Init_thread(SERIALIZED);
                let peer = size() - 1 - rank();
                parallel num_threads(2) {
                    let s = MPI_Isend(thread_num(), peer, 3);
                    let v = MPI_Wait(s);
                }
                MPI_Finalize();
            }",
        );
        assert_eq!(r.required_level, ThreadLevel::Multiple);
        assert_eq!(r.count(WarningKind::InsufficientThreadLevel), 1);
        // Non-blocking p2p in a team is not itself an error.
        assert_eq!(r.count(WarningKind::MultithreadedCollective), 0);
    }

    #[test]
    fn correct_nonblocking_exchange_is_clean() {
        let r = analyze(
            "fn main() {
                MPI_Init();
                let peer = size() - 1 - rank();
                let rr = MPI_Irecv(MPI_ANY_SOURCE, MPI_ANY_TAG);
                let ss = MPI_Isend(rank() + 1, peer, 5);
                MPI_Waitall(rr, ss);
                MPI_Finalize();
            }",
        );
        assert!(r.is_clean(), "{:#?}", r.warnings);
        assert!(r.plan.p2p_epoch_functions.is_empty());
    }

    #[test]
    fn tainted_callee_gets_cc() {
        let r = analyze(
            "fn exchange() { MPI_Barrier(); MPI_Allreduce(1, SUM); }
             fn main() { if (rank() == 0) { exchange(); } }",
        );
        assert!(
            r.plan.cc_functions.contains(&"exchange".to_string()),
            "divergently-called function must be CC'd: {:?}",
            r.plan.cc_functions
        );
        assert!(r.plan.cc_functions.contains(&"main".to_string()));
    }

    #[test]
    fn taint_propagates_transitively() {
        let r = analyze(
            "fn leaf() { MPI_Barrier(); }
             fn mid() { leaf(); }
             fn main() { if (rank() == 0) { mid(); } }",
        );
        assert!(r.plan.cc_functions.contains(&"mid".to_string()));
        assert!(r.plan.cc_functions.contains(&"leaf".to_string()));
    }

    #[test]
    fn site_ids_globally_unique() {
        let r = analyze(
            "fn a() {
                parallel {
                    single nowait { MPI_Barrier(); }
                    single { MPI_Barrier(); }
                }
             }
             fn b() {
                parallel {
                    single nowait { MPI_Allreduce(1, SUM); }
                    single { MPI_Allreduce(1, SUM); }
                }
             }
             fn main() { a(); b(); }",
        );
        let mut per_pair: Vec<u32> = r.plan.concurrency_sites.iter().map(|s| s.2).collect();
        per_pair.sort_unstable();
        per_pair.dedup();
        // Two clusters (one per function) → two distinct global site ids.
        assert_eq!(per_pair.len(), 2, "{:?}", r.plan.concurrency_sites);
    }

    #[test]
    fn contexts_recorded_for_all_functions() {
        let r = analyze(
            "fn w() { let x = 1; }
             fn main() { parallel { w(); } }",
        );
        assert_eq!(r.contexts.len(), 2);
    }

    /// The session's timed run is behaviorally identical to an untimed
    /// one and records every phase.
    #[test]
    fn timed_analysis_matches_untimed_and_covers_phases() {
        let unit = parse_and_check(
            "t.mh",
            "fn exchange() { MPI_Barrier(); }
             fn main() {
                 MPI_Init();
                 if (rank() == 0) { exchange(); }
                 let peer = size() - 1 - rank();
                 let rr = MPI_Irecv(peer, 5);
                 MPI_Send(1.0, peer, 5);
                 let v = MPI_Wait(rr);
                 MPI_Finalize();
             }",
        )
        .expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        let plain = AnalysisSession::builder().build().check_module(&m);
        let mut timed_session = AnalysisSession::builder().build();
        let timed = timed_session.check_module(&m);
        let t = *timed_session.timings().expect("timings recorded");
        assert_eq!(format!("{plain:?}"), format!("{timed:?}"));
        assert!(t.total > Duration::ZERO);
        // Every phase ran (well-formed rows, total listed last).
        let lines = t.lines();
        assert_eq!(lines.len(), 8);
        assert_eq!(lines[lines.len() - 1].0, "total");
        assert!(t.contexts + t.facts <= t.total * 2, "sane magnitudes");
    }

    /// A pre-cancelled token aborts at the first checkpoint; a fresh
    /// token lets the same session produce the normal report, and an
    /// expired deadline cancels like an explicit request.
    #[test]
    fn cancellation_observed_at_phase_boundaries() {
        let unit = parse_and_check("t.mh", "fn main() { if (rank() == 0) { MPI_Barrier(); } }")
            .expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        let mut s = AnalysisSession::builder().incremental(true).build();
        let cancelled = crate::cancel::CancelToken::new();
        cancelled.cancel();
        assert!(s.check_module_cancellable(&m, &cancelled).is_err());
        let expired = crate::cancel::CancelToken::with_deadline(Duration::ZERO);
        assert!(s.check_module_cancellable(&m, &expired).is_err());
        let fresh = crate::cancel::CancelToken::new();
        let report = s
            .check_module_cancellable(&m, &fresh)
            .expect("not cancelled");
        let cold = AnalysisSession::builder().build().check_module(&m);
        assert_eq!(format!("{report:?}"), format!("{cold:?}"));
    }

    #[test]
    fn uncached_pdf_path_matches_memoized() {
        let src = "fn exchange() { MPI_Barrier(); }
             fn main() {
                 if (rank() == 0) { exchange(); } else { exchange(); }
                 if (rank() > 1) { MPI_Barrier(); }
                 for (i in 0..3) { let x = MPI_Allreduce(i, SUM); }
             }";
        let unit = parse_and_check("t.mh", src).expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        let memo = AnalysisSession::builder().build().check_module(&m);
        let raw = AnalysisSession::builder()
            .pdf_memo(false)
            .build()
            .check_module(&m);
        assert_eq!(format!("{memo:?}"), format!("{raw:?}"));
    }

    #[test]
    fn report_renders() {
        let unit = parse_and_check(
            "demo.mh",
            "fn main() { if (rank() == 0) { MPI_Barrier(); } }",
        )
        .expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        let r = AnalysisSession::builder().build().check_module(&m);
        let text = r.render(&unit.source_map);
        assert!(text.contains("collective mismatch"), "{text}");
        assert!(text.contains("demo.mh:"), "{text}");
        assert!(text.contains("warning(s)"), "{text}");
    }
}
