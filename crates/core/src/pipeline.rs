//! The end-to-end static phase: run all three verification properties
//! over a module and assemble the warning report + instrumentation plan.

use crate::concurrency::check_concurrency;
use crate::context::compute_contexts;
use crate::matching::{check_matching, MatchingOptions};
use crate::mono::check_monothread;
use crate::pw::{compute_pw, InitialContext};
use crate::report::{InstrumentationPlan, StaticReport, StaticWarning, WarningKind};
use parcoach_front::ast::ThreadLevel;
use parcoach_ir::dom::{DomTree, PostDomTree};
use parcoach_ir::func::Module;
use parcoach_ir::instr::{Instr, MpiIr};
use parcoach_ir::loops::LoopInfo;
use std::collections::HashSet;

/// Tuning knobs for the static phase.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Context `main` starts in (the paper's "initial level" option).
    pub entry_context: InitialContext,
    /// Apply the balanced-arms refinement in the matching phase.
    pub refine_matching: bool,
    /// Emit `InsufficientThreadLevel` warnings.
    pub check_thread_level: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            entry_context: InitialContext::Sequential,
            refine_matching: true,
            check_thread_level: true,
        }
    }
}

/// Run the complete static analysis over a lowered module.
pub fn analyze_module(m: &Module, opts: &AnalysisOptions) -> StaticReport {
    let mut report = StaticReport::default();
    let ctxs = compute_contexts(m, opts.entry_context);

    // Interprocedural phase-1 findings: collective-bearing functions
    // called from multithreaded contexts.
    for (caller, callee, span) in &ctxs.multithreaded_calls {
        report.warnings.push(StaticWarning {
            kind: WarningKind::MultithreadedCall,
            func: caller.clone(),
            message: format!(
                "`{callee}` executes MPI collectives but is called from a \
                 multithreaded context; every thread of the team will run its \
                 collectives"
            ),
            span: *span,
            related: Vec::new(),
        });
    }

    let mut cc_functions: HashSet<String> = HashSet::new();
    let mut tainted: Vec<String> = Vec::new();
    let mut required_level = ThreadLevel::Single;

    for f in &m.funcs {
        let init = ctxs.context_of(&f.name);
        report.contexts.push((f.name.clone(), init));
        let pw = match ctxs.pw_of(&f.name) {
            Some(pw) => pw.clone(),
            None => compute_pw(f, init),
        };

        // Phase 1 — monothread contexts.
        let mono = check_monothread(f, &pw, &ctxs);
        if let Some(l) = mono.required_level {
            required_level = required_level.max(l);
        }
        for b in &mono.suspects {
            report.plan.suspect_collectives.push((f.name.clone(), *b));
            report.plan.monothread_checks.push((f.name.clone(), *b));
        }
        if !mono.suspects.is_empty() {
            cc_functions.insert(f.name.clone());
        }
        report.warnings.extend(mono.warnings);

        // Phase 2 — sequential order of collectives.
        let dom = DomTree::compute(f);
        let loops = LoopInfo::compute(f, &dom);
        let conc = check_concurrency(f, &pw, &loops);
        for b in &conc.suspects {
            report.plan.suspect_collectives.push((f.name.clone(), *b));
        }
        for (region, site) in &conc.sites {
            report
                .plan
                .concurrency_sites
                .push((f.name.clone(), region.0, *site));
        }
        if !conc.suspects.is_empty() {
            cc_functions.insert(f.name.clone());
        }
        report.warnings.extend(conc.warnings);

        // Phase 3 — inter-process matching (Algorithm 1).
        let pdt = PostDomTree::compute(f);
        let mat = check_matching(
            f,
            &ctxs,
            &pdt,
            MatchingOptions {
                refine: opts.refine_matching,
            },
        );
        for b in &mat.suspects {
            report.plan.suspect_collectives.push((f.name.clone(), *b));
        }
        if !mat.suspects.is_empty() {
            cc_functions.insert(f.name.clone());
        }
        tainted.extend(mat.tainted_callees.iter().cloned());
        report.pdf_candidates += mat.candidates_before_refinement;
        report.pdf_confirmed += mat.candidates_confirmed;
        report.warnings.extend(mat.warnings);
    }

    // Functions called under divergent conditions need CC inside their
    // bodies too — a mismatch pairs *their* collectives across processes.
    // Propagate down the call graph.
    let mut work = tainted;
    while let Some(fname) = work.pop() {
        if !cc_functions.insert(fname.clone()) {
            continue;
        }
        if let Some(f) = m.func(&fname) {
            for b in &f.blocks {
                for i in &b.instrs {
                    if let Instr::Call { func: callee, .. } = i {
                        if ctxs.bears_collectives(callee) && !cc_functions.contains(callee) {
                            work.push(callee.clone());
                        }
                    }
                }
            }
        }
    }
    report.plan.cc_functions = cc_functions.into_iter().collect();
    report.plan.cc_functions.sort_unstable();

    // Renumber concurrency sites globally (per-function numbering would
    // collide at run time).
    renumber_sites(&mut report.plan);

    // Thread-level adequacy.
    report.required_level = required_level;
    report.requested_level = requested_level(m);
    if opts.check_thread_level {
        if let Some(req) = report.requested_level {
            if required_level > req {
                let span = init_span(m).unwrap_or(parcoach_front::span::Span::DUMMY);
                report.warnings.push(StaticWarning {
                    kind: WarningKind::InsufficientThreadLevel,
                    func: "main".into(),
                    message: format!(
                        "program requests {} but its MPI calls require at least {}",
                        req, required_level
                    ),
                    span,
                    related: Vec::new(),
                });
            }
        }
    }

    // Deterministic ordering for stable output.
    report
        .plan
        .suspect_collectives
        .sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    report.plan.suspect_collectives.dedup();
    report
        .plan
        .monothread_checks
        .sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    report.plan.monothread_checks.dedup();
    report
}

/// Make concurrency site ids unique across functions.
fn renumber_sites(plan: &mut InstrumentationPlan) {
    use std::collections::HashMap;
    let mut mapping: HashMap<(String, u32), u32> = HashMap::new();
    let mut next = 0u32;
    for (f, _region, site) in plan.concurrency_sites.iter_mut() {
        let key = (f.clone(), *site);
        let global = *mapping.entry(key).or_insert_with(|| {
            let g = next;
            next += 1;
            g
        });
        *site = global;
    }
}

/// The thread level the program requests via `MPI_Init`/`MPI_Init_thread`
/// (plain `MPI_Init` counts as `SINGLE`).
fn requested_level(m: &Module) -> Option<ThreadLevel> {
    let mut best: Option<ThreadLevel> = None;
    for f in &m.funcs {
        for b in &f.blocks {
            for i in &b.instrs {
                if let Instr::Mpi {
                    op: MpiIr::Init { required },
                    ..
                } = i
                {
                    let l = required.unwrap_or(ThreadLevel::Single);
                    best = Some(best.map_or(l, |cur: ThreadLevel| cur.max(l)));
                }
            }
        }
    }
    best
}

fn init_span(m: &Module) -> Option<parcoach_front::span::Span> {
    for f in &m.funcs {
        for b in &f.blocks {
            for i in &b.instrs {
                if let Instr::Mpi {
                    op: MpiIr::Init { .. },
                    span,
                    ..
                } = i
                {
                    return Some(*span);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;

    fn analyze(src: &str) -> StaticReport {
        let unit = parse_and_check("t.mh", src).expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        analyze_module(&m, &AnalysisOptions::default())
    }

    #[test]
    fn clean_hybrid_program() {
        let r = analyze(
            "fn main() {
                MPI_Init_thread(SERIALIZED);
                parallel num_threads(4) {
                    pfor (i in 0..100) { let x = i * 2; }
                    single { MPI_Barrier(); }
                }
                MPI_Finalize();
            }",
        );
        assert!(r.is_clean(), "{:#?}", r.warnings);
        assert_eq!(r.required_level, ThreadLevel::Serialized);
        assert_eq!(r.requested_level, Some(ThreadLevel::Serialized));
        assert!(r.plan.cc_functions.is_empty());
    }

    #[test]
    fn insufficient_thread_level() {
        let r = analyze(
            "fn main() {
                MPI_Init();
                parallel { single { MPI_Barrier(); } }
                MPI_Finalize();
            }",
        );
        assert_eq!(r.count(WarningKind::InsufficientThreadLevel), 1);
    }

    #[test]
    fn funneled_is_enough_for_master() {
        let r = analyze(
            "fn main() {
                MPI_Init_thread(FUNNELED);
                parallel { master { MPI_Barrier(); } }
                MPI_Finalize();
            }",
        );
        assert_eq!(r.count(WarningKind::InsufficientThreadLevel), 0);
    }

    #[test]
    fn mismatch_plus_multithreaded_together() {
        let r = analyze(
            "fn main() {
                parallel {
                    if (thread_num() == 0) {
                        critical { MPI_Barrier(); }
                    }
                }
            }",
        );
        assert!(r.count(WarningKind::MultithreadedCollective) >= 1);
        assert!(r.count(WarningKind::CollectiveMismatch) >= 1);
        assert!(!r.plan.cc_functions.is_empty());
    }

    #[test]
    fn tainted_callee_gets_cc() {
        let r = analyze(
            "fn exchange() { MPI_Barrier(); MPI_Allreduce(1, SUM); }
             fn main() { if (rank() == 0) { exchange(); } }",
        );
        assert!(
            r.plan.cc_functions.contains(&"exchange".to_string()),
            "divergently-called function must be CC'd: {:?}",
            r.plan.cc_functions
        );
        assert!(r.plan.cc_functions.contains(&"main".to_string()));
    }

    #[test]
    fn taint_propagates_transitively() {
        let r = analyze(
            "fn leaf() { MPI_Barrier(); }
             fn mid() { leaf(); }
             fn main() { if (rank() == 0) { mid(); } }",
        );
        assert!(r.plan.cc_functions.contains(&"mid".to_string()));
        assert!(r.plan.cc_functions.contains(&"leaf".to_string()));
    }

    #[test]
    fn site_ids_globally_unique() {
        let r = analyze(
            "fn a() {
                parallel {
                    single nowait { MPI_Barrier(); }
                    single { MPI_Barrier(); }
                }
             }
             fn b() {
                parallel {
                    single nowait { MPI_Allreduce(1, SUM); }
                    single { MPI_Allreduce(1, SUM); }
                }
             }
             fn main() { a(); b(); }",
        );
        let mut per_pair: Vec<u32> = r.plan.concurrency_sites.iter().map(|s| s.2).collect();
        per_pair.sort_unstable();
        per_pair.dedup();
        // Two clusters (one per function) → two distinct global site ids.
        assert_eq!(per_pair.len(), 2, "{:?}", r.plan.concurrency_sites);
    }

    #[test]
    fn contexts_recorded_for_all_functions() {
        let r = analyze(
            "fn w() { let x = 1; }
             fn main() { parallel { w(); } }",
        );
        assert_eq!(r.contexts.len(), 2);
    }

    #[test]
    fn report_renders() {
        let unit = parse_and_check(
            "demo.mh",
            "fn main() { if (rank() == 0) { MPI_Barrier(); } }",
        )
        .expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        let r = analyze_module(&m, &AnalysisOptions::default());
        let text = r.render(&unit.source_map);
        assert!(text.contains("collective mismatch"), "{text}");
        assert!(text.contains("demo.mh:"), "{text}");
        assert!(text.contains("warning(s)"), "{text}");
    }
}
