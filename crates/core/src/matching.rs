//! Phase 3 — "all MPI processes execute the same sequence of
//! collectives" (paper §2, property 3; PARCOACH Algorithm 1).
//!
//! For every *collective event* `e` (an MPI collective kind, or a call
//! to a function that transitively executes collectives), take the set
//! `S_e` of blocks issuing `e` and compute its **iterated post-dominance
//! frontier** `PDF+(S_e)`. Every conditional in the frontier can steer
//! processes into executing different numbers/sequences of `e` — each is
//! reported as a potential collective mismatch and triggers `CC`
//! instrumentation.
//!
//! The phase reads the per-function [`crate::facts::FuncFacts`]: the
//! block→event map is precomputed (interned [`EventId`]s), the per-block
//! post-dominance frontiers are computed once, and `PDF+(S_e)` queries
//! go through a memoizing [`IpdfEngine`] so events issued from the same
//! block set share one fixpoint ([`MatchingOptions::memoize`] disables
//! the cache for the E10 ablation — results are identical either way).
//!
//! **Refinement** (extension, see DESIGN.md): a conditional whose two
//! arms provably execute the *same* sequence of collective events before
//! re-joining (acyclic region, unique event sequence per arm) cannot
//! cause a mismatch; such candidates are dropped, eliminating the
//! classic `if/else`-balanced false positive. The ablation experiment E5
//! measures its effect.

use crate::comm::{CommId, CommTable, FuncComms};
use crate::context::CallContexts;
use crate::facts::AnalysisCx;
use crate::intern::{EventId, Sym, SymTable};
use crate::report::{StaticWarning, WarningKind};
use parcoach_front::ast::CollectiveKind;
use parcoach_front::span::Span;
use parcoach_ir::dom::IpdfEngine;
use parcoach_ir::func::FuncIr;
use parcoach_ir::instr::{Instr, MpiIr, Terminator};
use parcoach_ir::types::BlockId;
use std::cmp::Ordering;
use std::collections::HashMap;

/// A collective event: an MPI collective on a specific (static)
/// communicator class, or a call into a collective-bearing function.
///
/// The communicator is part of the event identity: the "same sequence
/// of collectives" property holds *per communicator* — ranks may
/// legally interleave collectives on unrelated communicators
/// differently, so `MPI_Barrier(a)` and `MPI_Barrier(b)` are distinct
/// events when `a` and `b` cannot alias.
///
/// Callee names are interned [`Sym`]s, which makes the whole enum `Copy`
/// — event sequences and phase results carry ids, not `String`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// Direct MPI collective on a communicator class.
    Coll(CommId, CollectiveKind),
    /// A communicator-management collective (`MPI_Comm_split`/`dup`) on
    /// its *parent* communicator class — these synchronize all members
    /// of the parent exactly like a data collective, so divergent
    /// communicator creation is a mismatch like any other.
    CommMgmt(CommId, &'static str),
    /// Call to a function that may execute collectives.
    Call(Sym),
}

impl Event {
    /// Display name for warnings.
    pub fn name(&self, table: &CommTable, syms: &SymTable) -> String {
        match self {
            Event::Coll(c, k) if c.is_world() => k.mpi_name().to_string(),
            Event::Coll(c, k) => format!("{} on {}", k.mpi_name(), table.label(*c)),
            Event::CommMgmt(c, name) if c.is_world() => (*name).to_string(),
            Event::CommMgmt(c, name) => format!("{} of {}", name, table.label(*c)),
            Event::Call(f) => format!("call to `{}`", syms.name(*f)),
        }
    }

    /// Report order: collectives, then comm management, then calls —
    /// calls compared by *name* (not by `Sym` id), so the warning order
    /// matches the pre-interning `Ord`-on-`Event` sort exactly.
    pub fn cmp_for_report(&self, other: &Event, syms: &SymTable) -> Ordering {
        fn rank(e: &Event) -> u8 {
            match e {
                Event::Coll(..) => 0,
                Event::CommMgmt(..) => 1,
                Event::Call(..) => 2,
            }
        }
        match (self, other) {
            (Event::Coll(c1, k1), Event::Coll(c2, k2)) => c1.cmp(c2).then(k1.cmp(k2)),
            (Event::CommMgmt(c1, n1), Event::CommMgmt(c2, n2)) => c1.cmp(c2).then(n1.cmp(n2)),
            (Event::Call(s1), Event::Call(s2)) => syms.name(*s1).cmp(syms.name(*s2)),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

/// The events issued by one block, in instruction order. Called once per
/// block by the fact-store construction ([`crate::facts`]); the phases
/// read the precomputed (interned) map.
pub(crate) fn block_events(
    f: &FuncIr,
    b: BlockId,
    ctxs: &CallContexts,
    comms: &FuncComms,
    syms: &SymTable,
) -> Vec<(Event, Span)> {
    f.block(b)
        .instrs
        .iter()
        .filter_map(|i| match i {
            Instr::Mpi { op, span, .. } => match op {
                MpiIr::Collective { kind, comm, .. } => {
                    Some((Event::Coll(comms.of_operand(*comm), *kind), *span))
                }
                _ => op.comm_mgmt().map(|(name, parent)| {
                    (Event::CommMgmt(comms.of_operand(Some(parent)), name), *span)
                }),
            },
            Instr::Call { func, span, .. } if ctxs.bears_collectives(func) => {
                syms.lookup(func).map(|sym| (Event::Call(sym), *span))
            }
            _ => None,
        })
        .collect()
}

/// Phase-3 result for one function.
#[derive(Debug, Clone, Default)]
pub struct MatchingResult {
    /// Warnings found.
    pub warnings: Vec<StaticWarning>,
    /// Blocks with collectives that participate in a potential mismatch
    /// (all blocks of the affected event kinds).
    pub suspects: Vec<BlockId>,
    /// Interned names of called functions involved in mismatch warnings
    /// (their bodies need `CC` instrumentation too).
    pub tainted_callees: Vec<Sym>,
    /// Candidate conditionals found by PDF+ *before* the sequence
    /// refinement (ablation metric).
    pub candidates_before_refinement: usize,
    /// Candidates confirmed after refinement.
    pub candidates_confirmed: usize,
}

/// Options for the matching phase.
#[derive(Debug, Clone, Copy)]
pub struct MatchingOptions {
    /// Apply the balanced-arms sequence refinement.
    pub refine: bool,
    /// Serve `PDF+` queries from the per-function memo (identical
    /// results; `false` recomputes per event set — the E10 ablation).
    pub memoize: bool,
}

impl Default for MatchingOptions {
    fn default() -> Self {
        MatchingOptions {
            refine: true,
            memoize: true,
        }
    }
}

/// Run Algorithm 1 on one function, with one PDF+ query per
/// (communicator, event) group.
pub fn check_matching(cx: &AnalysisCx, fidx: usize, opts: MatchingOptions) -> MatchingResult {
    let f = &cx.module.funcs[fidx];
    let facts = &cx.funcs[fidx];
    let table = &cx.comms.table;
    let mut out = MatchingResult::default();

    // Group blocks by (interned) event.
    let mut by_event: HashMap<EventId, Vec<(BlockId, Span)>> = HashMap::new();
    for b in f.block_ids() {
        for &(e, span) in &facts.block_events[b.index()] {
            by_event.entry(e).or_default().push((b, span));
        }
    }
    if by_event.is_empty() {
        return out;
    }

    let mut events: Vec<EventId> = by_event.keys().copied().collect();
    events.sort_unstable_by(|a, b| {
        cx.events
            .get(*a)
            .cmp_for_report(&cx.events.get(*b), &cx.syms)
    });

    // A collective whose communicator operand could not be resolved to
    // one creation site merged handles from different sites across
    // control flow (MiniHPC cannot pass communicators through calls, so
    // unresolved = merged): ranks taking different paths call the same
    // collective on *different* communicators, which no per-class PDF+
    // group can see. Report the site itself.
    for &id in &events {
        let e = cx.events.get(id);
        let unknown_comm = match e {
            Event::Coll(c, _) | Event::CommMgmt(c, _) => c.is_unknown(),
            Event::Call(_) => false,
        };
        if !unknown_comm {
            continue;
        }
        let sites = &by_event[&id];
        out.warnings.push(StaticWarning {
            kind: WarningKind::CollectiveMismatch,
            func: f.name.clone(),
            message: format!(
                "{} is called on a control-flow-dependent communicator \
                 (the handle merges several creation sites); ranks may \
                 enter the collective on different communicators",
                e.name(table, &cx.syms)
            ),
            span: sites[0].1,
            related: sites
                .iter()
                .skip(1)
                .map(|(_, s)| (*s, "also called here".to_string()))
                .collect(),
        });
        out.suspects.extend(sites.iter().map(|(b, _)| *b));
    }

    // The per-function memo over the precomputed per-block frontiers:
    // event sets sharing the same blocks share one PDF+ fixpoint.
    let mut engine = IpdfEngine::new(&facts.cfg().pdf);

    for id in events {
        let e = cx.events.get(id);
        let sites = &by_event[&id];
        let blocks: Vec<BlockId> = sites.iter().map(|(b, _)| *b).collect();
        let mut frontier = if opts.memoize {
            engine.iterated(&blocks)
        } else {
            facts.cfg().pdt.iterated_frontier(f, &blocks)
        };
        // OpenMP dispatch branches (`single`/`master`/`section` entry)
        // choose *which thread* runs the body, but the body still runs
        // exactly once per process per encounter — they are not
        // inter-process divergence points. Real conditionals live in
        // normal blocks.
        frontier.retain(|&b| f.block(b).directive().is_none());
        if frontier.is_empty() {
            continue;
        }
        out.candidates_before_refinement += frontier.len();
        // Refinement: drop conditionals whose arms issue identical event
        // sequences up to the re-join point.
        let confirmed: Vec<BlockId> = frontier
            .into_iter()
            .filter(|&cond| !opts.refine || !balanced_arms(f, facts, cond))
            .collect();
        out.candidates_confirmed += confirmed.len();
        if confirmed.is_empty() {
            continue;
        }
        let mut related: Vec<(Span, String)> = confirmed
            .iter()
            .map(|&c| {
                let span = match &f.block(c).term {
                    Terminator::Branch { span, .. } => *span,
                    _ => f.block(c).span,
                };
                (span, "execution depends on this conditional".to_string())
            })
            .collect();
        for (_, span) in sites.iter().skip(1) {
            related.push((
                *span,
                format!("{} also called here", e.name(table, &cx.syms)),
            ));
        }
        out.warnings.push(StaticWarning {
            kind: WarningKind::CollectiveMismatch,
            func: f.name.clone(),
            message: format!(
                "{} may not be executed by all processes (or not the same \
                 number of times): control-flow divergence at {} point(s)",
                e.name(table, &cx.syms),
                confirmed.len()
            ),
            span: sites[0].1,
            related,
        });
        out.suspects.extend(blocks);
        if let Event::Call(callee) = e {
            out.tainted_callees.push(callee);
        }
    }
    out.suspects.sort_unstable();
    out.suspects.dedup();
    out.tainted_callees
        .sort_unstable_by(|a, b| cx.syms.name(*a).cmp(cx.syms.name(*b)));
    out.tainted_callees.dedup();
    out
}

/// True when all successors of `cond` provably issue the same sequence
/// of collective events before reaching `ipdom(cond)`.
///
/// The per-arm sequence is a `Vec<EventId>` read off the precomputed
/// block→event map, computed by a memoized walk that fails (and keeps
/// the warning) on cycles, on returns before the join, and on any
/// interior divergence.
fn balanced_arms(f: &FuncIr, facts: &crate::facts::FuncFacts, cond: BlockId) -> bool {
    let Some(join) = facts.cfg().pdt.ipdom(cond) else {
        // No post-dominator inside the function (e.g. a return on one
        // arm): cannot be balanced.
        return false;
    };
    let succs = f.block(cond).term.successors();
    if succs.len() < 2 {
        return false;
    }
    let mut memo: HashMap<BlockId, Option<Vec<EventId>>> = HashMap::new();
    let mut visiting: Vec<BlockId> = Vec::new();
    let first = arm_sequence(f, facts, succs[0], join, &mut memo, &mut visiting);
    let Some(first) = first else { return false };
    for &s in &succs[1..] {
        match arm_sequence(f, facts, s, join, &mut memo, &mut visiting) {
            Some(seq) if seq == first => {}
            _ => return false,
        }
    }
    true
}

/// The unique event sequence from `n` (inclusive) to `stop` (exclusive),
/// or `None` when no unique sequence exists.
fn arm_sequence(
    f: &FuncIr,
    facts: &crate::facts::FuncFacts,
    n: BlockId,
    stop: BlockId,
    memo: &mut HashMap<BlockId, Option<Vec<EventId>>>,
    visiting: &mut Vec<BlockId>,
) -> Option<Vec<EventId>> {
    if n == stop {
        return Some(Vec::new());
    }
    if let Some(cached) = memo.get(&n) {
        return cached.clone();
    }
    if visiting.contains(&n) {
        return None; // cycle
    }
    visiting.push(n);
    let own: Vec<EventId> = facts.block_events[n.index()]
        .iter()
        .map(|&(e, _)| e)
        .collect();
    let succs = f.block(n).term.successors();
    let result = if succs.is_empty() {
        None // leaves the function before the join
    } else {
        let mut tail: Option<Vec<EventId>> = None;
        let mut ok = true;
        for &s in &succs {
            match arm_sequence(f, facts, s, stop, memo, visiting) {
                None => {
                    ok = false;
                    break;
                }
                Some(seq) => match &tail {
                    None => tail = Some(seq),
                    Some(t) if *t == seq => {}
                    Some(_) => {
                        ok = false;
                        break;
                    }
                },
            }
        }
        if ok {
            tail.map(|t| {
                let mut full = own;
                full.extend(t);
                full
            })
        } else {
            None
        }
    };
    visiting.pop();
    memo.insert(n, result.clone());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::AnalysisCx;
    use crate::pw::InitialContext;
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;
    use parcoach_ir::Module;

    fn lower(src: &str) -> Module {
        let unit = parse_and_check("t.mh", src).expect("valid");
        lower_program(&unit.program, &unit.signatures)
    }

    fn run_on(m: &Module, opts: MatchingOptions) -> MatchingResult {
        let cx = AnalysisCx::build(m, InitialContext::Sequential, parcoach_pool::global());
        check_matching(&cx, m.by_name["main"], opts)
    }

    fn run_with(src: &str, refine: bool) -> MatchingResult {
        let m = lower(src);
        run_on(
            &m,
            MatchingOptions {
                refine,
                ..MatchingOptions::default()
            },
        )
    }

    fn run(src: &str) -> MatchingResult {
        run_with(src, true)
    }

    #[test]
    fn unconditional_collective_clean() {
        let r = run("fn main() { MPI_Init(); MPI_Barrier(); MPI_Finalize(); }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn rank_dependent_collective_flagged() {
        let r = run("fn main() { if (rank() == 0) { MPI_Barrier(); } }");
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::CollectiveMismatch);
        assert!(!r.suspects.is_empty());
    }

    #[test]
    fn memoized_and_uncached_agree() {
        // Several distinct events under shared conditionals: the memo
        // path and the recompute-per-set path must produce identical
        // results (the E10 ablation's correctness premise).
        let src = "fn main() {
                if (rank() == 0) { MPI_Barrier(); } else { let x = MPI_Allreduce(1, SUM); }
                if (rank() > 1) { let y = MPI_Bcast(1.0, 0); }
                for (i in 0..3) { MPI_Barrier(); }
            }";
        let m = lower(src);
        let cached = run_on(&m, MatchingOptions::default());
        let uncached = run_on(
            &m,
            MatchingOptions {
                memoize: false,
                ..MatchingOptions::default()
            },
        );
        assert_eq!(format!("{cached:?}"), format!("{uncached:?}"));
    }

    #[test]
    fn balanced_branches_refined_away() {
        let src = "fn main() {
            if (rank() == 0) { MPI_Barrier(); } else { MPI_Barrier(); }
        }";
        let refined = run(src);
        assert!(
            refined.warnings.is_empty(),
            "balanced arms are not a mismatch: {:?}",
            refined.warnings
        );
        // Without refinement the PDF+ flags it (the ablation measures
        // exactly this difference).
        let raw = run_with(src, false);
        assert_eq!(raw.warnings.len(), 1);
        assert!(raw.candidates_before_refinement > 0);
    }

    #[test]
    fn unbalanced_kinds_not_refined() {
        // Same count, different kinds → sequences differ → keep warning.
        let r = run("fn main() {
                if (rank() == 0) { MPI_Barrier(); } else { let x = MPI_Allreduce(1, SUM); }
            }");
        assert_eq!(r.warnings.len(), 2, "one per kind: {:?}", r.warnings);
    }

    #[test]
    fn collective_in_loop_flagged() {
        // Iteration count may differ across ranks (bound from rank()).
        let r = run("fn main() {
                let n = rank() + 1;
                for (i in 0..n) { MPI_Barrier(); }
            }");
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
    }

    #[test]
    fn uniform_loop_still_flagged_statically() {
        // The static phase cannot prove bounds are uniform — this is the
        // classic false positive the dynamic CC resolves (paper §3).
        let r = run("fn main() { for (i in 0..10) { MPI_Barrier(); } }");
        assert_eq!(r.warnings.len(), 1);
    }

    #[test]
    fn early_return_with_collective_after() {
        let r = run("fn main() {
                if (rank() == 0) { return; }
                MPI_Barrier();
            }");
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
    }

    #[test]
    fn call_to_collective_function_is_an_event() {
        let m = lower(
            "fn exchange() { MPI_Barrier(); }
             fn main() { if (rank() == 0) { exchange(); } }",
        );
        let cx = AnalysisCx::build(&m, InitialContext::Sequential, parcoach_pool::global());
        let r = check_matching(&cx, m.by_name["main"], MatchingOptions::default());
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.tainted_callees.len(), 1);
        assert_eq!(cx.syms.name(r.tainted_callees[0]), "exchange");
    }

    #[test]
    fn balanced_calls_refined_away() {
        let m = lower(
            "fn exchange() { MPI_Barrier(); }
             fn main() { if (rank() == 0) { exchange(); } else { exchange(); } }",
        );
        let r = run_on(&m, MatchingOptions::default());
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn nested_conditionals_all_reported() {
        let r = run("fn main() {
                if (rank() > 0) {
                    if (rank() > 1) {
                        MPI_Barrier();
                    }
                }
            }");
        assert_eq!(r.warnings.len(), 1);
        // Both conditionals appear as related divergence points.
        let conds = r.warnings[0]
            .related
            .iter()
            .filter(|(_, l)| l.contains("conditional"))
            .count();
        assert_eq!(conds, 2, "{:?}", r.warnings[0].related);
    }

    #[test]
    fn multiple_kinds_independent() {
        // Bcast is conditional, Barrier is not.
        let r = run("fn main() {
                if (rank() == 0) { let x = MPI_Bcast(1, 0); }
                MPI_Barrier();
            }");
        assert_eq!(r.warnings.len(), 1);
        assert!(r.warnings[0].message.contains("MPI_Bcast"));
    }

    #[test]
    fn different_comms_are_distinct_events() {
        // Same kind, unrelated communicators: two distinct events, both
        // rank-divergent, and the refinement must NOT treat the arms as
        // balanced (the sequences differ per communicator).
        let r = run("fn main() {
                let a = MPI_Comm_dup(MPI_COMM_WORLD);
                if (rank() == 0) { MPI_Barrier(a); } else { MPI_Barrier(); }
            }");
        assert_eq!(r.warnings.len(), 2, "{:?}", r.warnings);
        assert!(r.warnings.iter().any(|w| w.message.contains("duplicated")));
    }

    #[test]
    fn balanced_arms_same_comm_refined_away() {
        let r = run("fn main() {
                let a = MPI_Comm_dup(MPI_COMM_WORLD);
                if (rank() == 0) { MPI_Barrier(a); } else { MPI_Barrier(a); }
            }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn divergent_comm_creation_flagged() {
        // MPI_Comm_dup is a collective over its parent: creating it on
        // one branch only desynchronizes exactly like a lone barrier.
        let r = run("fn main() {
                if (rank() == 0) { let c = MPI_Comm_dup(MPI_COMM_WORLD); }
            }");
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert!(r.warnings[0].message.contains("MPI_Comm_dup"));
    }

    #[test]
    fn merged_comm_handle_at_collective_flagged() {
        // The handle merges two creation sites across a rank branch:
        // ranks may enter the barrier on different communicators even
        // though the barrier site itself is unconditional.
        let r = run("fn main() {
                let a = MPI_Comm_dup(MPI_COMM_WORLD);
                let b = MPI_Comm_dup(MPI_COMM_WORLD);
                let c = a;
                if (rank() == 0) { c = b; }
                MPI_Barrier(c);
            }");
        assert!(
            r.warnings
                .iter()
                .any(|w| w.message.contains("control-flow-dependent communicator")),
            "{:?}",
            r.warnings
        );
        assert!(!r.suspects.is_empty());
    }

    #[test]
    fn unconditional_subcomm_collective_clean() {
        let r = run("fn main() {
                let c = MPI_Comm_split(MPI_COMM_WORLD, rank() % 2, rank());
                let s = MPI_Allreduce(rank() + 1, SUM, c);
            }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn while_loop_with_collective_and_break() {
        let r = run("fn main() {
                let go = true;
                while (go) {
                    MPI_Barrier();
                    if (rank() == 0) { go = false; }
                }
            }");
        assert!(!r.warnings.is_empty());
    }
}
