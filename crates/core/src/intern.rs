//! Module-level interning arenas for the fact store.
//!
//! The static phases used to clone `String` function names and
//! `Vec`-backed parallelism words through every per-function result;
//! the arenas replace those with copy-cheap, hash-fast ids:
//!
//! * [`Sym`] / [`SymTable`] — interned function names. `Event::Call`,
//!   `tainted_callees` and the taint worklist all carry `Sym`s; strings
//!   materialize only at the report boundary.
//! * [`EventId`] / [`EventArena`] — interned collective events (see
//!   [`crate::matching::Event`]). Block→event maps and the balanced-arms
//!   sequences compare `u32`s instead of re-hashing enum payloads.
//! * [`WordId`] / [`WordArena`] — interned parallelism words. Straight-
//!   line blocks overwhelmingly share their entry word, so the arena
//!   stores each distinct word once per module.
//!
//! All three are thin typed wrappers over one generic `Interner`. The
//! arenas are built **sequentially in module order** by
//! [`crate::facts::AnalysisCx::from_contexts`], so ids are deterministic
//! at every pool width.
//!
//! The fourth structure, [`WordDag`], is different in kind: it interns
//! words *structurally* as `(parent, token)` nodes, so extending a word
//! by one token — the inner loop of the parallelism-word propagation —
//! is a single hash probe instead of a `Vec<Token>` clone, and the
//! `L = (S|PB*S)*` membership verdict is a constant-time read of bits
//! cached on the node at creation (see [`WordDag::class`]).

use crate::lang::ContextClass;
use crate::matching::Event;
use crate::word::{SKind, Token, Word};
use parcoach_ir::types::RegionId;
use std::collections::HashMap;

/// The shared intern-arena core: values stored once in insertion order,
/// with a reverse map for O(1) re-interning. Ids are dense `u32`s.
#[derive(Debug, Clone)]
struct Interner<T> {
    items: Vec<T>,
    by_item: HashMap<T, u32>,
}

// Manual impl: the derive would (needlessly) require `T: Default`.
impl<T> Default for Interner<T> {
    fn default() -> Self {
        Interner {
            items: Vec::new(),
            by_item: HashMap::new(),
        }
    }
}

impl<T: Clone + Eq + std::hash::Hash> Interner<T> {
    /// Intern a value (cloned only on first sight), returning its id.
    fn intern(&mut self, item: &T) -> u32 {
        if let Some(&id) = self.by_item.get(item) {
            return id;
        }
        let id = self.items.len() as u32;
        self.items.push(item.clone());
        self.by_item.insert(item.clone(), id);
        id
    }

    fn get(&self, id: u32) -> &T {
        &self.items[id as usize]
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

impl Interner<String> {
    /// String-keyed intern: no allocation on a hit (the generic
    /// [`Interner::intern`] would require an owned `String` to probe
    /// the map).
    fn intern_str(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_item.get(name) {
            return id;
        }
        let id = self.items.len() as u32;
        self.items.push(name.to_string());
        self.by_item.insert(name.to_string(), id);
        id
    }

    /// String-keyed lookup: never allocates.
    fn lookup_str(&self, name: &str) -> Option<u32> {
        self.by_item.get(name).copied()
    }
}

/// An interned function name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// The module symbol table: function names ↔ [`Sym`]s.
#[derive(Debug, Clone, Default)]
pub struct SymTable(Interner<String>);

impl SymTable {
    /// A table pre-seeded with every function of `m`, in module order.
    pub fn for_module(m: &parcoach_ir::func::Module) -> SymTable {
        let mut t = SymTable::default();
        for f in &m.funcs {
            t.intern(&f.name);
        }
        t
    }

    /// Intern a name, returning its stable id.
    pub fn intern(&mut self, name: &str) -> Sym {
        Sym(self.0.intern_str(name))
    }

    /// The id of an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.0.lookup_str(name).map(Sym)
    }

    /// The name of an interned id.
    pub fn name(&self, s: Sym) -> &str {
        self.0.get(s.0)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.0.len() == 0
    }
}

/// An interned collective event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u32);

/// The module event arena: [`Event`]s ↔ [`EventId`]s.
#[derive(Debug, Clone, Default)]
pub struct EventArena(Interner<Event>);

impl EventArena {
    /// Intern an event, returning its stable id.
    pub fn intern(&mut self, e: Event) -> EventId {
        EventId(self.0.intern(&e))
    }

    /// The event behind an id (`Event` is `Copy`).
    pub fn get(&self, id: EventId) -> Event {
        *self.0.get(id.0)
    }

    /// Number of distinct events.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.0.len() == 0
    }
}

/// An interned parallelism word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WordId(pub u32);

/// The module word arena: [`Word`]s ↔ [`WordId`]s.
#[derive(Debug, Clone, Default)]
pub struct WordArena(Interner<Word>);

impl WordArena {
    /// Intern a word (cloned only on first sight), returning its id.
    pub fn intern(&mut self, w: &Word) -> WordId {
        WordId(self.0.intern(w))
    }

    /// The word behind an id.
    pub fn get(&self, id: WordId) -> &Word {
        self.0.get(id.0)
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.0.len() == 0
    }
}

/// A hash-consed parallelism word: an index into a [`WordDag`].
///
/// Within one dag, equal words have equal ids (structural interning), so
/// word equality — the dominant comparison of the propagation meet — is
/// an integer compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WordNode(pub u32);

/// The distinguished empty word `ε` (node 0 of every dag).
pub const EPSILON: WordNode = WordNode(0);

// Classification bits cached per node. Together they determine the
// `ContextClass` of the word (see `WordDag::class`) *and* carry enough
// state to derive a child's bits from its parent's in O(1):
//
// * `AFTER_P` — the stripped word ends in an unmatched `P` (DFA state 1
//   of `in_language_reference`);
// * `NESTED` — some `P…P` occurred with no `S` between (absorbing);
// * `FUNNELED` — every *closed* `P` group so far was closed by a
//   `master` `S` (meaningful only when the word is in `L`);
// * `STRIPPED_EMPTY` — no `P`/`S` token yet (barriers only).
const AFTER_P: u8 = 1 << 0;
const NESTED: u8 = 1 << 1;
const FUNNELED: u8 = 1 << 2;
const STRIPPED_EMPTY: u8 = 1 << 3;

/// Sentinel for the intrusive child lists: "no node".
const NO_NODE: u32 = u32::MAX;

/// One node of the word dag. `parent`+`token` spell the word backwards;
/// `flags` cache the membership automaton's state at this prefix.
/// `first_child`/`next_sibling` thread an intrusive list over each
/// node's extensions, so interning an edge is a short linear scan (the
/// out-degree is the token alphabet actually used at that prefix —
/// a handful) with no hashing and no side-table allocation.
#[derive(Debug, Clone, Copy)]
struct DagNode {
    parent: u32,
    token: Token,
    len: u32,
    flags: u8,
    first_child: u32,
    next_sibling: u32,
}

/// Hash-consed parallelism words: every distinct word is one node whose
/// parent is the word minus its last token.
///
/// This is the structure behind [`crate::pw::compute_pw`]'s inner loop:
///
/// * [`WordDag::extend`] (`w·t`) is O(1) — a `(parent, token)` hash
///   probe — instead of cloning a `Vec<Token>`;
/// * word equality is id equality, making the propagation meet O(1);
/// * [`WordDag::class`] returns the cached `L = (S|PB*S)*` verdict in
///   O(1). The cache holds the *automaton state*, updated incrementally
///   at node creation — it never memoizes anything span- or
///   region-id-dependent, so [`crate::lang::classify`] on the
///   materialized word must agree exactly (property-tested against the
///   reference automaton in `core/lang.rs`).
///
/// Words from different dags must never be compared by id; the dag is
/// per-`PwResult` (i.e. per function × context) and ids are assigned in
/// deterministic propagation order.
#[derive(Debug, Clone)]
pub struct WordDag {
    nodes: Vec<DagNode>,
}

impl Default for WordDag {
    fn default() -> Self {
        WordDag::new()
    }
}

impl WordDag {
    /// A dag holding only `ε` (node 0).
    pub fn new() -> WordDag {
        WordDag {
            nodes: vec![DagNode {
                parent: 0,
                token: Token::B, // never read: ε has no last token
                len: 0,
                flags: STRIPPED_EMPTY | FUNNELED,
                first_child: NO_NODE,
                next_sibling: NO_NODE,
            }],
        }
    }

    /// The empty word.
    pub fn epsilon(&self) -> WordNode {
        EPSILON
    }

    /// `w·t`: the word `w` extended by one token, interned.
    pub fn extend(&mut self, w: WordNode, t: Token) -> WordNode {
        let mut c = self.nodes[w.0 as usize].first_child;
        while c != NO_NODE {
            let n = &self.nodes[c as usize];
            if n.token == t {
                return WordNode(c);
            }
            c = n.next_sibling;
        }
        let p = self.nodes[w.0 as usize];
        let flags = match t {
            Token::B => p.flags,
            Token::P(_) => {
                let mut f = p.flags & !STRIPPED_EMPTY;
                if f & AFTER_P != 0 {
                    f |= NESTED;
                }
                f | AFTER_P
            }
            Token::S(_, kind) => {
                let mut f = p.flags & !(STRIPPED_EMPTY | AFTER_P);
                if p.flags & AFTER_P != 0 && kind != SKind::Master {
                    f &= !FUNNELED;
                }
                f
            }
        };
        let id = self.nodes.len() as u32;
        self.nodes.push(DagNode {
            parent: w.0,
            token: t,
            len: p.len + 1,
            flags,
            first_child: NO_NODE,
            next_sibling: self.nodes[w.0 as usize].first_child,
        });
        self.nodes[w.0 as usize].first_child = id;
        WordNode(id)
    }

    /// Intern a `Vec`-backed word token by token.
    pub fn intern_word(&mut self, w: &Word) -> WordNode {
        let mut n = EPSILON;
        for t in w.tokens() {
            n = self.extend(n, *t);
        }
        n
    }

    /// Number of tokens in `w`.
    pub fn len(&self, w: WordNode) -> u32 {
        self.nodes[w.0 as usize].len
    }

    /// True for `ε`.
    pub fn is_empty(&self, w: WordNode) -> bool {
        w == EPSILON
    }

    /// Close region `r`: the word truncated at (and excluding) the last
    /// `P`/`S` token of that region — the dag mirror of
    /// [`Word::close_region`]. `None` when the region is absent.
    pub fn close_region(&self, w: WordNode, r: RegionId) -> Option<WordNode> {
        let mut cur = w;
        while cur != EPSILON {
            let node = self.nodes[cur.0 as usize];
            if node.token.region() == Some(r) {
                return Some(WordNode(node.parent));
            }
            cur = WordNode(node.parent);
        }
        None
    }

    /// True when `long` equals `base` plus a suffix consisting only of
    /// `B` tokens (the loop-head phase-merge case).
    pub fn extends_by_barriers(&self, long: WordNode, base: WordNode) -> bool {
        let mut cur = long;
        while self.len(cur) > self.len(base) {
            let node = self.nodes[cur.0 as usize];
            if node.token != Token::B {
                return false;
            }
            cur = WordNode(node.parent);
        }
        cur == base
    }

    /// The cached classification of `w` — equal to
    /// `crate::lang::classify(&self.materialize(w))`, in O(1).
    pub fn class(&self, w: WordNode) -> ContextClass {
        use crate::lang::MonoVerdict;
        use parcoach_front::ast::ThreadLevel;
        let flags = self.nodes[w.0 as usize].flags;
        if flags & STRIPPED_EMPTY != 0 {
            ContextClass {
                verdict: MonoVerdict::SequentialContext,
                required_level: ThreadLevel::Single,
            }
        } else if flags & NESTED != 0 {
            ContextClass {
                verdict: MonoVerdict::NestedParallelism,
                required_level: ThreadLevel::Multiple,
            }
        } else if flags & AFTER_P != 0 {
            ContextClass {
                verdict: MonoVerdict::MultiThreaded,
                required_level: ThreadLevel::Multiple,
            }
        } else {
            ContextClass {
                verdict: MonoVerdict::MonoThreaded,
                required_level: if flags & FUNNELED != 0 {
                    ThreadLevel::Funneled
                } else {
                    ThreadLevel::Serialized
                },
            }
        }
    }

    /// The `Vec`-backed word behind a node (allocates; report paths
    /// only).
    pub fn materialize(&self, w: WordNode) -> Word {
        let mut tokens = Vec::with_capacity(self.len(w) as usize);
        let mut cur = w;
        while cur != EPSILON {
            let node = self.nodes[cur.0 as usize];
            tokens.push(node.token);
            cur = WordNode(node.parent);
        }
        tokens.reverse();
        Word(tokens)
    }

    /// Number of distinct words interned (including `ε`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::Token;
    use parcoach_ir::types::RegionId;

    #[test]
    fn sym_table_round_trips() {
        let mut t = SymTable::default();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_ne!(a, b);
        assert_eq!(t.intern("alpha"), a, "re-interning is stable");
        assert_eq!(t.name(a), "alpha");
        assert_eq!(t.lookup("beta"), Some(b));
        assert_eq!(t.lookup("gamma"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn word_dag_extend_dedups_and_materializes() {
        let mut dag = WordDag::new();
        let p0 = dag.extend(EPSILON, Token::P(RegionId(0)));
        let p0b = dag.extend(p0, Token::B);
        let again = dag.intern_word(&Word(vec![Token::P(RegionId(0)), Token::B]));
        assert_eq!(p0b, again, "equal words share a node");
        assert_eq!(
            dag.materialize(p0b),
            Word(vec![Token::P(RegionId(0)), Token::B])
        );
        assert_eq!(dag.materialize(EPSILON), Word::empty());
        assert_eq!(dag.len(p0b), 2);
        assert_eq!(dag.node_count(), 3);
    }

    #[test]
    fn word_dag_close_region_matches_vec_semantics() {
        let mut dag = WordDag::new();
        let w = Word(vec![
            Token::P(RegionId(0)),
            Token::S(RegionId(1), crate::word::SKind::Single),
            Token::B,
        ]);
        let n = dag.intern_word(&w);
        let closed = dag.close_region(n, RegionId(1)).expect("region present");
        let mut expect = w.clone();
        assert!(expect.close_region(RegionId(1)));
        assert_eq!(dag.materialize(closed), expect);
        assert_eq!(dag.close_region(n, RegionId(7)), None, "absent region");
    }

    #[test]
    fn word_dag_barrier_extension() {
        let mut dag = WordDag::new();
        let base = dag.intern_word(&Word(vec![Token::P(RegionId(0))]));
        let ext = dag.extend(base, Token::B);
        let ext = dag.extend(ext, Token::B);
        let other = dag.extend(base, Token::S(RegionId(1), crate::word::SKind::Single));
        assert!(dag.extends_by_barriers(ext, base));
        assert!(dag.extends_by_barriers(base, base));
        assert!(!dag.extends_by_barriers(base, ext));
        assert!(!dag.extends_by_barriers(other, base));
    }

    #[test]
    fn word_dag_class_matches_classify() {
        use crate::lang::classify;
        let samples: Vec<Word> = vec![
            Word::empty(),
            Word(vec![Token::B]),
            Word(vec![Token::P(RegionId(0))]),
            Word(vec![
                Token::P(RegionId(0)),
                Token::S(RegionId(1), crate::word::SKind::Master),
            ]),
            Word(vec![
                Token::P(RegionId(0)),
                Token::B,
                Token::S(RegionId(1), crate::word::SKind::Single),
            ]),
            Word(vec![Token::P(RegionId(0)), Token::P(RegionId(1))]),
            Word(vec![
                Token::P(RegionId(0)),
                Token::P(RegionId(1)),
                Token::S(RegionId(2), crate::word::SKind::Single),
            ]),
        ];
        let mut dag = WordDag::new();
        for w in samples {
            let n = dag.intern_word(&w);
            assert_eq!(dag.class(n), classify(&w), "verdict cache wrong for {w}");
        }
    }

    #[test]
    fn word_arena_dedups() {
        let mut a = WordArena::default();
        let w1 = Word(vec![Token::P(RegionId(0)), Token::B]);
        let w2 = Word(vec![Token::P(RegionId(0)), Token::B]);
        let w3 = Word(vec![Token::P(RegionId(1))]);
        let i1 = a.intern(&w1);
        let i2 = a.intern(&w2);
        let i3 = a.intern(&w3);
        assert_eq!(i1, i2, "equal words share an id");
        assert_ne!(i1, i3);
        assert_eq!(a.get(i1), &w1);
        assert_eq!(a.len(), 2);
    }
}
