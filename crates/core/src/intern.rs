//! Module-level interning arenas for the fact store.
//!
//! The static phases used to clone `String` function names and
//! `Vec`-backed parallelism words through every per-function result;
//! the arenas replace those with copy-cheap, hash-fast ids:
//!
//! * [`Sym`] / [`SymTable`] — interned function names. `Event::Call`,
//!   `tainted_callees` and the taint worklist all carry `Sym`s; strings
//!   materialize only at the report boundary.
//! * [`EventId`] / [`EventArena`] — interned collective events (see
//!   [`crate::matching::Event`]). Block→event maps and the balanced-arms
//!   sequences compare `u32`s instead of re-hashing enum payloads.
//! * [`WordId`] / [`WordArena`] — interned parallelism words. Straight-
//!   line blocks overwhelmingly share their entry word, so the arena
//!   stores each distinct word once per module.
//!
//! All three are thin typed wrappers over one generic `Interner`. The
//! arenas are built **sequentially in module order** by
//! [`crate::facts::AnalysisCx::from_contexts`], so ids are deterministic
//! at every pool width.

use crate::matching::Event;
use crate::word::Word;
use std::collections::HashMap;

/// The shared intern-arena core: values stored once in insertion order,
/// with a reverse map for O(1) re-interning. Ids are dense `u32`s.
#[derive(Debug, Clone)]
struct Interner<T> {
    items: Vec<T>,
    by_item: HashMap<T, u32>,
}

// Manual impl: the derive would (needlessly) require `T: Default`.
impl<T> Default for Interner<T> {
    fn default() -> Self {
        Interner {
            items: Vec::new(),
            by_item: HashMap::new(),
        }
    }
}

impl<T: Clone + Eq + std::hash::Hash> Interner<T> {
    /// Intern a value (cloned only on first sight), returning its id.
    fn intern(&mut self, item: &T) -> u32 {
        if let Some(&id) = self.by_item.get(item) {
            return id;
        }
        let id = self.items.len() as u32;
        self.items.push(item.clone());
        self.by_item.insert(item.clone(), id);
        id
    }

    fn get(&self, id: u32) -> &T {
        &self.items[id as usize]
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

impl Interner<String> {
    /// String-keyed intern: no allocation on a hit (the generic
    /// [`Interner::intern`] would require an owned `String` to probe
    /// the map).
    fn intern_str(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_item.get(name) {
            return id;
        }
        let id = self.items.len() as u32;
        self.items.push(name.to_string());
        self.by_item.insert(name.to_string(), id);
        id
    }

    /// String-keyed lookup: never allocates.
    fn lookup_str(&self, name: &str) -> Option<u32> {
        self.by_item.get(name).copied()
    }
}

/// An interned function name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// The module symbol table: function names ↔ [`Sym`]s.
#[derive(Debug, Clone, Default)]
pub struct SymTable(Interner<String>);

impl SymTable {
    /// A table pre-seeded with every function of `m`, in module order.
    pub fn for_module(m: &parcoach_ir::func::Module) -> SymTable {
        let mut t = SymTable::default();
        for f in &m.funcs {
            t.intern(&f.name);
        }
        t
    }

    /// Intern a name, returning its stable id.
    pub fn intern(&mut self, name: &str) -> Sym {
        Sym(self.0.intern_str(name))
    }

    /// The id of an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.0.lookup_str(name).map(Sym)
    }

    /// The name of an interned id.
    pub fn name(&self, s: Sym) -> &str {
        self.0.get(s.0)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.0.len() == 0
    }
}

/// An interned collective event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u32);

/// The module event arena: [`Event`]s ↔ [`EventId`]s.
#[derive(Debug, Clone, Default)]
pub struct EventArena(Interner<Event>);

impl EventArena {
    /// Intern an event, returning its stable id.
    pub fn intern(&mut self, e: Event) -> EventId {
        EventId(self.0.intern(&e))
    }

    /// The event behind an id (`Event` is `Copy`).
    pub fn get(&self, id: EventId) -> Event {
        *self.0.get(id.0)
    }

    /// Number of distinct events.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.0.len() == 0
    }
}

/// An interned parallelism word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WordId(pub u32);

/// The module word arena: [`Word`]s ↔ [`WordId`]s.
#[derive(Debug, Clone, Default)]
pub struct WordArena(Interner<Word>);

impl WordArena {
    /// Intern a word (cloned only on first sight), returning its id.
    pub fn intern(&mut self, w: &Word) -> WordId {
        WordId(self.0.intern(w))
    }

    /// The word behind an id.
    pub fn get(&self, id: WordId) -> &Word {
        self.0.get(id.0)
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.0.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::Token;
    use parcoach_ir::types::RegionId;

    #[test]
    fn sym_table_round_trips() {
        let mut t = SymTable::default();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_ne!(a, b);
        assert_eq!(t.intern("alpha"), a, "re-interning is stable");
        assert_eq!(t.name(a), "alpha");
        assert_eq!(t.lookup("beta"), Some(b));
        assert_eq!(t.lookup("gamma"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn word_arena_dedups() {
        let mut a = WordArena::default();
        let w1 = Word(vec![Token::P(RegionId(0)), Token::B]);
        let w2 = Word(vec![Token::P(RegionId(0)), Token::B]);
        let w3 = Word(vec![Token::P(RegionId(1))]);
        let i1 = a.intern(&w1);
        let i2 = a.intern(&w2);
        let i3 = a.intern(&w3);
        assert_eq!(i1, i2, "equal words share an id");
        assert_ne!(i1, i3);
        assert_eq!(a.get(i1), &w1);
        assert_eq!(a.len(), 2);
    }
}
