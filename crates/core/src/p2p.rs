//! Static point-to-point matching (extension; cf. Liao et al., *Static
//! Deadlock Detection in MPI Synchronization Communication*).
//!
//! Sends and receives — blocking **and non-blocking** — are paired per
//! **(communicator class, tag)**, the static key under which the
//! simulator's matcher pairs them at run time (the SPMD abstraction
//! cannot align peer ranks statically, so `dest`/`src` do not enter the
//! key; an `MPI_ANY_TAG` receive matches every tag on its
//! communicator). Two diagnostics:
//!
//! * **unmatched-p2p** — a send whose key no receive in the module can
//!   ever match (or vice versa): a tag/communicator mismatch. An
//!   unmatched *receive* blocks forever (the substrate's deadlock
//!   census reports it); an unmatched *send* is silent in a buffered
//!   model — it is discharged dynamically by the p2p epoch census the
//!   instrumentation places before `MPI_Finalize`.
//! * **mismatched-order** — a receive whose *blocking point* dominates
//!   every send that could match it: along every path, on every rank,
//!   the rank blocks before any matching message can have been
//!   produced — the head-to-head `recv; send` deadlock. For a blocking
//!   `MPI_Recv` the blocking point is the receive itself; for an
//!   `MPI_Irecv` it is **deferred** to the `MPI_Wait`/`MPI_Waitall`
//!   that completes its request class (from [`crate::request`]), which
//!   is exactly what keeps the classic correct pattern — post the
//!   irecv, send, then wait — quiet. Receives whose matching sends sit
//!   on sibling branches, in other functions, or in concurrent OpenMP
//!   regions (a second thread can still produce the message under
//!   `MPI_THREAD_MULTIPLE`) are *not* flagged: dominance fails there,
//!   which is exactly the MPIxThreads-style correct pattern.
//!
//! Sites with an unresolvable tag or communicator conservatively match
//! everything and produce no diagnostics.

use crate::comm::CommId;
use crate::facts::AnalysisCx;
use crate::report::{StaticWarning, WarningKind};
use crate::request::{ReqId, ReqResolution};
use parcoach_front::ast::ANY_TAG;
use parcoach_front::span::Span;
use parcoach_ir::func::Module;
use parcoach_ir::instr::{Instr, MpiIr};
use parcoach_ir::types::{BlockId, Const, Value};

/// Direction of a p2p site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Send,
    Recv,
}

/// Static tag key of a p2p site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TagKey {
    /// A constant tag.
    Known(i64),
    /// The `MPI_ANY_TAG` wildcard: matches every tag.
    Any,
    /// Not resolvable statically: conservatively matches everything.
    Unresolved,
}

impl TagKey {
    fn compatible(self, other: TagKey) -> bool {
        match (self, other) {
            (TagKey::Known(a), TagKey::Known(b)) => a == b,
            _ => true,
        }
    }
}

impl std::fmt::Display for TagKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TagKey::Known(t) => write!(f, "{t}"),
            TagKey::Any => write!(f, "MPI_ANY_TAG"),
            TagKey::Unresolved => write!(f, "<unresolved>"),
        }
    }
}

/// One static send/recv site.
#[derive(Debug, Clone)]
struct Site {
    func: usize,
    block: BlockId,
    instr: usize,
    dir: Dir,
    comm: CommId,
    tag: TagKey,
    /// MPI name for diagnostics.
    name: &'static str,
    /// Request class for non-blocking posts (None = blocking).
    req: Option<ReqId>,
}

impl Site {
    /// Could a message of `self` be consumed/produced by `other`
    /// (opposite directions assumed by the caller)?
    fn key_matches(&self, other: &Site) -> bool {
        self.comm.may_alias(other.comm) && self.tag.compatible(other.tag)
    }

    /// Fully resolved key (eligible for diagnostics)?
    fn resolved(&self) -> bool {
        self.tag != TagKey::Unresolved && !self.comm.is_unknown()
    }
}

/// One wait site (an `MPI_Wait` or one operand of an `MPI_Waitall`).
struct WaitSite {
    func: usize,
    block: BlockId,
    instr: usize,
    /// Resolved class of the waited request (None = may complete any).
    class: Option<ReqId>,
}

/// Result of the module-wide p2p matching pass.
#[derive(Debug, Clone, Default)]
pub struct P2pResult {
    /// Warnings found.
    pub warnings: Vec<StaticWarning>,
    /// Functions whose `MPI_Finalize` needs the p2p epoch census.
    pub epoch_functions: Vec<String>,
}

/// A span-free program point: `(function index, block, instruction)`.
/// The materializer re-reads the live instruction's span through it, so
/// a cached [`P2pCore`] survives edits that move code without changing
/// structure (the whitespace-interior-edit hazard).
type Locator = (usize, BlockId, usize);

/// One matching diagnostic with locators instead of spans.
#[derive(Debug, Clone)]
struct P2pWarningCore {
    kind: WarningKind,
    func: String,
    message: String,
    site: Locator,
    related: Vec<(Locator, String)>,
}

/// The span-free output of the p2p matching pass — what the incremental
/// store caches under [`crate::query::QueryDb::module_p2p_key`].
/// Messages embed only tags and communicator-class labels, which are
/// stable while the key is green; spans are *not* stored (see
/// `Locator`).
#[derive(Debug, Clone, Default)]
pub struct P2pCore {
    warnings: Vec<P2pWarningCore>,
    epoch_functions: Vec<String>,
}

/// Turn a cached (or fresh) [`P2pCore`] into span-bearing warnings by
/// reading each locator's instruction span from the live IR.
pub fn materialize_p2p(core: &P2pCore, m: &Module) -> P2pResult {
    let span_of = |(fi, b, ii): Locator| -> Span {
        m.funcs[fi].blocks[b.0 as usize].instrs[ii]
            .span()
            .unwrap_or(Span::DUMMY)
    };
    P2pResult {
        warnings: core
            .warnings
            .iter()
            .map(|w| StaticWarning {
                kind: w.kind,
                func: w.func.clone(),
                message: w.message.clone(),
                span: span_of(w.site),
                related: w
                    .related
                    .iter()
                    .map(|(loc, msg)| (span_of(*loc), msg.clone()))
                    .collect(),
            })
            .collect(),
        epoch_functions: core.epoch_functions.clone(),
    }
}

/// Run the pass over a whole module, reading register resolutions and
/// dominator trees from the fact store.
pub fn check_p2p(cx: &AnalysisCx) -> P2pResult {
    materialize_p2p(&p2p_core(cx), cx.module)
}

/// The span-free matching pass: everything [`check_p2p`] computes, with
/// warning positions as `Locator`s.
pub fn p2p_core(cx: &AnalysisCx) -> P2pCore {
    let m = cx.module;
    let comms = &cx.comms;
    let mut out = P2pCore::default();

    // Collect every site, module-wide, in deterministic order —
    // *reachable* functions only: an uncalled helper's traffic never
    // flows, so its sends must neither warn nor balance the keys of
    // receives that do execute.
    let mut sites: Vec<Site> = Vec::new();
    let mut waits: Vec<WaitSite> = Vec::new();
    for (fidx, f) in m.funcs.iter().enumerate() {
        if !cx.is_reachable(fidx) {
            continue;
        }
        let fc = cx.comms_of(fidx);
        let fr = cx.reqs_of(fidx);
        for (bid, b) in f.iter_blocks() {
            for (iidx, i) in b.instrs.iter().enumerate() {
                let Instr::Mpi { op, dest, .. } = i else {
                    continue;
                };
                let req_class = || {
                    dest.map(|d| match fr.of_operand(Value::Reg(d)) {
                        ReqResolution::One(c) => c,
                        _ => ReqId::UNKNOWN,
                    })
                    .unwrap_or(ReqId::UNKNOWN)
                };
                let (dir, tag, comm, name, req) = match op {
                    MpiIr::Send { tag, comm, .. } => (Dir::Send, tag, comm, "MPI_Send", None),
                    MpiIr::Recv { tag, comm, .. } => (Dir::Recv, tag, comm, "MPI_Recv", None),
                    MpiIr::Isend { tag, comm, .. } => {
                        (Dir::Send, tag, comm, "MPI_Isend", Some(req_class()))
                    }
                    MpiIr::Irecv { tag, comm, .. } => {
                        (Dir::Recv, tag, comm, "MPI_Irecv", Some(req_class()))
                    }
                    MpiIr::Wait { request } => {
                        waits.push(WaitSite {
                            func: fidx,
                            block: bid,
                            instr: iidx,
                            class: wait_class(fr, *request),
                        });
                        continue;
                    }
                    MpiIr::Waitall { requests } => {
                        for r in requests {
                            waits.push(WaitSite {
                                func: fidx,
                                block: bid,
                                instr: iidx,
                                class: wait_class(fr, *r),
                            });
                        }
                        continue;
                    }
                    _ => continue,
                };
                sites.push(Site {
                    func: fidx,
                    block: bid,
                    instr: iidx,
                    dir,
                    comm: fc.of_operand(*comm),
                    tag: tag_key(*tag),
                    name,
                    req,
                });
            }
        }
    }
    if sites.is_empty() {
        return out;
    }

    // --- unmatched keys --------------------------------------------------
    for s in &sites {
        if !s.resolved() {
            continue;
        }
        let has_counterpart = sites.iter().any(|o| o.dir != s.dir && s.key_matches(o));
        if !has_counterpart {
            let consequence = match s.dir {
                Dir::Send => {
                    "no receive in the program can match it; the message is \
                     never consumed"
                }
                Dir::Recv => {
                    "no send in the program can match it; the receive blocks \
                     forever"
                }
            };
            out.warnings.push(P2pWarningCore {
                kind: WarningKind::UnmatchedP2p,
                func: m.funcs[s.func].name.clone(),
                message: format!(
                    "{} with tag {} on {} is unmatched: {consequence}",
                    s.name,
                    s.tag,
                    comms.table.label(s.comm),
                ),
                site: (s.func, s.block, s.instr),
                related: Vec::new(),
            });
        }
    }

    // --- receive-before-send ordering ------------------------------------
    // The blocking point of an `MPI_Recv` is the receive itself; the
    // blocking point of an `MPI_Irecv` is every wait that completes its
    // request class (deferred completion). Dominator trees come from the
    // fact store — computed once per function, shared with the other
    // phases.
    for r in sites.iter().filter(|s| s.dir == Dir::Recv) {
        if !r.resolved() {
            continue;
        }
        let matching: Vec<&Site> = sites
            .iter()
            .filter(|s| s.dir == Dir::Send && r.key_matches(s))
            .collect();
        if matching.is_empty() {
            continue; // already reported as unmatched
        }
        // Cross-function producers: no ordering information.
        if matching.iter().any(|s| s.func != r.func) {
            continue;
        }
        // The program points where this receive blocks.
        let block_points: Vec<(BlockId, usize)> = match r.req {
            None => vec![(r.block, r.instr)],
            Some(class) => {
                if class.is_unknown() {
                    continue; // cannot attribute a wait to this post
                }
                let for_class: Vec<&WaitSite> = waits
                    .iter()
                    .filter(|w| w.func == r.func && w.class.is_none_or(|c| c == class))
                    .collect();
                if for_class.is_empty() {
                    continue; // leaked request: the request pass reports it
                }
                for_class.iter().map(|w| (w.block, w.instr)).collect()
            }
        };
        let f = &m.funcs[r.func];
        let dom = &cx.funcs[r.func].cfg().dom;
        // Every blocking point must precede every matching send: if one
        // wait site can run after a send, the message can exist.
        let all_dominated = block_points.iter().all(|&(wb, wi)| {
            matching.iter().all(|s| {
                if s.block == wb {
                    wi < s.instr
                } else {
                    dom.dominates(wb, s.block)
                }
            })
        });
        if all_dominated {
            let mut related: Vec<(Locator, String)> = Vec::new();
            if r.req.is_some() {
                for &(wb, wi) in &block_points {
                    if (wb, wi) != (r.block, r.instr) {
                        related.push(((r.func, wb, wi), "the receive blocks at this wait".into()));
                    }
                }
            }
            related.extend(matching.iter().map(|s| {
                (
                    (s.func, s.block, s.instr),
                    "matching send only happens after the receive".into(),
                )
            }));
            let blocking_point = if r.req.is_some() {
                "its completing wait"
            } else {
                "the receive"
            };
            out.warnings.push(P2pWarningCore {
                kind: WarningKind::P2pOrder,
                func: f.name.clone(),
                message: format!(
                    "{} with tag {} on {} precedes every matching send on \
                     every path: all ranks block in {blocking_point} before \
                     any rank can have sent",
                    r.name,
                    r.tag,
                    comms.table.label(r.comm),
                ),
                site: (r.func, r.block, r.instr),
                related,
            });
        }
    }

    // The census must sit where `MPI_Finalize` is, not where the
    // suspect send/recv is — the suspect p2p may live in a helper while
    // finalize is in `main`. The counters are world-global, so any
    // pre-finalize census observes all traffic; place one in every
    // function containing a finalize whenever the module has suspect
    // p2p traffic.
    if !out.warnings.is_empty() {
        out.epoch_functions = finalize_functions(m);
    }
    out
}

/// Names of the functions containing an `MPI_Finalize` — where the p2p
/// epoch census belongs (world-global counters observe all traffic).
pub fn finalize_functions(m: &Module) -> Vec<String> {
    m.funcs
        .iter()
        .filter(|f| {
            f.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
                matches!(
                    i,
                    Instr::Mpi {
                        op: MpiIr::Finalize,
                        ..
                    }
                )
            })
        })
        .map(|f| f.name.clone())
        .collect()
}

/// Static key of a tag operand: constant, wildcard, or unresolved.
fn tag_key(v: Value) -> TagKey {
    match v {
        Value::Const(Const::Int(ANY_TAG)) => TagKey::Any,
        Value::Const(Const::Int(x)) => TagKey::Known(x),
        _ => TagKey::Unresolved,
    }
}

/// The request class a wait operand resolves to (None = any class).
fn wait_class(fr: &crate::request::FuncRequests, v: Value) -> Option<ReqId> {
    match fr.of_operand(v) {
        ReqResolution::One(c) => Some(c),
        // Unknown or never-posted: may complete any request (the
        // request pass reports never-posted operands).
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pw::InitialContext;
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;

    fn run(src: &str) -> P2pResult {
        let unit = parse_and_check("t.mh", src).expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        let cx = AnalysisCx::build(&m, InitialContext::Sequential, parcoach_pool::global());
        check_p2p(&cx)
    }

    #[test]
    fn matched_pingpong_is_quiet() {
        let r = run("fn main() {
                let peer = size() - 1 - rank();
                if (rank() == 0) {
                    MPI_Send(1.0, peer, 4);
                    let v = MPI_Recv(peer, 4);
                } else {
                    let v = MPI_Recv(peer, 4);
                    MPI_Send(2.0, peer, 4);
                }
            }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
        assert!(r.epoch_functions.is_empty());
    }

    #[test]
    fn recv_before_send_flagged() {
        let r = run("fn main() {
                MPI_Init();
                let peer = size() - 1 - rank();
                let v = MPI_Recv(peer, 7);
                MPI_Send(1, peer, 7);
                MPI_Finalize();
            }");
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::P2pOrder);
        assert_eq!(r.epoch_functions, vec!["main".to_string()]);
    }

    #[test]
    fn epoch_census_placed_at_finalize_not_at_suspect_site() {
        // The suspect send lives in a helper; the census must land in
        // the function that owns MPI_Finalize.
        let r = run("fn leak() { MPI_Send(1, 0, 5); }
             fn main() {
                MPI_Init();
                leak();
                MPI_Finalize();
            }");
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::UnmatchedP2p);
        assert_eq!(
            r.epoch_functions,
            vec!["main".to_string()],
            "census goes where finalize is"
        );
    }

    #[test]
    fn unmatched_tags_flagged_both_ways() {
        let r = run("fn main() {
                let peer = size() - 1 - rank();
                MPI_Send(1, peer, 1);
                let v = MPI_Recv(peer, 2);
            }");
        assert_eq!(r.warnings.len(), 2, "{:?}", r.warnings);
        assert!(r
            .warnings
            .iter()
            .all(|w| w.kind == WarningKind::UnmatchedP2p));
    }

    #[test]
    fn unknown_tag_suppresses() {
        let r = run("fn main() {
                let t = rank() + 1;
                MPI_Send(1, 0, t);
                let v = MPI_Recv(0, 99);
            }");
        // The unknown-tag send may match tag 99; the recv has a
        // potential producer, and the send key is unresolved.
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn split_comm_does_not_match_world() {
        let r = run("fn main() {
                let c = MPI_Comm_split(MPI_COMM_WORLD, 0, rank());
                MPI_Send(1, 0, 5, c);
                let v = MPI_Recv(0, 5);
            }");
        assert_eq!(r.warnings.len(), 2, "{:?}", r.warnings);
        assert!(r
            .warnings
            .iter()
            .all(|w| w.kind == WarningKind::UnmatchedP2p));
    }

    #[test]
    fn same_comm_class_matches_across_split() {
        let r = run("fn main() {
                let c = MPI_Comm_split(MPI_COMM_WORLD, rank() % 2, rank());
                if (rank() == 0) {
                    MPI_Send(1, 0, 5, c);
                } else {
                    let v = MPI_Recv(0, 5, c);
                }
            }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn sends_in_sibling_sections_not_ordered() {
        // The MPIxThreads-correct pattern: another thread produces the
        // message; the receive does not dominate the send.
        let r = run("fn main() {
                let peer = size() - 1 - rank();
                parallel num_threads(2) {
                    sections {
                        section { MPI_Send(3.5, peer, 10); }
                        section { let v = MPI_Recv(peer, 10); }
                    }
                }
            }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn irecv_then_send_then_wait_is_quiet() {
        // Deferred completion: the wait comes after the send, so the
        // message can exist when the rank blocks — the correct
        // non-blocking pattern.
        let r = run("fn main() {
                let peer = size() - 1 - rank();
                let rr = MPI_Irecv(peer, 4);
                MPI_Send(1.0, peer, 4);
                let v = MPI_Wait(rr);
            }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn wait_before_send_flagged() {
        // The wait dominates the only matching send: every rank blocks
        // before any rank can have produced the message.
        let r = run("fn main() {
                MPI_Init();
                let peer = size() - 1 - rank();
                let rr = MPI_Irecv(peer, 7);
                let v = MPI_Wait(rr);
                MPI_Send(1.0, peer, 7);
                MPI_Finalize();
            }");
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::P2pOrder);
        assert!(r.warnings[0].message.contains("MPI_Irecv"));
        assert_eq!(r.epoch_functions, vec!["main".to_string()]);
    }

    #[test]
    fn waitall_before_sends_flagged_per_comm() {
        let r = run("fn main() {
                MPI_Init();
                let c = MPI_Comm_dup(MPI_COMM_WORLD);
                let peer = size() - 1 - rank();
                let r1 = MPI_Irecv(peer, 1);
                let r2 = MPI_Irecv(peer, 2, c);
                MPI_Waitall(r1, r2);
                MPI_Send(1.0, peer, 1);
                MPI_Send(2.0, peer, 2, c);
                MPI_Finalize();
            }");
        assert_eq!(r.warnings.len(), 2, "{:?}", r.warnings);
        assert!(r.warnings.iter().all(|w| w.kind == WarningKind::P2pOrder));
    }

    #[test]
    fn wildcard_recv_matches_any_tag() {
        let r = run("fn main() {
                let peer = size() - 1 - rank();
                let rr = MPI_Irecv(MPI_ANY_SOURCE, MPI_ANY_TAG);
                MPI_Send(1.0, peer, 9);
                let v = MPI_Wait(rr);
            }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn isend_without_recv_unmatched() {
        let r = run("fn main() {
                MPI_Init();
                let s = MPI_Isend(1, 0, 5);
                MPI_Waitall(s);
                MPI_Finalize();
            }");
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::UnmatchedP2p);
        assert!(r.warnings[0].message.contains("MPI_Isend"));
    }

    #[test]
    fn cross_function_producers_not_ordered() {
        let r = run("fn produce() { MPI_Send(1, 0, 3); }
             fn main() {
                let v = MPI_Recv(0, 3);
                produce();
            }");
        assert!(
            r.warnings.is_empty(),
            "cross-function ordering is unknown: {:?}",
            r.warnings
        );
    }
}
