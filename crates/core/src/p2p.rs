//! Static point-to-point matching (extension; cf. Liao et al., *Static
//! Deadlock Detection in MPI Synchronization Communication*).
//!
//! Blocking sends and receives are paired per **(communicator class,
//! tag)** — the static key under which the simulator's matcher pairs
//! them at run time (the SPMD abstraction cannot align peer ranks
//! statically, so `dest`/`src` do not enter the key). Two diagnostics:
//!
//! * **unmatched-p2p** — a send whose key no receive in the module can
//!   ever match (or vice versa): a tag/communicator mismatch. An
//!   unmatched *receive* blocks forever (the substrate's deadlock
//!   census reports it); an unmatched *send* is silent in a buffered
//!   model — it is discharged dynamically by the p2p epoch census the
//!   instrumentation places before `MPI_Finalize`.
//! * **mismatched-order** — a receive that *dominates* every send that
//!   could match it: along every path, on every rank, the receive
//!   blocks before any matching message can have been produced — the
//!   head-to-head `recv; send` deadlock. Receives whose matching sends
//!   sit on sibling branches, in other functions, or in concurrent
//!   OpenMP regions (a second thread can still produce the message
//!   under `MPI_THREAD_MULTIPLE`) are *not* flagged: dominance fails
//!   there, which is exactly the MPIxThreads-style correct pattern.
//!
//! Sites with an unresolvable tag or communicator conservatively match
//! everything and produce no diagnostics.

use crate::comm::{CommId, ModuleComms};
use crate::report::{StaticWarning, WarningKind};
use parcoach_front::span::Span;
use parcoach_ir::dom::DomTree;
use parcoach_ir::func::Module;
use parcoach_ir::instr::{Instr, MpiIr};
use parcoach_ir::types::{BlockId, Const, Value};

/// Direction of a p2p site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Send,
    Recv,
}

/// One static send/recv site.
#[derive(Debug, Clone)]
struct Site {
    func: usize,
    block: BlockId,
    instr: usize,
    span: Span,
    dir: Dir,
    comm: CommId,
    /// Constant tag, if resolvable.
    tag: Option<i64>,
}

impl Site {
    /// Could a message of `self` be consumed/produced by `other`
    /// (opposite directions assumed by the caller)?
    fn key_matches(&self, other: &Site) -> bool {
        if !self.comm.may_alias(other.comm) {
            return false;
        }
        match (self.tag, other.tag) {
            (Some(a), Some(b)) => a == b,
            _ => true, // unknown tag matches everything
        }
    }

    /// Fully resolved key (eligible for diagnostics)?
    fn resolved(&self) -> bool {
        self.tag.is_some() && !self.comm.is_unknown()
    }
}

/// Result of the module-wide p2p matching pass.
#[derive(Debug, Clone, Default)]
pub struct P2pResult {
    /// Warnings found.
    pub warnings: Vec<StaticWarning>,
    /// Functions whose `MPI_Finalize` needs the p2p epoch census.
    pub epoch_functions: Vec<String>,
}

/// Run the pass over a whole module.
pub fn check_p2p(m: &Module, comms: &ModuleComms) -> P2pResult {
    let mut out = P2pResult::default();

    // Collect every site, module-wide, in deterministic order.
    let mut sites: Vec<Site> = Vec::new();
    for (fidx, f) in m.funcs.iter().enumerate() {
        let fc = comms.of_func(&f.name);
        for (bid, b) in f.iter_blocks() {
            for (iidx, i) in b.instrs.iter().enumerate() {
                let Instr::Mpi { op, span, .. } = i else {
                    continue;
                };
                let (dir, tag, comm) = match op {
                    MpiIr::Send { tag, comm, .. } => (Dir::Send, tag, comm),
                    MpiIr::Recv { tag, comm, .. } => (Dir::Recv, tag, comm),
                    _ => continue,
                };
                sites.push(Site {
                    func: fidx,
                    block: bid,
                    instr: iidx,
                    span: *span,
                    dir,
                    comm: fc.of_operand(*comm),
                    tag: const_int(*tag),
                });
            }
        }
    }
    if sites.is_empty() {
        return out;
    }

    // --- unmatched keys --------------------------------------------------
    for s in &sites {
        if !s.resolved() {
            continue;
        }
        let has_counterpart = sites.iter().any(|o| o.dir != s.dir && s.key_matches(o));
        if !has_counterpart {
            let (what, consequence) = match s.dir {
                Dir::Send => (
                    "MPI_Send",
                    "no receive in the program can match it; the message is \
                     never consumed",
                ),
                Dir::Recv => (
                    "MPI_Recv",
                    "no send in the program can match it; the receive blocks \
                     forever",
                ),
            };
            out.warnings.push(StaticWarning {
                kind: WarningKind::UnmatchedP2p,
                func: m.funcs[s.func].name.clone(),
                message: format!(
                    "{what} with tag {} on {} is unmatched: {consequence}",
                    s.tag.expect("resolved site"),
                    comms.table.label(s.comm),
                ),
                span: s.span,
                related: Vec::new(),
            });
        }
    }

    // --- receive-before-send ordering ------------------------------------
    // Dominator trees are computed lazily, once per function that has a
    // resolvable receive.
    let mut doms: Vec<Option<DomTree>> = (0..m.funcs.len()).map(|_| None).collect();
    for r in sites.iter().filter(|s| s.dir == Dir::Recv) {
        if !r.resolved() {
            continue;
        }
        let matching: Vec<&Site> = sites
            .iter()
            .filter(|s| s.dir == Dir::Send && r.key_matches(s))
            .collect();
        if matching.is_empty() {
            continue; // already reported as unmatched
        }
        // Cross-function producers: no ordering information.
        if matching.iter().any(|s| s.func != r.func) {
            continue;
        }
        let f = &m.funcs[r.func];
        let dom = doms[r.func].get_or_insert_with(|| DomTree::compute(f));
        let all_dominated = matching.iter().all(|s| {
            if s.block == r.block {
                r.instr < s.instr
            } else {
                dom.dominates(r.block, s.block)
            }
        });
        if all_dominated {
            let related: Vec<(Span, String)> = matching
                .iter()
                .map(|s| {
                    (
                        s.span,
                        "matching send only happens after the receive".into(),
                    )
                })
                .collect();
            out.warnings.push(StaticWarning {
                kind: WarningKind::P2pOrder,
                func: f.name.clone(),
                message: format!(
                    "MPI_Recv with tag {} on {} precedes every matching send on \
                     every path: all ranks block in the receive before any rank \
                     can have sent",
                    r.tag.expect("resolved site"),
                    comms.table.label(r.comm),
                ),
                span: r.span,
                related,
            });
        }
    }

    // The census must sit where `MPI_Finalize` is, not where the
    // suspect send/recv is — the suspect p2p may live in a helper while
    // finalize is in `main`. The counters are world-global, so any
    // pre-finalize census observes all traffic; place one in every
    // function containing a finalize whenever the module has suspect
    // p2p traffic.
    if !out.warnings.is_empty() {
        out.epoch_functions = m
            .funcs
            .iter()
            .filter(|f| {
                f.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
                    matches!(
                        i,
                        Instr::Mpi {
                            op: MpiIr::Finalize,
                            ..
                        }
                    )
                })
            })
            .map(|f| f.name.clone())
            .collect();
    }
    out
}

fn const_int(v: Value) -> Option<i64> {
    match v {
        Value::Const(Const::Int(x)) => Some(x),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::compute_comms;
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;

    fn run(src: &str) -> P2pResult {
        let unit = parse_and_check("t.mh", src).expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        let comms = compute_comms(&m);
        check_p2p(&m, &comms)
    }

    #[test]
    fn matched_pingpong_is_quiet() {
        let r = run("fn main() {
                let peer = size() - 1 - rank();
                if (rank() == 0) {
                    MPI_Send(1.0, peer, 4);
                    let v = MPI_Recv(peer, 4);
                } else {
                    let v = MPI_Recv(peer, 4);
                    MPI_Send(2.0, peer, 4);
                }
            }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
        assert!(r.epoch_functions.is_empty());
    }

    #[test]
    fn recv_before_send_flagged() {
        let r = run("fn main() {
                MPI_Init();
                let peer = size() - 1 - rank();
                let v = MPI_Recv(peer, 7);
                MPI_Send(1, peer, 7);
                MPI_Finalize();
            }");
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::P2pOrder);
        assert_eq!(r.epoch_functions, vec!["main".to_string()]);
    }

    #[test]
    fn epoch_census_placed_at_finalize_not_at_suspect_site() {
        // The suspect send lives in a helper; the census must land in
        // the function that owns MPI_Finalize.
        let r = run("fn leak() { MPI_Send(1, 0, 5); }
             fn main() {
                MPI_Init();
                leak();
                MPI_Finalize();
            }");
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::UnmatchedP2p);
        assert_eq!(
            r.epoch_functions,
            vec!["main".to_string()],
            "census goes where finalize is"
        );
    }

    #[test]
    fn unmatched_tags_flagged_both_ways() {
        let r = run("fn main() {
                let peer = size() - 1 - rank();
                MPI_Send(1, peer, 1);
                let v = MPI_Recv(peer, 2);
            }");
        assert_eq!(r.warnings.len(), 2, "{:?}", r.warnings);
        assert!(r
            .warnings
            .iter()
            .all(|w| w.kind == WarningKind::UnmatchedP2p));
    }

    #[test]
    fn unknown_tag_suppresses() {
        let r = run("fn main() {
                let t = rank() + 1;
                MPI_Send(1, 0, t);
                let v = MPI_Recv(0, 99);
            }");
        // The unknown-tag send may match tag 99; the recv has a
        // potential producer, and the send key is unresolved.
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn split_comm_does_not_match_world() {
        let r = run("fn main() {
                let c = MPI_Comm_split(MPI_COMM_WORLD, 0, rank());
                MPI_Send(1, 0, 5, c);
                let v = MPI_Recv(0, 5);
            }");
        assert_eq!(r.warnings.len(), 2, "{:?}", r.warnings);
        assert!(r
            .warnings
            .iter()
            .all(|w| w.kind == WarningKind::UnmatchedP2p));
    }

    #[test]
    fn same_comm_class_matches_across_split() {
        let r = run("fn main() {
                let c = MPI_Comm_split(MPI_COMM_WORLD, rank() % 2, rank());
                if (rank() == 0) {
                    MPI_Send(1, 0, 5, c);
                } else {
                    let v = MPI_Recv(0, 5, c);
                }
            }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn sends_in_sibling_sections_not_ordered() {
        // The MPIxThreads-correct pattern: another thread produces the
        // message; the receive does not dominate the send.
        let r = run("fn main() {
                let peer = size() - 1 - rank();
                parallel num_threads(2) {
                    sections {
                        section { MPI_Send(3.5, peer, 10); }
                        section { let v = MPI_Recv(peer, 10); }
                    }
                }
            }");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn cross_function_producers_not_ordered() {
        let r = run("fn produce() { MPI_Send(1, 0, 3); }
             fn main() {
                let v = MPI_Recv(0, 3);
                produce();
            }");
        assert!(
            r.warnings.is_empty(),
            "cross-function ordering is unknown: {:?}",
            r.warnings
        );
    }
}
