//! Per-node parallelism-word computation.
//!
//! Forward propagation over the lowered CFG. Because lowering produces
//! perfectly nested regions, "the control flow has no impact on the
//! parallelism word" (paper §2) — every join should see the same word
//! from all incoming edges, with two systematic exceptions handled here:
//!
//! * **loop heads**: a barrier inside a loop body extends the word by a
//!   `B` per iteration. The meet collapses barrier-only extensions back
//!   to the first-visit word and records the block as *phase-merged*
//!   (barrier counts beyond this point are iteration-dependent);
//! * **divergent structure**: a barrier or region in only one branch of
//!   a conditional. This is a real suspect — whether it deadlocks
//!   depends on whether the condition is thread-uniform, which the
//!   static analysis cannot know. The meet degrades to
//!   [`PwState::Conflict`] and the divergence is reported.
//!
//! Tokens are pushed edge-sensitively: `single`/`master`/`section`
//! entries only push their `S_i` on the branch edge taken by the chosen
//! thread (the region body); the skip edge keeps the incoming word.
//!
//! Words live in a per-result hash-consed [`WordDag`]: extending by one
//! token is an O(1) intern, the meet compares node ids, and the
//! membership verdict is cached on the node (see [`crate::intern`]).
//! `Vec`-backed [`Word`]s materialize only at report boundaries
//! (divergences, warning messages).

use crate::intern::{WordDag, WordNode};
use crate::lang::ContextClass;
use crate::word::{SKind, Token, Word};
use parcoach_front::span::Span;
use parcoach_ir::func::FuncIr;
use parcoach_ir::instr::{Directive, Terminator};
use parcoach_ir::types::{BlockId, RegionId};
use std::collections::VecDeque;

/// The word state of a block entry. Word nodes index the owning
/// [`PwResult`]'s dag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PwState {
    /// A definite word.
    Word(WordNode),
    /// Incompatible words met — structure depends on control flow.
    Conflict,
}

impl PwState {
    /// The word node, if definite.
    pub fn node(&self) -> Option<WordNode> {
        match self {
            PwState::Word(n) => Some(*n),
            PwState::Conflict => None,
        }
    }
}

/// A structural divergence discovered during propagation.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// The join block where incompatible words met.
    pub block: BlockId,
    /// First word.
    pub left: Word,
    /// Second word.
    pub right: Word,
    /// Representative span (the join block's span).
    pub span: Span,
}

/// Result of the propagation over one function.
#[derive(Debug, Clone)]
pub struct PwResult {
    /// Entry state per block (`None` = unreachable).
    pub entry: Vec<Option<PwState>>,
    /// Blocks where barrier-only loop extensions were collapsed; barrier
    /// counts at and after these blocks are iteration-dependent.
    pub phase_merged: Vec<bool>,
    /// Structural divergences (candidate deadlocks), with materialized
    /// words (they flow into report messages and span rebasing).
    pub divergences: Vec<Divergence>,
    /// The hash-consed words of this function × context.
    pub dag: WordDag,
}

impl PwResult {
    /// The word node at a block's entry, if definite.
    pub fn node_at(&self, b: BlockId) -> Option<WordNode> {
        self.entry
            .get(b.index())
            .and_then(|s| s.as_ref())
            .and_then(|s| s.node())
    }

    /// The word at a block's entry, if definite (materialized).
    pub fn word_at(&self, b: BlockId) -> Option<Word> {
        self.node_at(b).map(|n| self.dag.materialize(n))
    }

    /// The cached classification of a word node of this result.
    pub fn class(&self, n: WordNode) -> ContextClass {
        self.dag.class(n)
    }

    /// True when the block entry is in conflict state.
    pub fn is_conflict(&self, b: BlockId) -> bool {
        matches!(
            self.entry.get(b.index()).and_then(|s| s.as_ref()),
            Some(PwState::Conflict)
        )
    }
}

/// The initial calling context of a function, i.e. the unknown word
/// prefix at function entry (paper: "the programmer can select with an
/// option given to the analysis the initial level to consider").
///
/// Synthetic prefix tokens use region ids starting at `SYNTH_BASE` so
/// they can never collide with real regions of the function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum InitialContext {
    /// Called outside any parallel region (e.g. `main`). Empty prefix.
    #[default]
    Sequential,
    /// Called from a monothreaded region inside a parallel region
    /// (prefix `P·S`).
    ParallelSingle,
    /// Called from an (active) multithreaded region (prefix `P`).
    Parallel,
}

/// Base id for synthetic prefix regions.
pub const SYNTH_BASE: u32 = 1_000_000;

impl InitialContext {
    /// The synthetic word prefix for this context.
    pub fn prefix(self) -> Word {
        match self {
            InitialContext::Sequential => Word::empty(),
            InitialContext::ParallelSingle => Word(vec![
                Token::P(RegionId(SYNTH_BASE)),
                Token::S(RegionId(SYNTH_BASE + 1), SKind::Single),
            ]),
            InitialContext::Parallel => Word(vec![Token::P(RegionId(SYNTH_BASE))]),
        }
    }

    /// Join two contexts, keeping the most parallel one
    /// (`Parallel > ParallelSingle > Sequential`).
    pub fn join(self, other: InitialContext) -> InitialContext {
        use InitialContext::*;
        match (self, other) {
            (Parallel, _) | (_, Parallel) => Parallel,
            (ParallelSingle, _) | (_, ParallelSingle) => ParallelSingle,
            _ => Sequential,
        }
    }
}

/// Compute parallelism words for every block of `f`, starting from the
/// given initial context.
pub fn compute_pw(f: &FuncIr, init: InitialContext) -> PwResult {
    let n = f.block_count();
    let mut dag = WordDag::new();
    let mut entry: Vec<Option<PwState>> = vec![None; n];
    let mut phase_merged = vec![false; n];
    let mut divergences: Vec<Divergence> = Vec::new();
    let mut queue: VecDeque<BlockId> = VecDeque::new();

    // RPO positions distinguish retreating (loop back) edges — where a
    // barrier-only word extension is the normal per-iteration growth —
    // from forward joins, where the same mismatch means a control-flow
    // divergent barrier.
    let rpo = parcoach_ir::graph::reverse_post_order(f);
    let mut rpo_pos = vec![usize::MAX; n];
    for (i, b) in rpo.iter().enumerate() {
        rpo_pos[b.index()] = i;
    }

    entry[f.entry.index()] = Some(PwState::Word(dag.intern_word(&init.prefix())));
    queue.push_back(f.entry);

    // Termination: words only shrink at meets, Conflict is absorbing and
    // each block is re-queued only when its state changes.
    while let Some(b) = queue.pop_front() {
        let state = entry[b.index()].expect("queued blocks have state");
        let blk = f.block(b);
        // Compute the outgoing state per successor edge — at most two,
        // returned inline so the hot loop never heap-allocates.
        let out_states: [Option<(BlockId, PwState)>; 2] = match state {
            PwState::Conflict => uniform_out(&blk.term, |_| PwState::Conflict),
            PwState::Word(w) => transfer(f, b, blk.directive(), &blk.term, w, &mut dag),
        };
        for (succ, new_state) in out_states.into_iter().flatten() {
            match entry[succ.index()] {
                None => {
                    entry[succ.index()] = Some(new_state);
                    queue.push_back(succ);
                }
                Some(existing) => {
                    let retreating = rpo_pos[succ.index()] <= rpo_pos[b.index()];
                    let (met, note) = meet(existing, new_state, retreating, &dag);
                    if let MeetNote::PhaseMerge = note {
                        phase_merged[succ.index()] = true;
                    }
                    if let MeetNote::Diverged(l, r) = note {
                        // Report once per block.
                        if !divergences.iter().any(|d| d.block == succ) {
                            divergences.push(Divergence {
                                block: succ,
                                left: dag.materialize(l),
                                right: dag.materialize(r),
                                span: f.block(succ).span,
                            });
                        }
                    }
                    if met != existing {
                        entry[succ.index()] = Some(met);
                        queue.push_back(succ);
                    }
                }
            }
        }
    }

    PwResult {
        entry,
        phase_merged,
        divergences,
        dag,
    }
}

/// The per-edge states of a block with the same state on every successor
/// (a `Terminator` has at most two), built without allocating.
fn uniform_out(
    term: &Terminator,
    state: impl Fn(BlockId) -> PwState,
) -> [Option<(BlockId, PwState)>; 2] {
    match term {
        Terminator::Goto(t) => [Some((*t, state(*t))), None],
        Terminator::Branch {
            then_bb, else_bb, ..
        } => [
            Some((*then_bb, state(*then_bb))),
            Some((*else_bb, state(*else_bb))),
        ],
        Terminator::Return { .. } | Terminator::Unreachable => [None, None],
    }
}

/// Edge-sensitive transfer function of one block. Word extensions are
/// O(1) dag interns; nothing is cloned.
fn transfer(
    f: &FuncIr,
    b: BlockId,
    dir: Option<&Directive>,
    term: &Terminator,
    w: WordNode,
    dag: &mut WordDag,
) -> [Option<(BlockId, PwState)>; 2] {
    let uniform = |w: WordNode| uniform_out(term, |_| PwState::Word(w));
    match dir {
        None => uniform(w),
        Some(d) => match d {
            Directive::ParallelBegin { region, .. } => uniform(dag.extend(w, Token::P(*region))),
            Directive::SingleBegin { region, .. } => {
                conditional_entry(f, b, term, w, Token::S(*region, SKind::Single), dag)
            }
            Directive::MasterBegin { region, .. } => {
                conditional_entry(f, b, term, w, Token::S(*region, SKind::Master), dag)
            }
            Directive::SectionBegin { region, .. } => {
                conditional_entry(f, b, term, w, Token::S(*region, SKind::Section), dag)
            }
            Directive::ParallelEnd { region }
            | Directive::SingleEnd { region }
            | Directive::MasterEnd { region }
            | Directive::SectionEnd { region } => {
                let closed = dag.close_region(w, *region);
                debug_assert!(
                    closed.is_some(),
                    "verifier guarantees balanced regions in {}",
                    f.name
                );
                uniform(closed.unwrap_or(w))
            }
            Directive::Barrier { .. } => uniform(dag.extend(w, Token::B)),
            // Critical is mutual exclusion, not single-threaded execution:
            // all threads run the body. Worksharing begin/end and pfor
            // chunk setup do not change the thread-parallelism level
            // either (every thread participates).
            Directive::CriticalBegin { .. }
            | Directive::CriticalEnd { .. }
            | Directive::WorkshareBegin { .. }
            | Directive::WorkshareEnd { .. }
            | Directive::PForInit { .. } => uniform(w),
        },
    }
}

/// `single`/`master`/`section` push their token on the then-edge only.
fn conditional_entry(
    f: &FuncIr,
    b: BlockId,
    term: &Terminator,
    w: WordNode,
    token: Token,
    dag: &mut WordDag,
) -> [Option<(BlockId, PwState)>; 2] {
    match term {
        Terminator::Branch {
            then_bb, else_bb, ..
        } => [
            Some((*then_bb, PwState::Word(dag.extend(w, token)))),
            Some((*else_bb, PwState::Word(w))),
        ],
        _ => {
            // Lowering always gives these a branch; degrade gracefully.
            debug_assert!(false, "conditional opener without branch in {} {b}", f.name);
            let ext = dag.extend(w, token);
            uniform_out(term, |_| PwState::Word(ext))
        }
    }
}

enum MeetNote {
    None,
    PhaseMerge,
    Diverged(WordNode, WordNode),
}

/// Meet of an existing entry state with a new incoming state. Word
/// equality is node-id equality (hash-consing).
///
/// `retreating` marks loop back edges: only there is a barrier-only word
/// extension collapsed (per-iteration barrier growth). On forward joins
/// the same mismatch is a genuine divergence — a barrier executed on one
/// path but not the other.
fn meet(
    existing: PwState,
    incoming: PwState,
    retreating: bool,
    dag: &WordDag,
) -> (PwState, MeetNote) {
    match (existing, incoming) {
        (PwState::Conflict, _) | (_, PwState::Conflict) => (PwState::Conflict, MeetNote::None),
        (PwState::Word(a), PwState::Word(b)) => {
            if a == b {
                (PwState::Word(a), MeetNote::None)
            } else if retreating && dag.extends_by_barriers(b, a) {
                // Loop head: back edge brings extra barriers. Keep the
                // first-visit word.
                (PwState::Word(a), MeetNote::PhaseMerge)
            } else if retreating && dag.extends_by_barriers(a, b) {
                (PwState::Word(b), MeetNote::PhaseMerge)
            } else {
                (PwState::Conflict, MeetNote::Diverged(a, b))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{classify, MonoVerdict};
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;
    use parcoach_ir::Module;

    fn lower(src: &str) -> Module {
        let unit = parse_and_check("t.mh", src).expect("valid");
        let m = lower_program(&unit.program, &unit.signatures);
        assert!(parcoach_ir::verify_module(&m).is_empty());
        m
    }

    /// The word at the (unique) block containing a collective.
    fn word_at_collective(src: &str) -> Word {
        let m = lower(src);
        let f = m.main().unwrap();
        let pw = compute_pw(f, InitialContext::Sequential);
        let cb = f.collective_blocks();
        assert_eq!(cb.len(), 1, "expected exactly one collective block");
        pw.word_at(cb[0]).expect("definite word")
    }

    #[test]
    fn toplevel_collective_empty_word() {
        let w = word_at_collective("fn main() { MPI_Barrier(); }");
        assert!(w.is_empty());
    }

    #[test]
    fn collective_in_parallel_is_p() {
        let w = word_at_collective("fn main() { parallel { MPI_Barrier(); } }");
        assert_eq!(w.to_string(), "P0");
        assert_eq!(classify(&w).verdict, MonoVerdict::MultiThreaded);
    }

    #[test]
    fn collective_in_single_is_ps() {
        let w = word_at_collective("fn main() { parallel { single { MPI_Barrier(); } } }");
        assert_eq!(w.stripped().len(), 2);
        assert_eq!(classify(&w).verdict, MonoVerdict::MonoThreaded);
    }

    #[test]
    fn barrier_between_singles_shows_in_word() {
        // Second single's word must contain the B of the first single's
        // implicit barrier.
        let m = lower("fn main() { parallel { single { } single { MPI_Barrier(); } } }");
        let f = m.main().unwrap();
        let pw = compute_pw(f, InitialContext::Sequential);
        let cb = f.collective_blocks();
        let w = pw.word_at(cb[0]).unwrap();
        assert_eq!(w.barrier_count(), 1, "word {w}");
        assert!(w.tokens().last().unwrap().is_s());
    }

    #[test]
    fn nowait_single_has_no_barrier_token() {
        let m = lower("fn main() { parallel { single nowait { } single { MPI_Barrier(); } } }");
        let f = m.main().unwrap();
        let pw = compute_pw(f, InitialContext::Sequential);
        let cb = f.collective_blocks();
        let w = pw.word_at(cb[0]).unwrap();
        assert_eq!(w.barrier_count(), 0, "word {w}");
    }

    #[test]
    fn nested_parallel_word() {
        let w =
            word_at_collective("fn main() { parallel { parallel { single { MPI_Barrier(); } } } }");
        assert_eq!(classify(&w).verdict, MonoVerdict::NestedParallelism);
    }

    #[test]
    fn word_after_parallel_is_empty() {
        let m = lower("fn main() { parallel { let x = 1; } MPI_Barrier(); }");
        let f = m.main().unwrap();
        let pw = compute_pw(f, InitialContext::Sequential);
        let cb = f.collective_blocks();
        assert!(pw.word_at(cb[0]).unwrap().is_empty());
    }

    #[test]
    fn initial_context_prefixes() {
        let m = lower("fn main() { MPI_Barrier(); }");
        let f = m.main().unwrap();
        let pw = compute_pw(f, InitialContext::Parallel);
        let cb = f.collective_blocks();
        let w = pw.word_at(cb[0]).unwrap();
        assert_eq!(classify(&w).verdict, MonoVerdict::MultiThreaded);
        let pw = compute_pw(f, InitialContext::ParallelSingle);
        let w = pw.word_at(cb[0]).unwrap();
        assert_eq!(classify(&w).verdict, MonoVerdict::MonoThreaded);
    }

    #[test]
    fn loop_with_barrier_phase_merges_without_divergence() {
        let m = lower("fn main() { parallel { for (i in 0..10) { critical { } barrier; } } }");
        let f = m.main().unwrap();
        let pw = compute_pw(f, InitialContext::Sequential);
        assert!(
            pw.divergences.is_empty(),
            "uniform loop barrier must not be a divergence: {:?}",
            pw.divergences
        );
        assert!(pw.phase_merged.iter().any(|&x| x), "expected phase merge");
    }

    #[test]
    fn barrier_in_one_branch_diverges() {
        let m = lower("fn main() { parallel { if (thread_num() == 0) { barrier; } } }");
        let f = m.main().unwrap();
        let pw = compute_pw(f, InitialContext::Sequential);
        assert!(
            !pw.divergences.is_empty(),
            "thread-divergent barrier must be reported"
        );
    }

    #[test]
    fn balanced_branches_do_not_diverge() {
        let m = lower(
            "fn main() { parallel { if (thread_num() == 0) { critical { } } else { critical { } } } }",
        );
        let f = m.main().unwrap();
        let pw = compute_pw(f, InitialContext::Sequential);
        assert!(pw.divergences.is_empty(), "{:?}", pw.divergences);
    }

    #[test]
    fn single_in_one_branch_nowait_ok() {
        // nowait single in one branch: no barrier divergence (the S is
        // popped before the join).
        let m = lower("fn main() { parallel { if (thread_num() == 0) { single nowait { } } } }");
        let f = m.main().unwrap();
        let pw = compute_pw(f, InitialContext::Sequential);
        assert!(pw.divergences.is_empty(), "{:?}", pw.divergences);
    }

    #[test]
    fn single_in_one_branch_with_barrier_diverges() {
        let m = lower("fn main() { parallel { if (thread_num() == 0) { single { } } } }");
        let f = m.main().unwrap();
        let pw = compute_pw(f, InitialContext::Sequential);
        assert!(!pw.divergences.is_empty());
    }

    #[test]
    fn sections_words() {
        let m =
            lower("fn main() { parallel { sections { section { MPI_Barrier(); } section { } } } }");
        let f = m.main().unwrap();
        let pw = compute_pw(f, InitialContext::Sequential);
        let cb = f.collective_blocks();
        let w = pw.word_at(cb[0]).unwrap();
        assert!(classify(&w).verdict.is_monothreaded(), "word {w}");
    }

    #[test]
    fn pfor_body_is_multithreaded() {
        let m = lower("fn main() { parallel { pfor (i in 0..4) { MPI_Barrier(); } } }");
        let f = m.main().unwrap();
        let pw = compute_pw(f, InitialContext::Sequential);
        let cb = f.collective_blocks();
        let w = pw.word_at(cb[0]).unwrap();
        assert_eq!(classify(&w).verdict, MonoVerdict::MultiThreaded);
    }

    #[test]
    fn critical_is_not_single_threaded() {
        let m = lower("fn main() { parallel { critical { MPI_Barrier(); } } }");
        let f = m.main().unwrap();
        let pw = compute_pw(f, InitialContext::Sequential);
        let cb = f.collective_blocks();
        let w = pw.word_at(cb[0]).unwrap();
        assert_eq!(classify(&w).verdict, MonoVerdict::MultiThreaded);
    }

    #[test]
    fn all_reachable_blocks_have_state() {
        let m = lower(
            "fn main() {
                let t = 0;
                parallel num_threads(4) {
                    single { t = 1; }
                    pfor (i in 0..8) { let y = i; }
                    master { t = 2; }
                }
                if (t > 0) { MPI_Barrier(); }
            }",
        );
        let f = m.main().unwrap();
        let pw = compute_pw(f, InitialContext::Sequential);
        let reach = parcoach_ir::graph::reachable(f);
        for b in f.block_ids() {
            if reach[b.index()] {
                assert!(
                    pw.entry[b.index()].is_some(),
                    "reachable block {b} lacks pw state"
                );
            }
        }
    }

    #[test]
    fn context_join() {
        use InitialContext::*;
        assert_eq!(Sequential.join(Parallel), Parallel);
        assert_eq!(ParallelSingle.join(Sequential), ParallelSingle);
        assert_eq!(ParallelSingle.join(Parallel), Parallel);
        assert_eq!(Sequential.join(Sequential), Sequential);
    }
}
