//! The per-function analysis fact store.
//!
//! Every static phase used to re-walk the IR on its own: `matching`
//! rebuilt block→event maps and recomputed dominator structures,
//! `concurrency` recomputed loops, `p2p` computed dominator trees
//! lazily, and each phase re-resolved communicator/request registers.
//! [`AnalysisCx`] computes all of those **once per function** — fanned
//! out over the pool ahead of the phases — and the phases read shared,
//! immutable facts:
//!
//! * dominator / post-dominator trees, per-block post-dominance
//!   frontiers (the memoized `PDF+` engine's input) and natural loops;
//! * the parallelism-word result (moved out of the interprocedural
//!   context fixpoint — no longer cloned per phase) plus interned
//!   per-block entry words;
//! * the block→event map with interned [`EventId`]s;
//! * the module-wide communicator and request register resolutions.
//!
//! Construction is deterministic at every pool width: the parallel part
//! is pure per function and results are merged in module order; the
//! arenas ([`crate::intern`]) are filled by the sequential merge, so
//! interned ids never depend on scheduling.

use crate::comm::{compute_comms, FuncComms, ModuleComms};
use crate::context::{compute_contexts_with, CallContexts};
use crate::intern::{EventArena, EventId, SymTable, WordArena, WordId, WordNode};
use crate::matching::{block_events, Event};
use crate::pw::{compute_pw, InitialContext, PwResult, PwState};
use crate::query::QueryDb;
use crate::request::{compute_requests, FuncRequests, ModuleRequests};
use parcoach_front::span::Span;
use parcoach_ir::dom::{DomTree, PostDomTree};
use parcoach_ir::func::{FuncIr, Module};
use parcoach_ir::loops::LoopInfo;
use parcoach_ir::types::BlockId;
use std::collections::HashMap;
use std::sync::Arc;

/// Control-flow facts for one *MPI-relevant* function: functions with
/// no MPI instructions and no collective events (most kernels of a
/// large workload) never query these, so the store skips computing
/// them entirely.
#[derive(Debug)]
pub struct CfgFacts {
    /// Forward dominator tree (concurrency loops, p2p ordering).
    pub dom: DomTree,
    /// Post-dominator tree (Algorithm 1, balanced-arms joins).
    pub pdt: PostDomTree,
    /// Per-block post-dominance frontiers — computed once; `PDF+` of
    /// event sets is assembled from these by the memoizing engine.
    /// Empty (not per-block) for functions issuing no collective
    /// events: nothing ever queries their frontiers.
    pub pdf: Vec<Vec<BlockId>>,
    /// Natural loops (self-concurrency detection).
    pub loops: LoopInfo,
}

/// Facts for one function, computed once and shared by all phases.
/// The expensive span-free members (`cfg`, `pw`) are `Arc`-shared with
/// the incremental [`QueryDb`] so warm re-checks reuse them in place.
#[derive(Debug)]
pub struct FuncFacts {
    /// CFG facts; `None` for functions with no MPI instructions and no
    /// collective events — no phase ever queries those.
    cfg: Option<Arc<CfgFacts>>,
    /// Parallelism words under the function's final calling context.
    pub pw: Arc<PwResult>,
    /// Interned entry word per block (`None` = unreachable or conflict;
    /// [`PwResult`] distinguishes the two when it matters). All-`None`
    /// for MPI-irrelevant functions: only the concurrency phase reads
    /// these, indexed by MPI block, so nothing else is interned.
    pub words: Vec<Option<WordId>>,
    /// Collective events issued per block, in instruction order.
    pub block_events: Vec<Vec<(EventId, Span)>>,
}

impl FuncFacts {
    /// The CFG facts. Only MPI-relevant functions have them; the phases
    /// query through here exactly when they found an MPI node or event,
    /// so a miss is a fact-store construction bug.
    pub fn cfg(&self) -> &CfgFacts {
        self.cfg
            .as_deref()
            .expect("CFG facts queried for a function without MPI instructions or events")
    }

    /// Whether CFG facts were computed (i.e. the function is
    /// MPI-relevant).
    pub fn has_cfg(&self) -> bool {
        self.cfg.is_some()
    }
}

/// The module-wide fact store threaded through the whole static phase.
#[derive(Debug)]
pub struct AnalysisCx<'m> {
    /// The module under analysis.
    pub module: &'m Module,
    /// Interprocedural call contexts (the pw map is drained into
    /// [`FuncFacts::pw`] — use the facts, not [`CallContexts::pw_of`]).
    pub ctxs: CallContexts,
    /// Interned communicator classes + per-function register resolution.
    /// `Arc`-shared with the incremental [`QueryDb`]'s module-wide cache
    /// when the fingerprint key is green.
    pub comms: Arc<ModuleComms>,
    /// Interned request classes + per-function register resolution
    /// (`Arc`-shared like [`AnalysisCx::comms`]).
    pub reqs: Arc<ModuleRequests>,
    /// Interned function names.
    pub syms: SymTable,
    /// Interned collective events.
    pub events: EventArena,
    /// Interned parallelism words.
    pub words: WordArena,
    /// Per-function facts, indexed like `module.funcs`.
    pub funcs: Vec<FuncFacts>,
    /// Entry-point reachability, indexed like `module.funcs`: `main`
    /// and everything transitively called from it. The phases only
    /// diagnose reachable code — an uncalled helper can neither warn
    /// (its operations never execute: a guaranteed false positive,
    /// found by differential fuzzing) nor feed the module-wide p2p
    /// matcher (its sends would silently balance reachable receives).
    pub reachable: Vec<bool>,
}

/// Walk the call graph from `main` using the contexts' cached
/// per-function call summaries (no IR re-walk). Modules without a
/// `main` (library-style inputs, unit-test fixtures) keep every
/// function reachable.
fn compute_reachable(m: &Module, ctxs: &CallContexts) -> Vec<bool> {
    let Some(&entry) = m.by_name.get("main") else {
        return vec![true; m.funcs.len()];
    };
    let mut reachable = vec![false; m.funcs.len()];
    reachable[entry] = true;
    let mut work = vec![entry];
    while let Some(fidx) = work.pop() {
        for (_, func, _) in &ctxs.summaries[fidx].call_sites {
            if let Some(&cidx) = m.by_name.get(func) {
                if !reachable[cidx] {
                    reachable[cidx] = true;
                    work.push(cidx);
                }
            }
        }
    }
    reachable
}

/// The pool-computed part of one function's facts (no interning, so the
/// workers stay pure and order-independent).
struct RawFacts {
    /// Does any phase query CFG facts for this function?
    needs_cfg: bool,
    /// Does the function issue collective events (⇒ frontiers needed)?
    has_events: bool,
    raw_events: Vec<Vec<(Event, Span)>>,
}

/// Dominator/post-dominator trees, frontiers and loops for one
/// function. `with_pdf` additionally materializes the per-block
/// post-dominance frontiers (only event-bearing functions query them).
fn compute_cfg(f: &FuncIr, with_pdf: bool) -> CfgFacts {
    let dom = DomTree::compute(f);
    let pdt = PostDomTree::compute(f);
    let loops = LoopInfo::compute(f, &dom);
    let pdf = if with_pdf {
        pdt.frontier(f)
    } else {
        Vec::new()
    };
    CfgFacts {
        dom,
        pdt,
        pdf,
        loops,
    }
}

impl<'m> AnalysisCx<'m> {
    /// Compute contexts and build the fact store for `m`, fanning the
    /// per-function construction out over `pool`.
    pub fn build(m: &'m Module, entry: InitialContext, pool: &parcoach_pool::Pool) -> Self {
        let ctxs = compute_contexts_with(m, entry, pool);
        Self::from_contexts(m, ctxs, pool)
    }

    /// Build the fact store from already-computed call contexts. The
    /// contexts' cached pw results are *moved* into the per-function
    /// facts (they were previously cloned once per function).
    pub fn from_contexts(m: &'m Module, ctxs: CallContexts, pool: &parcoach_pool::Pool) -> Self {
        Self::from_contexts_db(m, ctxs, pool, None, false)
    }

    /// [`AnalysisCx::from_contexts`] consulting an incremental
    /// [`QueryDb`] for the per-function CFG facts and — when
    /// `module_memo` is on — the module-wide communicator/request
    /// tables. The db must have been reconciled against `m` (see
    /// [`QueryDb::reconcile_module`]).
    pub fn from_contexts_db(
        m: &'m Module,
        mut ctxs: CallContexts,
        pool: &parcoach_pool::Pool,
        mut db: Option<&mut QueryDb>,
        module_memo: bool,
    ) -> Self {
        // Module-wide register resolutions: wholesale-cached behind a
        // key over every function's comm/request input projection, so an
        // edit touching no communicator (or request) instruction reuses
        // the entire table. The interning spans inside a reused table
        // may be stale, but nothing reads them — labels print class ids.
        let (comms, reqs) = match db.as_deref_mut().filter(|_| module_memo) {
            Some(db) => {
                let ck = db.module_comm_key(m);
                let comms = db.module_comms(ck).unwrap_or_else(|| {
                    let t = Arc::new(compute_comms(m));
                    db.insert_module_comms(ck, t.clone());
                    t
                });
                let rk = db.module_req_key(m);
                let reqs = db.module_reqs(rk).unwrap_or_else(|| {
                    let t = Arc::new(compute_requests(m));
                    db.insert_module_reqs(rk, t.clone());
                    t
                });
                (comms, reqs)
            }
            None => (Arc::new(compute_comms(m)), Arc::new(compute_requests(m))),
        };
        let syms = SymTable::for_module(m);

        // Parallel stage 1: block→event maps. Span-bearing, so always
        // derived fresh from the (span-correct) IR — but only for
        // functions that *can* produce events. The contexts' call
        // summaries tell us for free: a function with no MPI
        // instruction and no collective-bearing callee has no events
        // and never queries CFG facts, so its blocks are not walked at
        // all (most kernels of a large workload).
        let idxs: Vec<usize> = (0..m.funcs.len()).collect();
        let raws: Vec<RawFacts> = pool.par_map(&idxs, |&i| {
            let f = &m.funcs[i];
            let s = &ctxs.summaries[i];
            let relevant = s.has_mpi
                || s.call_sites
                    .iter()
                    .any(|(_, c, _)| ctxs.bears_collectives(c));
            if !relevant {
                return RawFacts {
                    needs_cfg: false,
                    has_events: false,
                    raw_events: vec![Vec::new(); f.block_count()],
                };
            }
            let fc = comms.func(&f.name);
            let raw_events: Vec<Vec<(Event, Span)>> = f
                .block_ids()
                .map(|b| block_events(f, b, &ctxs, fc, &syms))
                .collect();
            let has_events = raw_events.iter().any(|v| !v.is_empty());
            // CFG facts are only queried for functions with MPI nodes
            // (mono/concurrency/p2p) or collective events (matching) —
            // everything else skips the dominator/loop computations
            // entirely.
            RawFacts {
                needs_cfg: s.has_mpi || has_events,
                has_events,
                raw_events,
            }
        });

        // Stage 2: CFG facts — served from the query cache on a
        // fingerprint hit, computed on the pool otherwise. Frontiers
        // feed `PDF+` queries, which only event-bearing functions
        // issue, so event presence is part of the cache key.
        let mut cfgs: Vec<Option<Arc<CfgFacts>>> = (0..m.funcs.len()).map(|_| None).collect();
        let mut misses: Vec<usize> = Vec::new();
        for (i, raw) in raws.iter().enumerate() {
            if !raw.needs_cfg {
                continue;
            }
            let cached = db
                .as_deref_mut()
                .and_then(|db| db.cfg(&m.funcs[i].name, raw.has_events));
            match cached {
                Some(cfg) => cfgs[i] = Some(cfg),
                None => misses.push(i),
            }
        }
        let computed = pool.par_map(&misses, |&i| {
            Arc::new(compute_cfg(&m.funcs[i], raws[i].has_events))
        });
        for (&i, cfg) in misses.iter().zip(computed) {
            if let Some(db) = db.as_deref_mut() {
                db.insert_cfg(&m.funcs[i].name, raws[i].has_events, cfg.clone());
            }
            cfgs[i] = Some(cfg);
        }

        // Sequential merge in module order: move pw out of the context
        // cache and fill the arenas deterministically.
        let mut events = EventArena::default();
        let mut words = WordArena::default();
        let mut pw_map = std::mem::take(&mut ctxs.pw);
        let mut funcs = Vec::with_capacity(m.funcs.len());
        for ((f, raw), cfg) in m.funcs.iter().zip(raws).zip(cfgs) {
            let pw = pw_map
                .remove(&f.name)
                .unwrap_or_else(|| Arc::new(compute_pw(f, ctxs.context_of(&f.name))));
            // Entry words are only read by the phases for MPI-relevant
            // functions (concurrency indexes them per MPI block), so
            // the rest skip the per-block interning. Words materialize
            // from the function's dag at most once per distinct node
            // (straight-line blocks share nodes).
            let word_ids = if raw.needs_cfg {
                let mut node_memo: HashMap<WordNode, WordId> = HashMap::new();
                pw.entry
                    .iter()
                    .map(|state| match state {
                        Some(PwState::Word(n)) => Some(
                            *node_memo
                                .entry(*n)
                                .or_insert_with(|| words.intern(&pw.dag.materialize(*n))),
                        ),
                        _ => None,
                    })
                    .collect()
            } else {
                vec![None; pw.entry.len()]
            };
            let block_events = raw
                .raw_events
                .into_iter()
                .map(|block| {
                    block
                        .into_iter()
                        .map(|(e, span)| (events.intern(e), span))
                        .collect()
                })
                .collect();
            funcs.push(FuncFacts {
                cfg,
                pw,
                words: word_ids,
                block_events,
            });
        }

        let reachable = compute_reachable(m, &ctxs);
        AnalysisCx {
            module: m,
            ctxs,
            comms,
            reqs,
            syms,
            events,
            words,
            funcs,
            reachable,
        }
    }

    /// Is function `fidx` reachable from the entry point?
    pub fn is_reachable(&self, fidx: usize) -> bool {
        self.reachable[fidx]
    }

    /// Is the function named `name` reachable from the entry point?
    /// Unknown names read as reachable (the conservative answer for
    /// callers that only have a name, e.g. context-fixpoint call sites).
    pub fn is_reachable_name(&self, name: &str) -> bool {
        self.module
            .by_name
            .get(name)
            .is_none_or(|&i| self.reachable[i])
    }

    /// The communicator register resolution of function `fidx`.
    pub fn comms_of(&self, fidx: usize) -> &FuncComms {
        self.comms.func(&self.module.funcs[fidx].name)
    }

    /// The request register resolution of function `fidx`.
    pub fn reqs_of(&self, fidx: usize) -> &FuncRequests {
        self.reqs.func(&self.module.funcs[fidx].name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcoach_front::parse_and_check;
    use parcoach_ir::lower::lower_program;

    fn lower(src: &str) -> Module {
        let unit = parse_and_check("t.mh", src).expect("valid");
        lower_program(&unit.program, &unit.signatures)
    }

    #[test]
    fn facts_cover_every_function_and_block() {
        let m = lower(
            "fn exchange() { MPI_Barrier(); }
             fn main() {
                 if (rank() == 0) { exchange(); }
                 parallel num_threads(2) { single { MPI_Barrier(); } }
             }",
        );
        let cx = AnalysisCx::build(&m, InitialContext::Sequential, parcoach_pool::global());
        assert_eq!(cx.funcs.len(), m.funcs.len());
        for (f, facts) in m.funcs.iter().zip(&cx.funcs) {
            assert_eq!(facts.block_events.len(), f.block_count());
            assert_eq!(facts.words.len(), f.block_count());
            let has_events = facts.block_events.iter().any(|v| !v.is_empty());
            if has_events {
                assert_eq!(facts.cfg().pdf.len(), f.block_count());
            } else if facts.has_cfg() {
                assert!(
                    facts.cfg().pdf.is_empty(),
                    "event-free functions skip frontiers"
                );
            }
        }
        // Both function names are interned; the call event resolves.
        assert!(cx.syms.lookup("exchange").is_some());
        assert!(cx.syms.lookup("main").is_some());
        assert!(!cx.events.is_empty());
        assert!(!cx.words.is_empty());
    }

    #[test]
    fn words_dedup_across_blocks() {
        // Straight-line code: every reachable block shares the empty
        // word plus at most a couple of region words.
        let m = lower("fn main() { let a = 1; let b = a + 1; MPI_Barrier(); print(b); }");
        let cx = AnalysisCx::build(&m, InitialContext::Sequential, parcoach_pool::global());
        let facts = &cx.funcs[m.by_name["main"]];
        let distinct = cx.words.len();
        let populated = facts.words.iter().filter(|w| w.is_some()).count();
        assert!(populated >= 1);
        assert!(
            distinct <= 2,
            "straight-line blocks must share interned words, got {distinct}"
        );
    }

    #[test]
    fn arena_ids_deterministic_across_widths() {
        let m = lower(
            "fn a() { MPI_Barrier(); }
             fn b() { a(); let c = MPI_Comm_dup(MPI_COMM_WORLD); MPI_Barrier(c); }
             fn main() { if (rank() == 0) { b(); } parallel num_threads(2) { single { a(); } } }",
        );
        let mk = |jobs| {
            parcoach_pool::Pool::new(parcoach_pool::PoolConfig {
                jobs,
                deterministic: true,
                seed: 3,
            })
        };
        let p1 = mk(1);
        let p4 = mk(4);
        let cx1 = AnalysisCx::build(&m, InitialContext::Sequential, &p1);
        let cx4 = AnalysisCx::build(&m, InitialContext::Sequential, &p4);
        // Compare id-ordered views (the arenas' lookup maps are
        // HashMaps, whose Debug order is unspecified).
        let events = |cx: &AnalysisCx| -> Vec<_> {
            (0..cx.events.len() as u32)
                .map(|i| cx.events.get(crate::intern::EventId(i)))
                .collect()
        };
        let names = |cx: &AnalysisCx| -> Vec<String> {
            (0..cx.syms.len() as u32)
                .map(|i| cx.syms.name(crate::intern::Sym(i)).to_string())
                .collect()
        };
        let words = |cx: &AnalysisCx| -> Vec<_> {
            (0..cx.words.len() as u32)
                .map(|i| cx.words.get(WordId(i)).clone())
                .collect()
        };
        assert_eq!(events(&cx1), events(&cx4));
        assert_eq!(names(&cx1), names(&cx4));
        assert_eq!(words(&cx1), words(&cx4));
        for (a, b) in cx1.funcs.iter().zip(&cx4.funcs) {
            assert_eq!(
                format!("{:?}", a.block_events),
                format!("{:?}", b.block_events)
            );
        }
    }
}
