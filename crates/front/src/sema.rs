//! Semantic analysis: name resolution, type checking and the structural
//! rules of the paper's execution model.
//!
//! The paper (§1) assumes "an explicit fork/join model, with perfectly
//! nested regions". Sema enforces the structural half of that contract so
//! that the later parallelism-word computation is well-defined:
//!
//! * `return` may not appear inside any OpenMP construct (no branching out
//!   of a structured region);
//! * `break`/`continue` may not cross a construct boundary;
//! * `break` may not leave a worksharing `pfor`;
//! * an explicit `barrier` may not be nested inside `single`, `master`,
//!   `critical`, `pfor` or `sections` (illegal in OpenMP and would
//!   deadlock the team).

use crate::ast::*;
use crate::diag::Diagnostics;
use crate::span::Span;
use std::collections::HashMap;

/// A function signature as seen by callers.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    /// Parameter types in order.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
}

/// Result of semantic analysis over a whole program.
#[derive(Debug, Clone, Default)]
pub struct SemaResult {
    /// Signatures for every function, by name.
    pub signatures: HashMap<String, Signature>,
}

/// The externally visible signature of `f`, as callers see it.
pub fn signature_of(f: &Function) -> Signature {
    Signature {
        params: f.params.iter().map(|p| p.ty).collect(),
        ret: f.ret,
    }
}

/// Type-check and structurally validate a single function body against a
/// complete `signatures` map. This is the per-function half of
/// [`check_program`]; incremental sessions call it directly after a
/// single-function edit whose signature is unchanged.
pub fn check_function(
    f: &Function,
    signatures: &HashMap<String, Signature>,
    diags: &mut Diagnostics,
) {
    let mut ck = Checker {
        signatures,
        diags,
        scopes: vec![HashMap::new()],
        ret_ty: f.ret,
        omp_depth: 0,
        loops: Vec::new(),
        fn_name: &f.name.name,
        barrier_forbidden: false,
    };
    for p in &f.params {
        if p.ty == Type::Void {
            ck.diags.error(
                "bad-param",
                format!("parameter `{}` cannot have type void", p.name.name),
                p.name.span,
            );
        }
        ck.declare(&p.name, p.ty);
    }
    ck.check_block(&f.body);
}

/// Type-check and structurally validate `prog`, reporting into `diags`.
pub fn check_program(prog: &Program, diags: &mut Diagnostics) -> SemaResult {
    let mut signatures = HashMap::new();
    for f in &prog.functions {
        let sig = signature_of(f);
        if signatures.insert(f.name.name.clone(), sig).is_some() {
            diags.error(
                "duplicate-function",
                format!("function `{}` is defined more than once", f.name.name),
                f.name.span,
            );
        }
    }
    if !signatures.contains_key("main") {
        diags.error(
            "missing-main",
            "program has no `main` function",
            Span::DUMMY,
        );
    } else if let Some(main) = prog.function("main") {
        if !main.params.is_empty() {
            diags.error("bad-main", "`main` must take no parameters", main.name.span);
        }
    }

    for f in &prog.functions {
        check_function(f, &signatures, diags);
    }

    SemaResult { signatures }
}

/// What kind of loop a `break`/`continue` may target.
#[derive(Debug, Clone, Copy, PartialEq)]
enum LoopKind {
    Sequential,
    Workshare,
}

struct LoopCtx {
    kind: LoopKind,
    /// OMP nesting depth at loop entry; `break`/`continue` must occur at
    /// the same depth.
    omp_depth: u32,
}

struct Checker<'a> {
    signatures: &'a HashMap<String, Signature>,
    diags: &'a mut Diagnostics,
    /// Lexical scopes, innermost last.
    scopes: Vec<HashMap<String, Type>>,
    ret_ty: Type,
    omp_depth: u32,
    loops: Vec<LoopCtx>,
    fn_name: &'a str,
    /// True while inside single/master/critical/pfor/sections, where an
    /// explicit `barrier` is illegal.
    barrier_forbidden: bool,
}

impl<'a> Checker<'a> {
    fn declare(&mut self, name: &Ident, ty: Type) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.name.clone(), ty);
    }

    fn lookup(&self, name: &str) -> Option<Type> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn check_block(&mut self, b: &Block) {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.check_stmt(s);
        }
        self.scopes.pop();
    }

    /// Check a construct body with OMP depth increased by one.
    fn check_omp_body(&mut self, b: &Block) {
        self.omp_depth += 1;
        self.check_block(b);
        self.omp_depth -= 1;
    }

    fn check_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Let { name, ty, init } => {
                let init_ty = self.check_expr(init);
                let final_ty = match ty {
                    Some(annot) => {
                        if *annot == Type::Void {
                            self.diags.error(
                                "bad-type",
                                "variables cannot have type void",
                                name.span,
                            );
                        } else if init_ty != Type::Void && init_ty != *annot {
                            self.diags.error(
                                "type-mismatch",
                                format!(
                                    "`{}` declared as {annot} but initialized with {init_ty}",
                                    name.name
                                ),
                                init.span,
                            );
                        }
                        *annot
                    }
                    None => {
                        if init_ty == Type::Void {
                            self.diags.error(
                                "type-mismatch",
                                format!(
                                    "cannot infer a type for `{}` from a void expression",
                                    name.name
                                ),
                                init.span,
                            );
                            Type::Int
                        } else {
                            init_ty
                        }
                    }
                };
                self.declare(name, final_ty);
            }
            StmtKind::Assign { target, value } => {
                let value_ty = self.check_expr(value);
                match target {
                    LValue::Var(id) => match self.lookup(&id.name) {
                        Some(t) => {
                            if value_ty != Type::Void && value_ty != t {
                                self.diags.error(
                                    "type-mismatch",
                                    format!(
                                        "cannot assign {value_ty} to `{}` of type {t}",
                                        id.name
                                    ),
                                    value.span,
                                );
                            }
                        }
                        None => self.undeclared(id),
                    },
                    LValue::Index(id, idx) => {
                        let idx_ty = self.check_expr(idx);
                        if idx_ty != Type::Int {
                            self.diags.error(
                                "type-mismatch",
                                format!("array index must be int, found {idx_ty}"),
                                idx.span,
                            );
                        }
                        match self.lookup(&id.name) {
                            Some(t) if t.is_array() => {
                                let elem = t.elem().expect("array type has elem");
                                if value_ty != elem {
                                    self.diags.error(
                                        "type-mismatch",
                                        format!(
                                            "cannot store {value_ty} into `{}` of type {t}",
                                            id.name
                                        ),
                                        value.span,
                                    );
                                }
                            }
                            Some(t) => self.diags.error(
                                "type-mismatch",
                                format!("`{}` of type {t} cannot be indexed", id.name),
                                id.span,
                            ),
                            None => self.undeclared(id),
                        }
                    }
                }
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expect_ty(cond, Type::Bool, "if condition");
                self.check_block(then_blk);
                if let Some(e) = else_blk {
                    self.check_block(e);
                }
            }
            StmtKind::While { cond, body } => {
                self.expect_ty(cond, Type::Bool, "while condition");
                self.loops.push(LoopCtx {
                    kind: LoopKind::Sequential,
                    omp_depth: self.omp_depth,
                });
                self.check_block(body);
                self.loops.pop();
            }
            StmtKind::For { var, lo, hi, body } => {
                self.expect_ty(lo, Type::Int, "for lower bound");
                self.expect_ty(hi, Type::Int, "for upper bound");
                self.loops.push(LoopCtx {
                    kind: LoopKind::Sequential,
                    omp_depth: self.omp_depth,
                });
                self.scopes.push(HashMap::new());
                self.declare(var, Type::Int);
                for st in &body.stmts {
                    self.check_stmt(st);
                }
                self.scopes.pop();
                self.loops.pop();
            }
            StmtKind::Return(value) => {
                if self.omp_depth > 0 {
                    self.diags.error(
                        "return-in-omp",
                        format!(
                            "`return` inside a parallel construct is not allowed in \
                             `{}` (the model requires perfectly nested regions)",
                            self.fn_name
                        ),
                        s.span,
                    );
                }
                match (value, self.ret_ty) {
                    (None, Type::Void) => {}
                    (None, t) => self.diags.error(
                        "type-mismatch",
                        format!("function returns {t} but `return;` has no value"),
                        s.span,
                    ),
                    (Some(v), t) => {
                        let vt = self.check_expr(v);
                        if t == Type::Void {
                            self.diags.error(
                                "type-mismatch",
                                "void function cannot return a value",
                                v.span,
                            );
                        } else if vt != t {
                            self.diags.error(
                                "type-mismatch",
                                format!("function returns {t} but value has type {vt}"),
                                v.span,
                            );
                        }
                    }
                }
            }
            StmtKind::Break => match self.loops.last() {
                None => self
                    .diags
                    .error("break-outside-loop", "`break` outside of a loop", s.span),
                Some(l) if l.kind == LoopKind::Workshare => self.diags.error(
                    "break-in-pfor",
                    "`break` cannot leave a worksharing `pfor` loop",
                    s.span,
                ),
                Some(l) if l.omp_depth != self.omp_depth => self.diags.error(
                    "break-across-omp",
                    "`break` would leave an enclosing parallel construct",
                    s.span,
                ),
                Some(_) => {}
            },
            StmtKind::Continue => match self.loops.last() {
                None => self.diags.error(
                    "continue-outside-loop",
                    "`continue` outside of a loop",
                    s.span,
                ),
                Some(l) if l.kind != LoopKind::Workshare && l.omp_depth != self.omp_depth => {
                    self.diags.error(
                        "continue-across-omp",
                        "`continue` would leave an enclosing parallel construct",
                        s.span,
                    )
                }
                Some(_) => {}
            },
            StmtKind::Expr(e) => {
                self.check_expr(e);
            }
            StmtKind::Print(args) => {
                for a in args {
                    let t = self.check_expr(a);
                    if t == Type::Void {
                        self.diags
                            .error("type-mismatch", "cannot print a void value", a.span);
                    }
                }
            }
            StmtKind::Barrier => {
                // Illegal inside the worksharing/single-threaded constructs.
                // We track which construct we are under via the loop stack
                // for pfor and via `forbidden_barrier_depth`.
                if self.barrier_forbidden {
                    self.diags.error(
                        "barrier-bad-nesting",
                        "`barrier` may not be nested inside single, master, critical, \
                         pfor or sections",
                        s.span,
                    );
                }
            }
            StmtKind::Omp(omp) => self.check_omp(omp, s.span),
        }
    }

    fn check_omp(&mut self, omp: &OmpStmt, span: Span) {
        // OpenMP closely-nested-region rule: worksharing constructs,
        // `single` and `master` may not be closely nested inside
        // worksharing, `single`, `master` or `critical` regions (an
        // intervening `parallel` resets the restriction). Without this
        // the fork/join region structure — and hence the parallelism
        // word — would be ill-defined.
        if self.barrier_forbidden
            && !matches!(omp, OmpStmt::Parallel { .. } | OmpStmt::Critical { .. })
        {
            self.diags.error(
                "closely-nested",
                format!(
                    "`{}` may not be closely nested inside a single, master, critical, \
                     pfor or sections region",
                    omp.construct_name()
                ),
                span,
            );
        }
        match omp {
            OmpStmt::Parallel { num_threads, body } => {
                if let Some(e) = num_threads {
                    self.expect_ty(e, Type::Int, "num_threads clause");
                }
                // A new parallel region resets the barrier restriction:
                // a barrier directly inside the nested region is legal.
                let saved = self.barrier_forbidden;
                self.barrier_forbidden = false;
                self.check_omp_body(body);
                self.barrier_forbidden = saved;
            }
            OmpStmt::Single { body, .. } | OmpStmt::Master { body } => {
                let saved = self.barrier_forbidden;
                self.barrier_forbidden = true;
                self.check_omp_body(body);
                self.barrier_forbidden = saved;
            }
            OmpStmt::Critical { body } => {
                let saved = self.barrier_forbidden;
                self.barrier_forbidden = true;
                self.check_omp_body(body);
                self.barrier_forbidden = saved;
            }
            OmpStmt::PFor {
                var, lo, hi, body, ..
            } => {
                self.expect_ty(lo, Type::Int, "pfor lower bound");
                self.expect_ty(hi, Type::Int, "pfor upper bound");
                let saved = self.barrier_forbidden;
                self.barrier_forbidden = true;
                self.loops.push(LoopCtx {
                    kind: LoopKind::Workshare,
                    omp_depth: self.omp_depth + 1,
                });
                self.omp_depth += 1;
                self.scopes.push(HashMap::new());
                self.declare(var, Type::Int);
                for st in &body.stmts {
                    self.check_stmt(st);
                }
                self.scopes.pop();
                self.omp_depth -= 1;
                self.loops.pop();
                self.barrier_forbidden = saved;
            }
            OmpStmt::Sections { sections, .. } => {
                let saved = self.barrier_forbidden;
                self.barrier_forbidden = true;
                for sec in sections {
                    self.check_omp_body(sec);
                }
                self.barrier_forbidden = saved;
            }
        }
    }

    fn undeclared(&mut self, id: &Ident) {
        self.diags.error(
            "undeclared-variable",
            format!("use of undeclared variable `{}`", id.name),
            id.span,
        );
    }

    fn expect_ty(&mut self, e: &Expr, want: Type, what: &str) {
        let got = self.check_expr(e);
        if got != want {
            self.diags.error(
                "type-mismatch",
                format!("{what} must be {want}, found {got}"),
                e.span,
            );
        }
    }

    fn check_expr(&mut self, e: &Expr) -> Type {
        match &e.kind {
            ExprKind::Int(_) => Type::Int,
            ExprKind::Float(_) => Type::Float,
            ExprKind::Bool(_) => Type::Bool,
            ExprKind::Var(id) => match self.lookup(&id.name) {
                Some(t) => t,
                None => {
                    self.undeclared(id);
                    Type::Int
                }
            },
            ExprKind::Index(id, idx) => {
                self.expect_ty(idx, Type::Int, "array index");
                match self.lookup(&id.name) {
                    Some(t) if t.is_array() => t.elem().expect("array elem"),
                    Some(t) => {
                        self.diags.error(
                            "type-mismatch",
                            format!("`{}` of type {t} cannot be indexed", id.name),
                            id.span,
                        );
                        Type::Int
                    }
                    None => {
                        self.undeclared(id);
                        Type::Int
                    }
                }
            }
            ExprKind::Unary(op, inner) => {
                let t = self.check_expr(inner);
                match op {
                    UnOp::Neg => {
                        if !t.is_numeric() {
                            self.diags.error(
                                "type-mismatch",
                                format!("cannot negate {t}"),
                                inner.span,
                            );
                            Type::Int
                        } else {
                            t
                        }
                    }
                    UnOp::Not => {
                        if t != Type::Bool {
                            self.diags.error(
                                "type-mismatch",
                                format!("`!` requires bool, found {t}"),
                                inner.span,
                            );
                        }
                        Type::Bool
                    }
                }
            }
            ExprKind::Binary(op, l, r) => {
                let lt = self.check_expr(l);
                let rt = self.check_expr(r);
                if op.is_arith() {
                    if lt != rt || !lt.is_numeric() {
                        self.diags.error(
                            "type-mismatch",
                            format!(
                                "`{}` requires matching numeric operands, found {lt} and {rt}",
                                op.symbol()
                            ),
                            e.span,
                        );
                        return Type::Int;
                    }
                    lt
                } else if op.is_cmp() {
                    if lt != rt {
                        self.diags.error(
                            "type-mismatch",
                            format!(
                                "`{}` requires matching operands, found {lt} and {rt}",
                                op.symbol()
                            ),
                            e.span,
                        );
                    } else if lt.is_array()
                        || lt == Type::Void
                        || lt == Type::Comm
                        || lt == Type::Request
                    {
                        self.diags.error(
                            "type-mismatch",
                            format!("`{}` cannot compare {lt} values", op.symbol()),
                            e.span,
                        );
                    } else if matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
                        && lt == Type::Bool
                    {
                        self.diags.error(
                            "type-mismatch",
                            format!("`{}` cannot order bool values", op.symbol()),
                            e.span,
                        );
                    }
                    Type::Bool
                } else {
                    // logic
                    if lt != Type::Bool || rt != Type::Bool {
                        self.diags.error(
                            "type-mismatch",
                            format!(
                                "`{}` requires bool operands, found {lt} and {rt}",
                                op.symbol()
                            ),
                            e.span,
                        );
                    }
                    Type::Bool
                }
            }
            ExprKind::Call(name, args) => {
                let arg_tys: Vec<Type> = args.iter().map(|a| self.check_expr(a)).collect();
                match self.signatures.get(&name.name) {
                    None => {
                        self.diags.error(
                            "unknown-function",
                            format!("call to undefined function `{}`", name.name),
                            name.span,
                        );
                        Type::Int
                    }
                    Some(sig) => {
                        if sig.params.len() != arg_tys.len() {
                            self.diags.error(
                                "arity-mismatch",
                                format!(
                                    "`{}` expects {} argument(s), {} given",
                                    name.name,
                                    sig.params.len(),
                                    arg_tys.len()
                                ),
                                name.span,
                            );
                        } else {
                            for (i, (want, got)) in
                                sig.params.iter().zip(arg_tys.iter()).enumerate()
                            {
                                if want != got {
                                    self.diags.error(
                                        "type-mismatch",
                                        format!(
                                            "argument {} of `{}` expects {want}, found {got}",
                                            i + 1,
                                            name.name
                                        ),
                                        args[i].span,
                                    );
                                }
                            }
                        }
                        sig.ret
                    }
                }
            }
            ExprKind::Intrinsic(intr, args) => self.check_intrinsic(*intr, args, e.span),
            ExprKind::Mpi(op) => self.check_mpi(op, e.span),
        }
    }

    fn check_intrinsic(&mut self, intr: Intrinsic, args: &[Expr], span: Span) -> Type {
        let arg_tys: Vec<Type> = args.iter().map(|a| self.check_expr(a)).collect();
        let arity_err = |ck: &mut Self, want: usize| {
            ck.diags.error(
                "arity-mismatch",
                format!(
                    "`{}` expects {want} argument(s), {} given",
                    intr.name(),
                    args.len()
                ),
                span,
            );
        };
        match intr {
            Intrinsic::Rank | Intrinsic::Size | Intrinsic::ThreadNum | Intrinsic::NumThreads => {
                if !args.is_empty() {
                    arity_err(self, 0);
                }
                Type::Int
            }
            Intrinsic::InParallel => {
                if !args.is_empty() {
                    arity_err(self, 0);
                }
                Type::Bool
            }
            Intrinsic::Sqrt => {
                if arg_tys.len() != 1 {
                    arity_err(self, 1);
                } else if arg_tys[0] != Type::Float {
                    self.diags.error(
                        "type-mismatch",
                        format!("`sqrt` requires float, found {}", arg_tys[0]),
                        args[0].span,
                    );
                }
                Type::Float
            }
            Intrinsic::Abs => {
                if arg_tys.len() != 1 {
                    arity_err(self, 1);
                    return Type::Int;
                }
                if !arg_tys[0].is_numeric() {
                    self.diags.error(
                        "type-mismatch",
                        format!("`abs` requires a numeric argument, found {}", arg_tys[0]),
                        args[0].span,
                    );
                    return Type::Int;
                }
                arg_tys[0]
            }
            Intrinsic::MinOf | Intrinsic::MaxOf => {
                if arg_tys.len() != 2 {
                    arity_err(self, 2);
                    return Type::Int;
                }
                if arg_tys[0] != arg_tys[1] || !arg_tys[0].is_numeric() {
                    self.diags.error(
                        "type-mismatch",
                        format!(
                            "`{}` requires two matching numeric arguments, found {} and {}",
                            intr.name(),
                            arg_tys[0],
                            arg_tys[1]
                        ),
                        span,
                    );
                    return Type::Int;
                }
                arg_tys[0]
            }
            Intrinsic::IntOf => {
                if arg_tys.len() != 1 {
                    arity_err(self, 1);
                } else if arg_tys[0] != Type::Float {
                    self.diags.error(
                        "type-mismatch",
                        format!("`int_of` requires float, found {}", arg_tys[0]),
                        args[0].span,
                    );
                }
                Type::Int
            }
            Intrinsic::FloatOf => {
                if arg_tys.len() != 1 {
                    arity_err(self, 1);
                } else if arg_tys[0] != Type::Int {
                    self.diags.error(
                        "type-mismatch",
                        format!("`float_of` requires int, found {}", arg_tys[0]),
                        args[0].span,
                    );
                }
                Type::Float
            }
            Intrinsic::ArrayNew => {
                if arg_tys.len() != 2 {
                    arity_err(self, 2);
                    return Type::ArrayInt;
                }
                if arg_tys[0] != Type::Int {
                    self.diags.error(
                        "type-mismatch",
                        format!("array length must be int, found {}", arg_tys[0]),
                        args[0].span,
                    );
                }
                match Type::array_of(arg_tys[1]) {
                    Some(t) => t,
                    None => {
                        self.diags.error(
                            "type-mismatch",
                            format!("array elements must be int or float, found {}", arg_tys[1]),
                            args[1].span,
                        );
                        Type::ArrayInt
                    }
                }
            }
            Intrinsic::Len => {
                if arg_tys.len() != 1 {
                    arity_err(self, 1);
                } else if !arg_tys[0].is_array() {
                    self.diags.error(
                        "type-mismatch",
                        format!("`len` requires an array, found {}", arg_tys[0]),
                        args[0].span,
                    );
                }
                Type::Int
            }
        }
    }

    fn check_mpi(&mut self, op: &MpiOp, span: Span) -> Type {
        match op {
            MpiOp::Init | MpiOp::InitThread { .. } | MpiOp::Finalize => Type::Void,
            MpiOp::Send {
                value,
                dest,
                tag,
                comm,
            } => {
                let vt = self.check_expr(value);
                if !vt.is_numeric() {
                    self.diags.error(
                        "type-mismatch",
                        format!("MPI_Send value must be numeric, found {vt}"),
                        value.span,
                    );
                }
                self.expect_ty(dest, Type::Int, "MPI_Send destination");
                self.expect_ty(tag, Type::Int, "MPI_Send tag");
                if let Some(cm) = comm {
                    self.expect_ty(cm, Type::Comm, "MPI_Send communicator");
                }
                Type::Void
            }
            MpiOp::Recv { src, tag, comm } => {
                self.expect_ty(src, Type::Int, "MPI_Recv source");
                self.expect_ty(tag, Type::Int, "MPI_Recv tag");
                if let Some(cm) = comm {
                    self.expect_ty(cm, Type::Comm, "MPI_Recv communicator");
                }
                // Halo exchanges carry field values: Recv yields float
                // (integer payloads are coerced at run time).
                Type::Float
            }
            MpiOp::CommWorld => Type::Comm,
            MpiOp::CommSplit { parent, color, key } => {
                self.expect_ty(parent, Type::Comm, "MPI_Comm_split parent");
                self.expect_ty(color, Type::Int, "MPI_Comm_split color");
                self.expect_ty(key, Type::Int, "MPI_Comm_split key");
                Type::Comm
            }
            MpiOp::CommDup { comm } => {
                self.expect_ty(comm, Type::Comm, "MPI_Comm_dup communicator");
                Type::Comm
            }
            MpiOp::Isend {
                value,
                dest,
                tag,
                comm,
            } => {
                let vt = self.check_expr(value);
                if !vt.is_numeric() {
                    self.diags.error(
                        "type-mismatch",
                        format!("MPI_Isend value must be numeric, found {vt}"),
                        value.span,
                    );
                }
                self.expect_ty(dest, Type::Int, "MPI_Isend destination");
                self.expect_ty(tag, Type::Int, "MPI_Isend tag");
                if let Some(cm) = comm {
                    self.expect_ty(cm, Type::Comm, "MPI_Isend communicator");
                }
                Type::Request
            }
            MpiOp::Irecv { src, tag, comm } => {
                self.expect_ty(src, Type::Int, "MPI_Irecv source");
                self.expect_ty(tag, Type::Int, "MPI_Irecv tag");
                if let Some(cm) = comm {
                    self.expect_ty(cm, Type::Comm, "MPI_Irecv communicator");
                }
                Type::Request
            }
            MpiOp::Wait { request } => {
                self.expect_ty(request, Type::Request, "MPI_Wait request");
                // Like MPI_Recv: receive completions carry field values
                // (float); send completions yield 0.0.
                Type::Float
            }
            MpiOp::Waitall { requests } => {
                for r in requests {
                    self.expect_ty(r, Type::Request, "MPI_Waitall request");
                }
                Type::Void
            }
            MpiOp::AnySource | MpiOp::AnyTag => Type::Int,
            MpiOp::Collective(c) => self.check_collective(c, span),
        }
    }

    fn check_collective(&mut self, c: &CollectiveCall, span: Span) -> Type {
        if let Some(root) = &c.root {
            self.expect_ty(root, Type::Int, "collective root");
        }
        if c.kind.has_reduce_op() && c.reduce_op.is_none() {
            self.diags.error(
                "mpi-args",
                format!("{} requires a reduction operator", c.kind),
                span,
            );
        }
        if let Some(cm) = &c.comm {
            self.expect_ty(cm, Type::Comm, "collective communicator");
        }
        let vt = c.value.as_ref().map(|v| self.check_expr(v));
        match c.kind {
            CollectiveKind::Barrier => Type::Void,
            CollectiveKind::Bcast => match vt {
                Some(t) if t.is_numeric() => t,
                Some(t) => {
                    self.diags.error(
                        "type-mismatch",
                        format!("MPI_Bcast value must be numeric, found {t}"),
                        span,
                    );
                    Type::Int
                }
                None => {
                    self.diags
                        .error("mpi-args", "MPI_Bcast requires a value", span);
                    Type::Int
                }
            },
            CollectiveKind::Reduce | CollectiveKind::Allreduce | CollectiveKind::Scan => match vt {
                Some(t) if t.is_numeric() => t,
                Some(t) => {
                    self.diags.error(
                        "type-mismatch",
                        format!("{} value must be numeric, found {t}", c.kind),
                        span,
                    );
                    Type::Int
                }
                None => {
                    self.diags
                        .error("mpi-args", format!("{} requires a value", c.kind), span);
                    Type::Int
                }
            },
            CollectiveKind::Gather | CollectiveKind::Allgather => match vt {
                Some(t) if t.is_numeric() => Type::array_of(t).expect("numeric elem"),
                Some(t) => {
                    self.diags.error(
                        "type-mismatch",
                        format!("{} value must be numeric, found {t}", c.kind),
                        span,
                    );
                    Type::ArrayInt
                }
                None => {
                    self.diags
                        .error("mpi-args", format!("{} requires a value", c.kind), span);
                    Type::ArrayInt
                }
            },
            CollectiveKind::Scatter | CollectiveKind::ReduceScatter => match vt {
                Some(t) if t.is_array() => t.elem().expect("array elem"),
                Some(t) => {
                    self.diags.error(
                        "type-mismatch",
                        format!("{} requires an array argument, found {t}", c.kind),
                        span,
                    );
                    Type::Int
                }
                None => {
                    self.diags.error(
                        "mpi-args",
                        format!("{} requires an array argument", c.kind),
                        span,
                    );
                    Type::Int
                }
            },
            CollectiveKind::Alltoall => match vt {
                Some(t) if t.is_array() => t,
                Some(t) => {
                    self.diags.error(
                        "type-mismatch",
                        format!("MPI_Alltoall requires an array argument, found {t}"),
                        span,
                    );
                    Type::ArrayInt
                }
                None => {
                    self.diags
                        .error("mpi-args", "MPI_Alltoall requires an array argument", span);
                    Type::ArrayInt
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn sema_ok(src: &str) {
        let (prog, mut diags) = parse_program(src);
        assert!(!diags.has_errors(), "parse failed: {diags:?}");
        check_program(&prog, &mut diags);
        assert!(
            !diags.has_errors(),
            "unexpected sema errors:\n{:#?}",
            diags.into_vec()
        );
    }

    fn sema_err(src: &str, code: &str) {
        let (prog, mut diags) = parse_program(src);
        assert!(!diags.has_errors(), "parse failed: {diags:?}");
        check_program(&prog, &mut diags);
        assert!(
            diags.iter().any(|d| d.code == code),
            "expected error code `{code}`, got {:#?}",
            diags.into_vec()
        );
    }

    #[test]
    fn minimal_ok() {
        sema_ok("fn main() { let x = 1; x = x + 1; }");
    }

    #[test]
    fn communicators_type_check() {
        sema_ok(
            "fn main() {
                let c = MPI_Comm_split(MPI_COMM_WORLD, rank() % 2, rank());
                let d = MPI_Comm_dup(c);
                MPI_Barrier(d);
                let x = MPI_Allreduce(1, SUM, c);
                MPI_Send(1.5, 0, 3, c);
                let v = MPI_Recv(0, 3, c);
            }",
        );
    }

    #[test]
    fn comm_argument_must_be_comm_typed() {
        sema_err("fn main() { MPI_Barrier(3); }", "type-mismatch");
        sema_err(
            "fn main() { let c = MPI_Comm_split(1, 0, 0); }",
            "type-mismatch",
        );
        sema_err("fn main() { MPI_Send(1, 0, 3, 7); }", "type-mismatch");
    }

    #[test]
    fn comm_values_are_opaque() {
        sema_err(
            "fn main() { let c = MPI_COMM_WORLD; let x = c + 1; }",
            "type-mismatch",
        );
        sema_err(
            "fn main() {
                let a = MPI_COMM_WORLD;
                let b = MPI_COMM_WORLD;
                if (a == b) { }
            }",
            "type-mismatch",
        );
    }

    #[test]
    fn nonblocking_type_checks() {
        sema_ok(
            "fn main() {
                let peer = size() - 1 - rank();
                let r = MPI_Irecv(MPI_ANY_SOURCE, MPI_ANY_TAG);
                let s = MPI_Isend(1.5, peer, 4);
                let v = MPI_Wait(r);
                MPI_Waitall(s);
            }",
        );
        // Wildcards are plain ints and type-check anywhere an int does.
        sema_ok("fn main() { let x = MPI_ANY_SOURCE + MPI_ANY_TAG; }");
    }

    #[test]
    fn request_arguments_must_be_requests() {
        sema_err("fn main() { let v = MPI_Wait(3); }", "type-mismatch");
        sema_err("fn main() { MPI_Waitall(1, 2); }", "type-mismatch");
        sema_err(
            "fn main() { let r = MPI_Isend(true, 0, 1); }",
            "type-mismatch",
        );
        sema_err("fn main() { let r = MPI_Irecv(0.5, 1); }", "type-mismatch");
    }

    #[test]
    fn request_values_are_opaque() {
        sema_err(
            "fn main() {
                let a = MPI_Irecv(0, 1);
                let b = MPI_Irecv(0, 1);
                if (a == b) { }
            }",
            "type-mismatch",
        );
        sema_err(
            "fn main() { let a = MPI_Irecv(0, 1); let x = a + 1; }",
            "type-mismatch",
        );
    }

    #[test]
    fn missing_main() {
        sema_err("fn not_main() { }", "missing-main");
    }

    #[test]
    fn main_with_params_rejected() {
        sema_err("fn main(x: int) { }", "bad-main");
    }

    #[test]
    fn duplicate_function() {
        sema_err("fn main() { } fn f() { } fn f() { }", "duplicate-function");
    }

    #[test]
    fn undeclared_variable() {
        sema_err("fn main() { x = 1; }", "undeclared-variable");
        sema_err("fn main() { let y = x + 1; }", "undeclared-variable");
    }

    #[test]
    fn block_scoping() {
        sema_err(
            "fn main() { if (true) { let x = 1; } x = 2; }",
            "undeclared-variable",
        );
        sema_ok("fn main() { let x = 1; if (true) { let x = 2.0; x = 3.0; } x = 4; }");
    }

    #[test]
    fn type_mismatches() {
        sema_err("fn main() { let x: int = 1.5; }", "type-mismatch");
        sema_err("fn main() { let x = 1 + 2.0; }", "type-mismatch");
        sema_err("fn main() { if (1) { } }", "type-mismatch");
        sema_err("fn main() { let b = true < false; }", "type-mismatch");
        sema_ok("fn main() { let x = 1.0 + float_of(2); let b = 1 < 2; }");
    }

    #[test]
    fn function_calls() {
        sema_ok("fn f(a: int) -> int { return a * 2; } fn main() { let x = f(21); }");
        sema_err("fn main() { let x = g(); }", "unknown-function");
        sema_err(
            "fn f(a: int) -> int { return a; } fn main() { let x = f(); }",
            "arity-mismatch",
        );
        sema_err(
            "fn f(a: int) -> int { return a; } fn main() { let x = f(1.0); }",
            "type-mismatch",
        );
    }

    #[test]
    fn return_type_checks() {
        sema_err(
            "fn f() -> int { return; } fn main() { f(); }",
            "type-mismatch",
        );
        sema_err("fn f() { return 1; } fn main() { f(); }", "type-mismatch");
        sema_ok("fn f() -> float { return 1.5; } fn main() { let x = f(); }");
    }

    #[test]
    fn return_inside_omp_rejected() {
        sema_err("fn main() { parallel { return; } }", "return-in-omp");
        sema_err(
            "fn main() { parallel { single { if (true) { return; } } } }",
            "return-in-omp",
        );
    }

    #[test]
    fn break_rules() {
        sema_err("fn main() { break; }", "break-outside-loop");
        sema_err(
            "fn main() { while (true) { parallel { break; } } }",
            "break-across-omp",
        );
        sema_err(
            "fn main() { parallel { pfor (i in 0..4) { break; } } }",
            "break-in-pfor",
        );
        sema_ok("fn main() { while (true) { break; } }");
        sema_ok("fn main() { parallel { single { while (true) { break; } } } }");
    }

    #[test]
    fn continue_rules() {
        sema_err("fn main() { continue; }", "continue-outside-loop");
        sema_ok("fn main() { parallel { pfor (i in 0..4) { continue; } } }");
        sema_err(
            "fn main() { for (i in 0..4) { parallel { continue; } } }",
            "continue-across-omp",
        );
    }

    #[test]
    fn barrier_nesting_rules() {
        sema_ok("fn main() { parallel { barrier; } }");
        sema_ok("fn main() { barrier; }");
        sema_err(
            "fn main() { parallel { single { barrier; } } }",
            "barrier-bad-nesting",
        );
        sema_err(
            "fn main() { parallel { master { barrier; } } }",
            "barrier-bad-nesting",
        );
        sema_err(
            "fn main() { parallel { pfor (i in 0..4) { barrier; } } }",
            "barrier-bad-nesting",
        );
        // Nested parallel region re-allows barriers.
        sema_ok("fn main() { parallel { single { parallel { barrier; } } } }");
    }

    #[test]
    fn closely_nested_rules() {
        sema_err(
            "fn main() { parallel { single { single { } } } }",
            "closely-nested",
        );
        sema_err(
            "fn main() { parallel { pfor (i in 0..4) { master { } } } }",
            "closely-nested",
        );
        sema_err(
            "fn main() { parallel { critical { single { } } } }",
            "closely-nested",
        );
        sema_err(
            "fn main() { parallel { sections { section { pfor (i in 0..2) { } } } } }",
            "closely-nested",
        );
        // An intervening parallel region resets the restriction.
        sema_ok("fn main() { parallel { single { parallel { single { } } } } }");
        // critical inside worksharing is allowed.
        sema_ok("fn main() { parallel { pfor (i in 0..4) { critical { } } } }");
    }

    #[test]
    fn mpi_typing() {
        sema_ok(
            "fn main() {
                MPI_Init();
                let s = MPI_Allreduce(rank(), SUM);
                let g = MPI_Gather(s, 0);
                let n = len(g);
                let e = MPI_Scatter(g, 0);
                let f = MPI_Allreduce(1.5, MAX);
                MPI_Finalize();
            }",
        );
        sema_err("fn main() { let x = MPI_Scatter(1, 0); }", "type-mismatch");
        sema_err(
            "fn main() { let x: float = MPI_Allreduce(1, SUM); }",
            "type-mismatch",
        );
    }

    #[test]
    fn collective_in_context_ok_structures() {
        sema_ok(
            "fn main() {
                parallel num_threads(4) {
                    single {
                        MPI_Barrier();
                    }
                    pfor (i in 0..16) { let y = i * 2; }
                }
            }",
        );
    }

    #[test]
    fn intrinsic_typing() {
        sema_ok("fn main() { let a = array(8, 1.5); a[0] = sqrt(2.0); let n = len(a); }");
        sema_err("fn main() { let a = array(8, true); }", "type-mismatch");
        sema_err("fn main() { let x = sqrt(2); }", "type-mismatch");
        sema_err("fn main() { let x = min(1, 2.0); }", "type-mismatch");
        sema_err("fn main() { let x = rank(1); }", "arity-mismatch");
    }

    #[test]
    fn void_cannot_be_stored() {
        sema_err("fn main() { let x = MPI_Init(); }", "type-mismatch");
    }

    #[test]
    fn signatures_exposed() {
        let (prog, mut diags) =
            parse_program("fn f(a: int) -> float { return 1.0; } fn main() { }");
        let res = check_program(&prog, &mut diags);
        assert_eq!(
            res.signatures.get("f"),
            Some(&Signature {
                params: vec![Type::Int],
                ret: Type::Float
            })
        );
    }
}
