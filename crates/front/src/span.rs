//! Source locations.
//!
//! Every token, AST node and (after lowering) IR instruction carries a
//! [`Span`] — a half-open byte range into the original source text. The
//! [`SourceMap`] converts byte offsets back into 1-based line/column pairs
//! for diagnostics, mirroring how the original PARCOACH GCC plugin reports
//! "names and lines in the source code of MPI collective calls involved".

use std::fmt;

/// A half-open byte range `[lo, hi)` into a single source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
}

impl Span {
    /// A span covering nothing, used for synthesized nodes (e.g. implicit
    /// barriers inserted during lowering).
    pub const DUMMY: Span = Span { lo: 0, hi: 0 };

    /// Create a new span. `lo <= hi` is expected but not enforced.
    pub fn new(lo: u32, hi: u32) -> Self {
        Span { lo, hi }
    }

    /// Smallest span covering both `self` and `other`.
    ///
    /// Dummy spans are treated as identities so that synthesized nodes do
    /// not drag real spans to offset 0.
    pub fn to(self, other: Span) -> Span {
        if self == Span::DUMMY {
            return other;
        }
        if other == Span::DUMMY {
            return self;
        }
        Span::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Length in bytes.
    pub fn len(self) -> u32 {
        self.hi.saturating_sub(self.lo)
    }

    /// True for zero-length spans.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// True if this is the reserved dummy span.
    pub fn is_dummy(self) -> bool {
        self == Span::DUMMY
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// A resolved 1-based line/column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes, which equals characters for the
    /// ASCII sources MiniHPC programs are written in).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets of one source file back to line/column positions.
#[derive(Debug, Clone)]
pub struct SourceMap {
    /// Logical name of the file (for diagnostics only).
    name: String,
    /// Full source text.
    src: String,
    /// Byte offset of the start of every line, in ascending order.
    /// `line_starts[0] == 0` always.
    line_starts: Vec<u32>,
}

impl SourceMap {
    /// Build a map for `src`. `name` is used when formatting locations.
    pub fn new(name: impl Into<String>, src: impl Into<String>) -> Self {
        let src = src.into();
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            name: name.into(),
            src,
            line_starts,
        }
    }

    /// Logical file name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full source text.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// Resolve a byte offset into a 1-based line/column pair.
    ///
    /// Offsets past the end of the file resolve to the end of the last
    /// line rather than panicking, since spans of synthesized nodes may be
    /// clamped.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let offset = offset.min(self.src.len() as u32);
        // Index of the last line start <= offset.
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// Resolve the start of a span.
    pub fn span_start(&self, span: Span) -> LineCol {
        self.line_col(span.lo)
    }

    /// The 1-based line number a span starts on — the unit PARCOACH
    /// reports ("line in the source code of the MPI collective call").
    pub fn line_of(&self, span: Span) -> u32 {
        self.span_start(span).line
    }

    /// The text a span covers, if in bounds.
    pub fn snippet(&self, span: Span) -> Option<&str> {
        self.src.get(span.lo as usize..span.hi as usize)
    }

    /// The complete text of the 1-based line `line`, without the trailing
    /// newline.
    pub fn line_text(&self, line: u32) -> Option<&str> {
        let idx = line.checked_sub(1)? as usize;
        let start = *self.line_starts.get(idx)? as usize;
        let end = self
            .line_starts
            .get(idx + 1)
            .map(|&e| e as usize)
            .unwrap_or(self.src.len());
        let text = self.src.get(start..end)?;
        Some(text.strip_suffix('\n').unwrap_or(text))
    }

    /// Number of lines in the file (a trailing newline does not open a new
    /// line).
    pub fn line_count(&self) -> u32 {
        let n = self.line_starts.len() as u32;
        if self.src.ends_with('\n') && self.src.len() > 1 {
            n - 1
        } else {
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge() {
        let a = Span::new(4, 10);
        let b = Span::new(8, 20);
        assert_eq!(a.to(b), Span::new(4, 20));
        assert_eq!(b.to(a), Span::new(4, 20));
    }

    #[test]
    fn span_merge_dummy_identity() {
        let a = Span::new(4, 10);
        assert_eq!(a.to(Span::DUMMY), a);
        assert_eq!(Span::DUMMY.to(a), a);
        assert_eq!(Span::DUMMY.to(Span::DUMMY), Span::DUMMY);
    }

    #[test]
    fn span_len_and_empty() {
        assert_eq!(Span::new(3, 8).len(), 5);
        assert!(Span::new(3, 3).is_empty());
        assert!(!Span::new(3, 4).is_empty());
    }

    #[test]
    fn line_col_basic() {
        let sm = SourceMap::new("t.mh", "ab\ncde\n\nf");
        assert_eq!(sm.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(sm.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(sm.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(sm.line_col(5), LineCol { line: 2, col: 3 });
        assert_eq!(sm.line_col(7), LineCol { line: 3, col: 1 });
        assert_eq!(sm.line_col(8), LineCol { line: 4, col: 1 });
    }

    #[test]
    fn line_col_past_end_clamps() {
        let sm = SourceMap::new("t.mh", "ab");
        assert_eq!(sm.line_col(100), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn line_text() {
        let sm = SourceMap::new("t.mh", "first\nsecond\nthird");
        assert_eq!(sm.line_text(1), Some("first"));
        assert_eq!(sm.line_text(2), Some("second"));
        assert_eq!(sm.line_text(3), Some("third"));
        assert_eq!(sm.line_text(4), None);
        assert_eq!(sm.line_text(0), None);
    }

    #[test]
    fn snippet() {
        let sm = SourceMap::new("t.mh", "let x = 1;");
        assert_eq!(sm.snippet(Span::new(4, 5)), Some("x"));
        assert_eq!(sm.snippet(Span::new(4, 999)), None);
    }

    #[test]
    fn line_count() {
        assert_eq!(SourceMap::new("t", "a\nb\nc").line_count(), 3);
        assert_eq!(SourceMap::new("t", "a\nb\n").line_count(), 2);
        assert_eq!(SourceMap::new("t", "").line_count(), 1);
    }
}
