//! AST → source pretty-printer.
//!
//! Used by the workload generators (which build ASTs programmatically and
//! emit source for the compile-time benchmarks) and by round-trip tests:
//! `parse(pretty(ast))` must equal `ast` modulo spans.

use crate::ast::*;
use std::fmt::Write;

/// Render a whole program as MiniHPC source.
pub fn pretty_program(prog: &Program) -> String {
    let mut p = Printer::new();
    for (i, f) in prog.functions.iter().enumerate() {
        if i > 0 {
            p.out.push('\n');
        }
        p.function(f);
    }
    p.out
}

/// Render a single expression (diagnostics, tests).
pub fn pretty_expr(e: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(e);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn open(&mut self, header: &str) {
        self.line(&format!("{header} {{"));
        self.indent += 1;
    }

    fn close(&mut self) {
        self.indent -= 1;
        self.line("}");
    }

    fn function(&mut self, f: &Function) {
        let params = f
            .params
            .iter()
            .map(|p| format!("{}: {}", p.name, p.ty))
            .collect::<Vec<_>>()
            .join(", ");
        let ret = if f.ret == Type::Void {
            String::new()
        } else {
            format!(" -> {}", f.ret)
        };
        self.open(&format!("fn {}({params}){ret}", f.name));
        self.block_body(&f.body);
        self.close();
    }

    fn block_body(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn nested(&mut self, header: &str, b: &Block) {
        self.open(header);
        self.block_body(b);
        self.close();
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Let { name, ty, init } => {
                let ty = ty.map(|t| format!(": {t}")).unwrap_or_default();
                let init = self.expr_str(init);
                self.line(&format!("let {name}{ty} = {init};"));
            }
            StmtKind::Assign { target, value } => {
                let value = self.expr_str(value);
                match target {
                    LValue::Var(id) => self.line(&format!("{id} = {value};")),
                    LValue::Index(id, idx) => {
                        let idx = self.expr_str(idx);
                        self.line(&format!("{id}[{idx}] = {value};"));
                    }
                }
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let cond = self.expr_str(cond);
                self.open(&format!("if ({cond})"));
                self.block_body(then_blk);
                match else_blk {
                    None => self.close(),
                    Some(e) => {
                        self.indent -= 1;
                        self.line("} else {");
                        self.indent += 1;
                        self.block_body(e);
                        self.close();
                    }
                }
            }
            StmtKind::While { cond, body } => {
                let cond = self.expr_str(cond);
                self.nested(&format!("while ({cond})"), body);
            }
            StmtKind::For { var, lo, hi, body } => {
                let lo = self.expr_str(lo);
                let hi = self.expr_str(hi);
                self.nested(&format!("for ({var} in {lo}..{hi})"), body);
            }
            StmtKind::Return(None) => self.line("return;"),
            StmtKind::Return(Some(e)) => {
                let e = self.expr_str(e);
                self.line(&format!("return {e};"));
            }
            StmtKind::Break => self.line("break;"),
            StmtKind::Continue => self.line("continue;"),
            StmtKind::Expr(e) => {
                let e = self.expr_str(e);
                self.line(&format!("{e};"));
            }
            StmtKind::Print(args) => {
                let args = args
                    .iter()
                    .map(|a| self.expr_str(a))
                    .collect::<Vec<_>>()
                    .join(", ");
                self.line(&format!("print({args});"));
            }
            StmtKind::Barrier => self.line("barrier;"),
            StmtKind::Omp(omp) => self.omp(omp),
        }
    }

    fn omp(&mut self, omp: &OmpStmt) {
        match omp {
            OmpStmt::Parallel { num_threads, body } => {
                let clause = match num_threads {
                    Some(e) => format!(" num_threads({})", self.expr_str(e)),
                    None => String::new(),
                };
                self.nested(&format!("parallel{clause}"), body);
            }
            OmpStmt::Single { nowait, body } => {
                let clause = if *nowait { " nowait" } else { "" };
                self.nested(&format!("single{clause}"), body);
            }
            OmpStmt::Master { body } => self.nested("master", body),
            OmpStmt::Critical { body } => self.nested("critical", body),
            OmpStmt::PFor {
                nowait,
                var,
                lo,
                hi,
                body,
            } => {
                let clause = if *nowait { " nowait" } else { "" };
                let lo = self.expr_str(lo);
                let hi = self.expr_str(hi);
                self.nested(&format!("pfor{clause} ({var} in {lo}..{hi})"), body);
            }
            OmpStmt::Sections { nowait, sections } => {
                let clause = if *nowait { " nowait" } else { "" };
                self.open(&format!("sections{clause}"));
                for sec in sections {
                    self.nested("section", sec);
                }
                self.close();
            }
        }
    }

    fn expr_str(&mut self, e: &Expr) -> String {
        let mut tmp = Printer::new();
        tmp.expr(e);
        tmp.out
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Int(v) => {
                let _ = write!(self.out, "{v}");
            }
            ExprKind::Float(v) => {
                // Ensure the literal re-lexes as a float.
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    let _ = write!(self.out, "{v:.1}");
                } else {
                    let _ = write!(self.out, "{v}");
                }
            }
            ExprKind::Bool(v) => {
                let _ = write!(self.out, "{v}");
            }
            ExprKind::Var(id) => {
                let _ = write!(self.out, "{id}");
            }
            ExprKind::Index(id, idx) => {
                let _ = write!(self.out, "{id}[");
                self.expr(idx);
                self.out.push(']');
            }
            ExprKind::Unary(op, inner) => {
                self.out.push(match op {
                    UnOp::Neg => '-',
                    UnOp::Not => '!',
                });
                self.out.push('(');
                self.expr(inner);
                self.out.push(')');
            }
            ExprKind::Binary(op, l, r) => {
                self.out.push('(');
                self.expr(l);
                let _ = write!(self.out, " {} ", op.symbol());
                self.expr(r);
                self.out.push(')');
            }
            ExprKind::Call(name, args) => {
                let _ = write!(self.out, "{name}(");
                self.args(args);
                self.out.push(')');
            }
            ExprKind::Intrinsic(intr, args) => {
                let _ = write!(self.out, "{}(", intr.name());
                self.args(args);
                self.out.push(')');
            }
            ExprKind::Mpi(op) => self.mpi(op),
        }
    }

    fn args(&mut self, args: &[Expr]) {
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.expr(a);
        }
    }

    fn mpi(&mut self, op: &MpiOp) {
        match op {
            MpiOp::Init => self.out.push_str("MPI_Init()"),
            MpiOp::InitThread { required } => {
                let name = match required {
                    ThreadLevel::Single => "SINGLE",
                    ThreadLevel::Funneled => "FUNNELED",
                    ThreadLevel::Serialized => "SERIALIZED",
                    ThreadLevel::Multiple => "MULTIPLE",
                };
                let _ = write!(self.out, "MPI_Init_thread({name})");
            }
            MpiOp::Finalize => self.out.push_str("MPI_Finalize()"),
            MpiOp::Send {
                value,
                dest,
                tag,
                comm,
            } => {
                self.out.push_str("MPI_Send(");
                self.expr(value);
                self.out.push_str(", ");
                self.expr(dest);
                self.out.push_str(", ");
                self.expr(tag);
                if let Some(cm) = comm {
                    self.out.push_str(", ");
                    self.expr(cm);
                }
                self.out.push(')');
            }
            MpiOp::Recv { src, tag, comm } => {
                self.out.push_str("MPI_Recv(");
                self.expr(src);
                self.out.push_str(", ");
                self.expr(tag);
                if let Some(cm) = comm {
                    self.out.push_str(", ");
                    self.expr(cm);
                }
                self.out.push(')');
            }
            MpiOp::CommWorld => self.out.push_str("MPI_COMM_WORLD"),
            MpiOp::CommSplit { parent, color, key } => {
                self.out.push_str("MPI_Comm_split(");
                self.expr(parent);
                self.out.push_str(", ");
                self.expr(color);
                self.out.push_str(", ");
                self.expr(key);
                self.out.push(')');
            }
            MpiOp::CommDup { comm } => {
                self.out.push_str("MPI_Comm_dup(");
                self.expr(comm);
                self.out.push(')');
            }
            MpiOp::Isend {
                value,
                dest,
                tag,
                comm,
            } => {
                self.out.push_str("MPI_Isend(");
                self.expr(value);
                self.out.push_str(", ");
                self.expr(dest);
                self.out.push_str(", ");
                self.expr(tag);
                if let Some(cm) = comm {
                    self.out.push_str(", ");
                    self.expr(cm);
                }
                self.out.push(')');
            }
            MpiOp::Irecv { src, tag, comm } => {
                self.out.push_str("MPI_Irecv(");
                self.expr(src);
                self.out.push_str(", ");
                self.expr(tag);
                if let Some(cm) = comm {
                    self.out.push_str(", ");
                    self.expr(cm);
                }
                self.out.push(')');
            }
            MpiOp::Wait { request } => {
                self.out.push_str("MPI_Wait(");
                self.expr(request);
                self.out.push(')');
            }
            MpiOp::Waitall { requests } => {
                self.out.push_str("MPI_Waitall(");
                self.args(requests);
                self.out.push(')');
            }
            MpiOp::AnySource => self.out.push_str("MPI_ANY_SOURCE"),
            MpiOp::AnyTag => self.out.push_str("MPI_ANY_TAG"),
            MpiOp::Collective(c) => {
                let _ = write!(self.out, "{}(", c.kind.mpi_name());
                let mut first = true;
                if let Some(v) = &c.value {
                    self.expr(v);
                    first = false;
                }
                if let Some(op) = c.reduce_op {
                    if !first {
                        self.out.push_str(", ");
                    }
                    self.out.push_str(op.name());
                    first = false;
                }
                if let Some(root) = &c.root {
                    if !first {
                        self.out.push_str(", ");
                    }
                    self.expr(root);
                    first = false;
                }
                if let Some(cm) = &c.comm {
                    if !first {
                        self.out.push_str(", ");
                    }
                    self.expr(cm);
                }
                self.out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    /// Strip spans by comparing the *second* round trip: pretty(parse(x))
    /// is a fixpoint.
    fn roundtrip(src: &str) {
        let (p1, d1) = parse_program(src);
        assert!(!d1.has_errors(), "{d1:?}");
        let printed = pretty_program(&p1);
        let (p2, d2) = parse_program(&printed);
        assert!(!d2.has_errors(), "re-parse failed on:\n{printed}\n{d2:?}");
        let printed2 = pretty_program(&p2);
        assert_eq!(printed, printed2, "pretty-print is not a fixpoint");
        // Structural comparison (spans differ, so compare printed forms).
        assert_eq!(p1.functions.len(), p2.functions.len());
        assert_eq!(p1.stmt_count(), p2.stmt_count());
    }

    #[test]
    fn roundtrip_basic() {
        roundtrip("fn main() { let x = 1 + 2 * 3; print(x); }");
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip(
            "fn f(a: int) -> int { if (a > 0) { return a; } else { return -(a); } }
             fn main() { for (i in 0..10) { while (i < 5) { break; } } let z = f(3); }",
        );
    }

    #[test]
    fn roundtrip_omp_mpi() {
        roundtrip(
            "fn main() {
                MPI_Init_thread(MULTIPLE);
                parallel num_threads(4) {
                    single nowait { MPI_Barrier(); }
                    master { let x = MPI_Allreduce(1, SUM); }
                    critical { }
                    barrier;
                    pfor nowait (i in 0..8) { let y = i; }
                    sections { section { } section { let s = MPI_Bcast(1, 0); } }
                }
                MPI_Finalize();
            }",
        );
    }

    #[test]
    fn roundtrip_arrays_and_floats() {
        roundtrip(
            "fn main() {
                let a = array(10, 0.0);
                a[3] = sqrt(2.0) + 1.0e3;
                let g = MPI_Gather(a[3], 0);
                let s = MPI_Scatter(g, 0);
                print(len(g), s);
            }",
        );
    }

    #[test]
    fn float_literals_relex_as_floats() {
        let e = Expr::new(ExprKind::Float(2.0), crate::span::Span::DUMMY);
        assert_eq!(pretty_expr(&e), "2.0");
    }

    #[test]
    fn roundtrip_nonblocking_and_wildcards() {
        roundtrip(
            "fn main() {
                MPI_Init();
                let peer = size() - 1 - rank();
                let r = MPI_Irecv(MPI_ANY_SOURCE, MPI_ANY_TAG);
                let s = MPI_Isend(1.5, peer, 4);
                let c = MPI_Comm_dup(MPI_COMM_WORLD);
                let t = MPI_Irecv(peer, 7, c);
                let v = MPI_Wait(r);
                MPI_Waitall(s, t);
                MPI_Finalize();
            }",
        );
    }

    #[test]
    fn roundtrip_else_if() {
        roundtrip(
            "fn main() {
                let r = rank();
                if (r == 0) { MPI_Barrier(); } else if (r == 1) { } else { print(r); }
            }",
        );
    }
}
