//! Abstract syntax tree for MiniHPC.
//!
//! MiniHPC is a small imperative language whose only purpose is to express
//! the programs the paper analyses: C-like control flow, OpenMP-model
//! parallel constructs as first-class structured statements (semantically
//! identical to pragmas over structured blocks — they lower to the same
//! CFG shape), and MPI operations as builtin calls.

use crate::span::Span;
use std::fmt;

/// An identifier with its source span.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ident {
    /// The name text.
    pub name: String,
    /// Where it appears.
    pub span: Span,
}

impl Ident {
    /// Construct an identifier.
    pub fn new(name: impl Into<String>, span: Span) -> Self {
        Ident {
            name: name.into(),
            span,
        }
    }

    /// Construct with a dummy span (synthesized code).
    pub fn synth(name: impl Into<String>) -> Self {
        Ident::new(name, Span::DUMMY)
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Scalar and array types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// No value (function returns only).
    Void,
    /// Growable array of `int`.
    ArrayInt,
    /// Growable array of `float`.
    ArrayFloat,
    /// An MPI communicator handle (`MPI_COMM_WORLD`, `MPI_Comm_split`,
    /// `MPI_Comm_dup` results). Opaque: no arithmetic, no comparison.
    Comm,
    /// A non-blocking MPI request handle (`MPI_Isend`/`MPI_Irecv`
    /// results, consumed by `MPI_Wait`/`MPI_Waitall`). Opaque like
    /// [`Type::Comm`].
    Request,
}

/// The `MPI_ANY_SOURCE` wildcard sentinel in lowered (integer) form.
/// Receive sources are otherwise non-negative local ranks.
pub const ANY_SOURCE: i64 = -1;
/// The `MPI_ANY_TAG` wildcard sentinel in lowered (integer) form.
/// Message tags are otherwise non-negative.
pub const ANY_TAG: i64 = -2;

impl Type {
    /// True for `int` / `float`.
    pub fn is_numeric(self) -> bool {
        matches!(self, Type::Int | Type::Float)
    }

    /// True for the array types.
    pub fn is_array(self) -> bool {
        matches!(self, Type::ArrayInt | Type::ArrayFloat)
    }

    /// Element type of an array type.
    pub fn elem(self) -> Option<Type> {
        match self {
            Type::ArrayInt => Some(Type::Int),
            Type::ArrayFloat => Some(Type::Float),
            _ => None,
        }
    }

    /// Array type with the given element type.
    pub fn array_of(elem: Type) -> Option<Type> {
        match elem {
            Type::Int => Some(Type::ArrayInt),
            Type::Float => Some(Type::ArrayFloat),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Bool => write!(f, "bool"),
            Type::Void => write!(f, "void"),
            Type::ArrayInt => write!(f, "int[]"),
            Type::ArrayFloat => write!(f, "float[]"),
            Type::Comm => write!(f, "comm"),
            Type::Request => write!(f, "request"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl BinOp {
    /// True for `+ - * / %`.
    pub fn is_arith(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem
        )
    }

    /// True for comparison operators.
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for `&&` / `||`.
    pub fn is_logic(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// Source text of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Logical negation `!`.
    Not,
}

/// Builtin intrinsic functions (not user-definable, not MPI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `rank()` — MPI rank of the calling process.
    Rank,
    /// `size()` — number of MPI processes.
    Size,
    /// `thread_num()` — id of the calling thread within its team.
    ThreadNum,
    /// `num_threads()` — size of the innermost enclosing team.
    NumThreads,
    /// `in_parallel()` — true when inside an active parallel region.
    InParallel,
    /// `sqrt(float) -> float`.
    Sqrt,
    /// `abs(T) -> T` for numeric T.
    Abs,
    /// `min(T, T) -> T` for numeric T.
    MinOf,
    /// `max(T, T) -> T` for numeric T.
    MaxOf,
    /// `int_of(float) -> int` truncation.
    IntOf,
    /// `float_of(int) -> float`.
    FloatOf,
    /// `array(len, init) -> T[]` — array filled with `init`.
    ArrayNew,
    /// `len(T[]) -> int`.
    Len,
}

impl Intrinsic {
    /// Resolve a call-position identifier to an intrinsic.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "rank" => Intrinsic::Rank,
            "size" => Intrinsic::Size,
            "thread_num" => Intrinsic::ThreadNum,
            "num_threads" => Intrinsic::NumThreads,
            "in_parallel" => Intrinsic::InParallel,
            "sqrt" => Intrinsic::Sqrt,
            "abs" => Intrinsic::Abs,
            "min" => Intrinsic::MinOf,
            "max" => Intrinsic::MaxOf,
            "int_of" => Intrinsic::IntOf,
            "float_of" => Intrinsic::FloatOf,
            "array" => Intrinsic::ArrayNew,
            "len" => Intrinsic::Len,
            _ => return None,
        })
    }

    /// Canonical source name.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Rank => "rank",
            Intrinsic::Size => "size",
            Intrinsic::ThreadNum => "thread_num",
            Intrinsic::NumThreads => "num_threads",
            Intrinsic::InParallel => "in_parallel",
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Abs => "abs",
            Intrinsic::MinOf => "min",
            Intrinsic::MaxOf => "max",
            Intrinsic::IntOf => "int_of",
            Intrinsic::FloatOf => "float_of",
            Intrinsic::ArrayNew => "array",
            Intrinsic::Len => "len",
        }
    }
}

/// MPI reduction operators (the subset the paper's benchmarks use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// `MPI_SUM`
    Sum,
    /// `MPI_PROD`
    Prod,
    /// `MPI_MIN`
    Min,
    /// `MPI_MAX`
    Max,
    /// `MPI_LAND`
    Land,
    /// `MPI_LOR`
    Lor,
}

impl ReduceOp {
    /// Resolve the bare identifier used in source (`SUM`, `PROD`, ...).
    pub fn from_name(name: &str) -> Option<ReduceOp> {
        Some(match name {
            "SUM" => ReduceOp::Sum,
            "PROD" => ReduceOp::Prod,
            "MIN" => ReduceOp::Min,
            "MAX" => ReduceOp::Max,
            "LAND" => ReduceOp::Land,
            "LOR" => ReduceOp::Lor,
            _ => return None,
        })
    }

    /// Canonical source name.
    pub fn name(self) -> &'static str {
        match self {
            ReduceOp::Sum => "SUM",
            ReduceOp::Prod => "PROD",
            ReduceOp::Min => "MIN",
            ReduceOp::Max => "MAX",
            ReduceOp::Land => "LAND",
            ReduceOp::Lor => "LOR",
        }
    }
}

/// The kinds of MPI *collective* operations the analysis tracks.
///
/// The numeric discriminant doubles as the "color" the dynamic `CC` check
/// communicates (paper §3 / PARCOACH Algorithm 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CollectiveKind {
    /// `MPI_Barrier()`
    Barrier,
    /// `MPI_Bcast(v, root)`
    Bcast,
    /// `MPI_Reduce(v, op, root)`
    Reduce,
    /// `MPI_Allreduce(v, op)`
    Allreduce,
    /// `MPI_Gather(v, root)`
    Gather,
    /// `MPI_Allgather(v)`
    Allgather,
    /// `MPI_Scatter(arr, root)`
    Scatter,
    /// `MPI_Alltoall(arr)`
    Alltoall,
    /// `MPI_Scan(v, op)`
    Scan,
    /// `MPI_Reduce_scatter(arr, op)`
    ReduceScatter,
}

impl CollectiveKind {
    /// All collective kinds, in color order.
    pub const ALL: [CollectiveKind; 10] = [
        CollectiveKind::Barrier,
        CollectiveKind::Bcast,
        CollectiveKind::Reduce,
        CollectiveKind::Allreduce,
        CollectiveKind::Gather,
        CollectiveKind::Allgather,
        CollectiveKind::Scatter,
        CollectiveKind::Alltoall,
        CollectiveKind::Scan,
        CollectiveKind::ReduceScatter,
    ];

    /// The MPI-style function name, e.g. `MPI_Allreduce`.
    pub fn mpi_name(self) -> &'static str {
        match self {
            CollectiveKind::Barrier => "MPI_Barrier",
            CollectiveKind::Bcast => "MPI_Bcast",
            CollectiveKind::Reduce => "MPI_Reduce",
            CollectiveKind::Allreduce => "MPI_Allreduce",
            CollectiveKind::Gather => "MPI_Gather",
            CollectiveKind::Allgather => "MPI_Allgather",
            CollectiveKind::Scatter => "MPI_Scatter",
            CollectiveKind::Alltoall => "MPI_Alltoall",
            CollectiveKind::Scan => "MPI_Scan",
            CollectiveKind::ReduceScatter => "MPI_Reduce_scatter",
        }
    }

    /// Resolve an `MPI_*` identifier to a collective kind.
    pub fn from_name(name: &str) -> Option<CollectiveKind> {
        CollectiveKind::ALL
            .iter()
            .copied()
            .find(|k| k.mpi_name() == name)
    }

    /// The dynamic-check color (stable across runs and processes).
    pub fn color(self) -> u32 {
        self as u32 + 1 // 0 is reserved for "no collective / return"
    }

    /// True when the operation needs a root argument.
    pub fn has_root(self) -> bool {
        matches!(
            self,
            CollectiveKind::Bcast
                | CollectiveKind::Reduce
                | CollectiveKind::Gather
                | CollectiveKind::Scatter
        )
    }

    /// True when the operation needs a reduction operator argument.
    pub fn has_reduce_op(self) -> bool {
        matches!(
            self,
            CollectiveKind::Reduce
                | CollectiveKind::Allreduce
                | CollectiveKind::Scan
                | CollectiveKind::ReduceScatter
        )
    }
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mpi_name())
    }
}

/// A full MPI operation as it appears in source.
#[derive(Debug, Clone, PartialEq)]
pub enum MpiOp {
    /// `MPI_Init()`
    Init,
    /// `MPI_Init_thread(REQUIRED)` with a requested thread level name
    /// (`SINGLE` / `FUNNELED` / `SERIALIZED` / `MULTIPLE`).
    InitThread {
        /// Requested level.
        required: ThreadLevel,
    },
    /// `MPI_Finalize()`
    Finalize,
    /// A collective operation.
    Collective(CollectiveCall),
    /// `MPI_Send(v, dest, tag[, comm])` — blocking (buffered) send,
    /// checked by the static point-to-point matching pass.
    Send {
        /// Value expression.
        value: Box<Expr>,
        /// Destination rank (within `comm`).
        dest: Box<Expr>,
        /// Message tag.
        tag: Box<Expr>,
        /// Communicator (None = `MPI_COMM_WORLD`).
        comm: Option<Box<Expr>>,
    },
    /// `MPI_Recv(src, tag[, comm])` — returns the received value.
    Recv {
        /// Source rank (within `comm`).
        src: Box<Expr>,
        /// Message tag.
        tag: Box<Expr>,
        /// Communicator (None = `MPI_COMM_WORLD`).
        comm: Option<Box<Expr>>,
    },
    /// The `MPI_COMM_WORLD` handle as an expression.
    CommWorld,
    /// `MPI_Comm_split(parent, color, key)` — collective over `parent`;
    /// ranks with equal `color` form a new communicator, ordered by
    /// (`key`, parent rank).
    CommSplit {
        /// Parent communicator.
        parent: Box<Expr>,
        /// Partition color (non-negative).
        color: Box<Expr>,
        /// Ordering key within the new communicator.
        key: Box<Expr>,
    },
    /// `MPI_Comm_dup(comm)` — collective over `comm`; returns a new
    /// communicator with the same members but a separate matching space.
    CommDup {
        /// Communicator to duplicate.
        comm: Box<Expr>,
    },
    /// `MPI_Isend(v, dest, tag[, comm])` — non-blocking (buffered) send;
    /// returns a request that must be completed by `MPI_Wait[all]`.
    Isend {
        /// Value expression.
        value: Box<Expr>,
        /// Destination rank (within `comm`).
        dest: Box<Expr>,
        /// Message tag.
        tag: Box<Expr>,
        /// Communicator (None = `MPI_COMM_WORLD`).
        comm: Option<Box<Expr>>,
    },
    /// `MPI_Irecv(src, tag[, comm])` — non-blocking receive post; `src`
    /// may be `MPI_ANY_SOURCE` and `tag` may be `MPI_ANY_TAG`. Returns a
    /// request; the received value is produced by `MPI_Wait`.
    Irecv {
        /// Source rank (within `comm`) or `MPI_ANY_SOURCE`.
        src: Box<Expr>,
        /// Message tag or `MPI_ANY_TAG`.
        tag: Box<Expr>,
        /// Communicator (None = `MPI_COMM_WORLD`).
        comm: Option<Box<Expr>>,
    },
    /// `MPI_Wait(req)` — block until the request completes; returns the
    /// received value for receive requests (0.0 for send requests).
    Wait {
        /// The request to complete.
        request: Box<Expr>,
    },
    /// `MPI_Waitall(r1, r2, …)` — complete every request, in order.
    Waitall {
        /// The requests to complete.
        requests: Vec<Expr>,
    },
    /// The `MPI_ANY_SOURCE` receive wildcard as an (int) expression.
    AnySource,
    /// The `MPI_ANY_TAG` receive wildcard as an (int) expression.
    AnyTag,
}

/// A collective call: kind + arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveCall {
    /// Which collective.
    pub kind: CollectiveKind,
    /// Payload value (absent for `MPI_Barrier`).
    pub value: Option<Box<Expr>>,
    /// Reduction operator for reducing collectives.
    pub reduce_op: Option<ReduceOp>,
    /// Root rank expression for rooted collectives.
    pub root: Option<Box<Expr>>,
    /// Communicator the collective runs on (None = `MPI_COMM_WORLD`),
    /// always the last argument when present.
    pub comm: Option<Box<Expr>>,
}

/// MPI threading support levels (MPI-2 §12.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ThreadLevel {
    /// Only one thread will execute.
    #[default]
    Single,
    /// Only the main thread makes MPI calls.
    Funneled,
    /// Any thread may call MPI, but not concurrently.
    Serialized,
    /// No restrictions.
    Multiple,
}

impl ThreadLevel {
    /// Resolve the bare identifier used in source.
    pub fn from_name(name: &str) -> Option<ThreadLevel> {
        Some(match name {
            "SINGLE" => ThreadLevel::Single,
            "FUNNELED" => ThreadLevel::Funneled,
            "SERIALIZED" => ThreadLevel::Serialized,
            "MULTIPLE" => ThreadLevel::Multiple,
            _ => return None,
        })
    }

    /// MPI constant name.
    pub fn mpi_name(self) -> &'static str {
        match self {
            ThreadLevel::Single => "MPI_THREAD_SINGLE",
            ThreadLevel::Funneled => "MPI_THREAD_FUNNELED",
            ThreadLevel::Serialized => "MPI_THREAD_SERIALIZED",
            ThreadLevel::Multiple => "MPI_THREAD_MULTIPLE",
        }
    }
}

impl fmt::Display for ThreadLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mpi_name())
    }
}

/// Expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// Source span.
    pub span: Span,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Bool literal.
    Bool(bool),
    /// Variable reference.
    Var(Ident),
    /// Array indexing `a[i]`.
    Index(Ident, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Call to a user-defined function.
    Call(Ident, Vec<Expr>),
    /// Call to a builtin intrinsic.
    Intrinsic(Intrinsic, Vec<Expr>),
    /// An MPI operation used as an expression.
    Mpi(MpiOp),
}

impl Expr {
    /// Construct an expression.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Integer literal helper.
    pub fn int(v: i64, span: Span) -> Self {
        Expr::new(ExprKind::Int(v), span)
    }

    /// Walk this expression and all sub-expressions, pre-order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match &self.kind {
            ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Bool(_) | ExprKind::Var(_) => {}
            ExprKind::Index(_, idx) => idx.walk(f),
            ExprKind::Unary(_, e) => e.walk(f),
            ExprKind::Binary(_, l, r) => {
                l.walk(f);
                r.walk(f);
            }
            ExprKind::Call(_, args) | ExprKind::Intrinsic(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::Mpi(op) => match op {
                MpiOp::Init
                | MpiOp::InitThread { .. }
                | MpiOp::Finalize
                | MpiOp::CommWorld
                | MpiOp::AnySource
                | MpiOp::AnyTag => {}
                MpiOp::Collective(c) => {
                    if let Some(v) = &c.value {
                        v.walk(f);
                    }
                    if let Some(r) = &c.root {
                        r.walk(f);
                    }
                    if let Some(cm) = &c.comm {
                        cm.walk(f);
                    }
                }
                MpiOp::Send {
                    value,
                    dest,
                    tag,
                    comm,
                } => {
                    value.walk(f);
                    dest.walk(f);
                    tag.walk(f);
                    if let Some(cm) = comm {
                        cm.walk(f);
                    }
                }
                MpiOp::Recv { src, tag, comm } => {
                    src.walk(f);
                    tag.walk(f);
                    if let Some(cm) = comm {
                        cm.walk(f);
                    }
                }
                MpiOp::CommSplit { parent, color, key } => {
                    parent.walk(f);
                    color.walk(f);
                    key.walk(f);
                }
                MpiOp::CommDup { comm } => comm.walk(f),
                MpiOp::Isend {
                    value,
                    dest,
                    tag,
                    comm,
                } => {
                    value.walk(f);
                    dest.walk(f);
                    tag.walk(f);
                    if let Some(cm) = comm {
                        cm.walk(f);
                    }
                }
                MpiOp::Irecv { src, tag, comm } => {
                    src.walk(f);
                    tag.walk(f);
                    if let Some(cm) = comm {
                        cm.walk(f);
                    }
                }
                MpiOp::Wait { request } => request.walk(f),
                MpiOp::Waitall { requests } => {
                    for r in requests {
                        r.walk(f);
                    }
                }
            },
        }
    }
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Plain variable.
    Var(Ident),
    /// Array element.
    Index(Ident, Box<Expr>),
}

impl LValue {
    /// The variable at the base of the lvalue.
    pub fn base(&self) -> &Ident {
        match self {
            LValue::Var(id) | LValue::Index(id, _) => id,
        }
    }

    /// Span covering the whole lvalue.
    pub fn span(&self) -> Span {
        match self {
            LValue::Var(id) => id.span,
            LValue::Index(id, idx) => id.span.to(idx.span),
        }
    }
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Span of the whole block including braces.
    pub span: Span,
}

impl Block {
    /// An empty block with a dummy span.
    pub fn empty() -> Self {
        Block {
            stmts: Vec::new(),
            span: Span::DUMMY,
        }
    }
}

/// Statement node.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What the statement is.
    pub kind: StmtKind,
    /// Source span.
    pub span: Span,
}

impl Stmt {
    /// Construct a statement.
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }
}

/// OpenMP-model parallel constructs (structured, perfectly nested — the
/// model the paper assumes in §1).
#[derive(Debug, Clone, PartialEq)]
pub enum OmpStmt {
    /// `parallel [num_threads(e)] { ... }` — fork a team; implicit barrier
    /// + join at the end.
    Parallel {
        /// Optional requested team size.
        num_threads: Option<Box<Expr>>,
        /// Region body.
        body: Block,
    },
    /// `single [nowait] { ... }` — exactly one thread of the team executes
    /// the body; implicit barrier at the end unless `nowait`.
    Single {
        /// Suppress the trailing implicit barrier.
        nowait: bool,
        /// Region body.
        body: Block,
    },
    /// `master { ... }` — only the master thread executes; **no** implicit
    /// barrier.
    Master {
        /// Region body.
        body: Block,
    },
    /// `critical { ... }` — mutual exclusion; all threads execute, one at
    /// a time; no barrier.
    Critical {
        /// Region body.
        body: Block,
    },
    /// `pfor [nowait] (i in lo..hi) { ... }` — worksharing loop; implicit
    /// barrier at the end unless `nowait`.
    PFor {
        /// Suppress the trailing implicit barrier.
        nowait: bool,
        /// Loop variable.
        var: Ident,
        /// Inclusive lower bound.
        lo: Box<Expr>,
        /// Exclusive upper bound.
        hi: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `sections [nowait] { section { .. } section { .. } }` — each section
    /// executed by one thread; implicit barrier unless `nowait`.
    Sections {
        /// Suppress the trailing implicit barrier.
        nowait: bool,
        /// The section bodies.
        sections: Vec<Block>,
    },
}

impl OmpStmt {
    /// Short construct name for diagnostics.
    pub fn construct_name(&self) -> &'static str {
        match self {
            OmpStmt::Parallel { .. } => "parallel",
            OmpStmt::Single { .. } => "single",
            OmpStmt::Master { .. } => "master",
            OmpStmt::Critical { .. } => "critical",
            OmpStmt::PFor { .. } => "pfor",
            OmpStmt::Sections { .. } => "sections",
        }
    }
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `let x[: ty] = e;`
    Let {
        /// Variable name.
        name: Ident,
        /// Optional annotation.
        ty: Option<Type>,
        /// Initializer.
        init: Expr,
    },
    /// `lv = e;`
    Assign {
        /// Target.
        target: LValue,
        /// Value.
        value: Expr,
    },
    /// `if (c) { .. } [else { .. }]`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
    },
    /// `while (c) { .. }`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
    },
    /// `for (i in lo..hi) { .. }` — sequential counted loop.
    For {
        /// Loop variable.
        var: Ident,
        /// Lower bound (inclusive).
        lo: Expr,
        /// Upper bound (exclusive).
        hi: Expr,
        /// Body.
        body: Block,
    },
    /// `return [e];`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Expression statement `e;`.
    Expr(Expr),
    /// `print(e, ...);`
    Print(Vec<Expr>),
    /// An OpenMP construct.
    Omp(OmpStmt),
    /// `barrier;` — explicit thread barrier.
    Barrier,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Name.
    pub name: Ident,
    /// Declared type.
    pub ty: Type,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: Ident,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Return type (`Void` if omitted).
    pub ret: Type,
    /// Body.
    pub body: Block,
    /// Span of the whole definition.
    pub span: Span,
}

/// A whole program: a set of functions, `main` being the entry point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Functions in definition order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name.name == name)
    }

    /// The entry point, if present.
    pub fn main(&self) -> Option<&Function> {
        self.function("main")
    }

    /// Total number of statements (recursively), a rough size metric used
    /// by the benchmark tables.
    pub fn stmt_count(&self) -> usize {
        fn count_block(b: &Block) -> usize {
            b.stmts.iter().map(count_stmt).sum()
        }
        fn count_stmt(s: &Stmt) -> usize {
            1 + match &s.kind {
                StmtKind::If {
                    then_blk, else_blk, ..
                } => count_block(then_blk) + else_blk.as_ref().map_or(0, count_block),
                StmtKind::While { body, .. } | StmtKind::For { body, .. } => count_block(body),
                StmtKind::Omp(o) => match o {
                    OmpStmt::Parallel { body, .. }
                    | OmpStmt::Single { body, .. }
                    | OmpStmt::Master { body }
                    | OmpStmt::Critical { body }
                    | OmpStmt::PFor { body, .. } => count_block(body),
                    OmpStmt::Sections { sections, .. } => sections.iter().map(count_block).sum(),
                },
                _ => 0,
            }
        }
        self.functions.iter().map(|f| count_block(&f.body)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collective_color_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for k in CollectiveKind::ALL {
            assert!(k.color() > 0, "color 0 is reserved");
            assert!(seen.insert(k.color()), "duplicate color for {k}");
            assert_eq!(CollectiveKind::from_name(k.mpi_name()), Some(k));
        }
    }

    #[test]
    fn collective_argument_shape() {
        assert!(CollectiveKind::Bcast.has_root());
        assert!(!CollectiveKind::Bcast.has_reduce_op());
        assert!(CollectiveKind::Reduce.has_root());
        assert!(CollectiveKind::Reduce.has_reduce_op());
        assert!(!CollectiveKind::Allreduce.has_root());
        assert!(CollectiveKind::Allreduce.has_reduce_op());
        assert!(!CollectiveKind::Barrier.has_root());
        assert!(!CollectiveKind::Barrier.has_reduce_op());
    }

    #[test]
    fn thread_levels_ordered() {
        assert!(ThreadLevel::Single < ThreadLevel::Funneled);
        assert!(ThreadLevel::Funneled < ThreadLevel::Serialized);
        assert!(ThreadLevel::Serialized < ThreadLevel::Multiple);
        assert_eq!(
            ThreadLevel::from_name("SERIALIZED"),
            Some(ThreadLevel::Serialized)
        );
        assert_eq!(ThreadLevel::from_name("bogus"), None);
    }

    #[test]
    fn type_helpers() {
        assert!(Type::Int.is_numeric());
        assert!(!Type::Bool.is_numeric());
        assert_eq!(Type::ArrayInt.elem(), Some(Type::Int));
        assert_eq!(Type::array_of(Type::Float), Some(Type::ArrayFloat));
        assert_eq!(Type::array_of(Type::Bool), None);
    }

    #[test]
    fn expr_walk_visits_all() {
        // 1 + f(a[i], -2)
        let e = Expr::new(
            ExprKind::Binary(
                BinOp::Add,
                Box::new(Expr::int(1, Span::DUMMY)),
                Box::new(Expr::new(
                    ExprKind::Call(
                        Ident::synth("f"),
                        vec![
                            Expr::new(
                                ExprKind::Index(
                                    Ident::synth("a"),
                                    Box::new(Expr::new(
                                        ExprKind::Var(Ident::synth("i")),
                                        Span::DUMMY,
                                    )),
                                ),
                                Span::DUMMY,
                            ),
                            Expr::new(
                                ExprKind::Unary(UnOp::Neg, Box::new(Expr::int(2, Span::DUMMY))),
                                Span::DUMMY,
                            ),
                        ],
                    ),
                    Span::DUMMY,
                )),
            ),
            Span::DUMMY,
        );
        let mut n = 0;
        e.walk(&mut |_| n += 1);
        assert_eq!(n, 7);
    }

    #[test]
    fn reduce_ops_roundtrip() {
        for op in [
            ReduceOp::Sum,
            ReduceOp::Prod,
            ReduceOp::Min,
            ReduceOp::Max,
            ReduceOp::Land,
            ReduceOp::Lor,
        ] {
            assert_eq!(ReduceOp::from_name(op.name()), Some(op));
        }
    }

    #[test]
    fn stmt_count_recurses() {
        // fn main { if (true) { let x = 1; } }  => if + let = 2
        let prog = Program {
            functions: vec![Function {
                name: Ident::synth("main"),
                params: vec![],
                ret: Type::Void,
                span: Span::DUMMY,
                body: Block {
                    stmts: vec![Stmt::new(
                        StmtKind::If {
                            cond: Expr::new(ExprKind::Bool(true), Span::DUMMY),
                            then_blk: Block {
                                stmts: vec![Stmt::new(
                                    StmtKind::Let {
                                        name: Ident::synth("x"),
                                        ty: None,
                                        init: Expr::int(1, Span::DUMMY),
                                    },
                                    Span::DUMMY,
                                )],
                                span: Span::DUMMY,
                            },
                            else_blk: None,
                        },
                        Span::DUMMY,
                    )],
                    span: Span::DUMMY,
                },
            }],
        };
        assert_eq!(prog.stmt_count(), 2);
        assert!(prog.main().is_some());
    }
}
