//! Recursive-descent parser for MiniHPC.
//!
//! The grammar is LL(2); see `DESIGN.md` §4 for the surface syntax. The
//! parser is resilient: on error it records a diagnostic and synchronizes
//! to the next statement/function boundary so one typo does not hide the
//! rest of the program.

use crate::ast::*;
use crate::diag::Diagnostics;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parse a complete program from source text.
///
/// Returns the (possibly partial) AST plus diagnostics; callers should
/// check [`Diagnostics::has_errors`] before trusting the AST.
pub fn parse_program(src: &str) -> (Program, Diagnostics) {
    let mut diags = Diagnostics::new();
    let tokens = lex(src, &mut diags);
    let mut p = Parser {
        tokens,
        pos: 0,
        diags,
    };
    let prog = p.program();
    (prog, p.diags)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diags: Diagnostics,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1).min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> bool {
        if self.eat(kind) {
            true
        } else {
            let found = self.peek().describe();
            self.diags.error(
                "parse-error",
                format!("expected {}, found {}", kind.describe(), found),
                self.span(),
            );
            false
        }
    }

    fn expect_ident(&mut self, what: &str) -> Ident {
        if let TokenKind::Ident(name) = self.peek().clone() {
            let t = self.bump();
            Ident::new(name, t.span)
        } else {
            self.diags.error(
                "parse-error",
                format!("expected {what}, found {}", self.peek().describe()),
                self.span(),
            );
            Ident::new("<error>", self.span())
        }
    }

    /// Skip tokens until a plausible statement start or block boundary.
    fn synchronize_stmt(&mut self) {
        loop {
            match self.peek() {
                TokenKind::Semi => {
                    self.bump();
                    return;
                }
                TokenKind::RBrace | TokenKind::Eof => return,
                TokenKind::Let
                | TokenKind::If
                | TokenKind::While
                | TokenKind::For
                | TokenKind::Return
                | TokenKind::Parallel
                | TokenKind::Single
                | TokenKind::Master
                | TokenKind::Critical
                | TokenKind::Barrier
                | TokenKind::PFor
                | TokenKind::Sections
                | TokenKind::Fn => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- grammar productions -------------------------------------------

    fn program(&mut self) -> Program {
        let mut functions = Vec::new();
        while !self.at(&TokenKind::Eof) {
            if self.at(&TokenKind::Fn) {
                functions.push(self.function());
            } else {
                self.diags.error(
                    "parse-error",
                    format!(
                        "expected `fn` at top level, found {}",
                        self.peek().describe()
                    ),
                    self.span(),
                );
                self.bump();
                // Skip until the next `fn` or EOF.
                while !self.at(&TokenKind::Fn) && !self.at(&TokenKind::Eof) {
                    self.bump();
                }
            }
        }
        Program { functions }
    }

    fn function(&mut self) -> Function {
        let start = self.span();
        self.expect(&TokenKind::Fn);
        let name = self.expect_ident("function name");
        self.expect(&TokenKind::LParen);
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let pname = self.expect_ident("parameter name");
                self.expect(&TokenKind::Colon);
                let ty = self.ty();
                params.push(Param { name: pname, ty });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen);
        let ret = if self.eat(&TokenKind::Arrow) {
            self.ty()
        } else {
            Type::Void
        };
        let body = self.block();
        let span = start.to(body.span);
        Function {
            name,
            params,
            ret,
            body,
            span,
        }
    }

    fn ty(&mut self) -> Type {
        let base = match self.peek() {
            TokenKind::TyInt => {
                self.bump();
                Type::Int
            }
            TokenKind::TyFloat => {
                self.bump();
                Type::Float
            }
            TokenKind::TyBool => {
                self.bump();
                Type::Bool
            }
            TokenKind::TyVoid => {
                self.bump();
                Type::Void
            }
            other => {
                let msg = format!("expected type, found {}", other.describe());
                self.diags.error("parse-error", msg, self.span());
                self.bump();
                Type::Int
            }
        };
        // Array suffix `[]`.
        if self.at(&TokenKind::LBracket) && self.peek2() == &TokenKind::RBracket {
            self.bump();
            self.bump();
            match Type::array_of(base) {
                Some(t) => t,
                None => {
                    self.diags.error(
                        "parse-error",
                        format!("`{base}[]` is not a valid type"),
                        self.prev_span(),
                    );
                    Type::ArrayInt
                }
            }
        } else {
            base
        }
    }

    fn block(&mut self) -> Block {
        let start = self.span();
        if !self.expect(&TokenKind::LBrace) {
            return Block {
                stmts: Vec::new(),
                span: start,
            };
        }
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            let before = self.pos;
            stmts.push(self.stmt());
            if self.pos == before {
                // No progress: drop the offending token to avoid looping.
                self.bump();
            }
        }
        let end = self.span();
        self.expect(&TokenKind::RBrace);
        Block {
            stmts,
            span: start.to(end),
        }
    }

    fn stmt(&mut self) -> Stmt {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Let => self.let_stmt(),
            TokenKind::If => self.if_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::For => self.for_stmt(),
            TokenKind::Return => {
                self.bump();
                let value = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr())
                };
                self.expect(&TokenKind::Semi);
                Stmt::new(StmtKind::Return(value), start.to(self.prev_span()))
            }
            TokenKind::Break => {
                self.bump();
                self.expect(&TokenKind::Semi);
                Stmt::new(StmtKind::Break, start.to(self.prev_span()))
            }
            TokenKind::Continue => {
                self.bump();
                self.expect(&TokenKind::Semi);
                Stmt::new(StmtKind::Continue, start.to(self.prev_span()))
            }
            TokenKind::Print => {
                self.bump();
                self.expect(&TokenKind::LParen);
                let mut args = Vec::new();
                if !self.at(&TokenKind::RParen) {
                    loop {
                        args.push(self.expr());
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen);
                self.expect(&TokenKind::Semi);
                Stmt::new(StmtKind::Print(args), start.to(self.prev_span()))
            }
            TokenKind::Barrier => {
                self.bump();
                self.expect(&TokenKind::Semi);
                Stmt::new(StmtKind::Barrier, start.to(self.prev_span()))
            }
            TokenKind::Parallel => self.parallel_stmt(),
            TokenKind::Single => self.single_stmt(),
            TokenKind::Master => {
                self.bump();
                let body = self.block();
                let span = start.to(body.span);
                Stmt::new(StmtKind::Omp(OmpStmt::Master { body }), span)
            }
            TokenKind::Critical => {
                self.bump();
                let body = self.block();
                let span = start.to(body.span);
                Stmt::new(StmtKind::Omp(OmpStmt::Critical { body }), span)
            }
            TokenKind::PFor => self.pfor_stmt(),
            TokenKind::Sections => self.sections_stmt(),
            TokenKind::Ident(_) => self.assign_or_expr_stmt(),
            _ => {
                // Expression statement fallback (e.g. a bare MPI call would
                // be an Ident; anything else here is an error).
                let before = self.diags.len();
                let e = self.expr();
                if self.diags.len() > before {
                    self.synchronize_stmt();
                } else {
                    self.expect(&TokenKind::Semi);
                }
                Stmt::new(StmtKind::Expr(e), start.to(self.prev_span()))
            }
        }
    }

    fn let_stmt(&mut self) -> Stmt {
        let start = self.span();
        self.bump(); // let
        let name = self.expect_ident("variable name");
        let ty = if self.eat(&TokenKind::Colon) {
            Some(self.ty())
        } else {
            None
        };
        self.expect(&TokenKind::Assign);
        let init = self.expr();
        self.expect(&TokenKind::Semi);
        Stmt::new(StmtKind::Let { name, ty, init }, start.to(self.prev_span()))
    }

    fn if_stmt(&mut self) -> Stmt {
        let start = self.span();
        self.bump(); // if
        self.expect(&TokenKind::LParen);
        let cond = self.expr();
        self.expect(&TokenKind::RParen);
        let then_blk = self.block();
        let else_blk = if self.eat(&TokenKind::Else) {
            if self.at(&TokenKind::If) {
                // `else if` sugar: wrap the nested if in a block.
                let nested = self.if_stmt();
                let span = nested.span;
                Some(Block {
                    stmts: vec![nested],
                    span,
                })
            } else {
                Some(self.block())
            }
        } else {
            None
        };
        let end = else_blk.as_ref().map(|b| b.span).unwrap_or(then_blk.span);
        Stmt::new(
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            },
            start.to(end),
        )
    }

    fn while_stmt(&mut self) -> Stmt {
        let start = self.span();
        self.bump(); // while
        self.expect(&TokenKind::LParen);
        let cond = self.expr();
        self.expect(&TokenKind::RParen);
        let body = self.block();
        let span = start.to(body.span);
        Stmt::new(StmtKind::While { cond, body }, span)
    }

    fn for_stmt(&mut self) -> Stmt {
        let start = self.span();
        self.bump(); // for
        self.expect(&TokenKind::LParen);
        let var = self.expect_ident("loop variable");
        self.expect(&TokenKind::In);
        let lo = self.expr();
        self.expect(&TokenKind::DotDot);
        let hi = self.expr();
        self.expect(&TokenKind::RParen);
        let body = self.block();
        let span = start.to(body.span);
        Stmt::new(StmtKind::For { var, lo, hi, body }, span)
    }

    fn parallel_stmt(&mut self) -> Stmt {
        let start = self.span();
        self.bump(); // parallel
        let num_threads = if self.eat(&TokenKind::NumThreadsClause) {
            self.expect(&TokenKind::LParen);
            let e = self.expr();
            self.expect(&TokenKind::RParen);
            Some(Box::new(e))
        } else {
            None
        };
        let body = self.block();
        let span = start.to(body.span);
        Stmt::new(StmtKind::Omp(OmpStmt::Parallel { num_threads, body }), span)
    }

    fn single_stmt(&mut self) -> Stmt {
        let start = self.span();
        self.bump(); // single
        let nowait = self.eat(&TokenKind::Nowait);
        let body = self.block();
        let span = start.to(body.span);
        Stmt::new(StmtKind::Omp(OmpStmt::Single { nowait, body }), span)
    }

    fn pfor_stmt(&mut self) -> Stmt {
        let start = self.span();
        self.bump(); // pfor
        let nowait = self.eat(&TokenKind::Nowait);
        self.expect(&TokenKind::LParen);
        let var = self.expect_ident("loop variable");
        self.expect(&TokenKind::In);
        let lo = self.expr();
        self.expect(&TokenKind::DotDot);
        let hi = self.expr();
        self.expect(&TokenKind::RParen);
        let body = self.block();
        let span = start.to(body.span);
        Stmt::new(
            StmtKind::Omp(OmpStmt::PFor {
                nowait,
                var,
                lo: Box::new(lo),
                hi: Box::new(hi),
                body,
            }),
            span,
        )
    }

    fn sections_stmt(&mut self) -> Stmt {
        let start = self.span();
        self.bump(); // sections
        let nowait = self.eat(&TokenKind::Nowait);
        self.expect(&TokenKind::LBrace);
        let mut sections = Vec::new();
        while self.at(&TokenKind::Section) {
            self.bump();
            sections.push(self.block());
        }
        if sections.is_empty() {
            self.diags.error(
                "parse-error",
                "`sections` requires at least one `section` block",
                self.span(),
            );
        }
        let end = self.span();
        self.expect(&TokenKind::RBrace);
        Stmt::new(
            StmtKind::Omp(OmpStmt::Sections { nowait, sections }),
            start.to(end),
        )
    }

    fn assign_or_expr_stmt(&mut self) -> Stmt {
        let start = self.span();
        // Lookahead: IDENT `=` → assign; IDENT `[` expr `]` `=` → indexed
        // assign. Anything else is an expression statement.
        if let TokenKind::Ident(name) = self.peek().clone() {
            if self.peek2() == &TokenKind::Assign {
                let id_tok = self.bump();
                self.bump(); // =
                let value = self.expr();
                self.expect(&TokenKind::Semi);
                return Stmt::new(
                    StmtKind::Assign {
                        target: LValue::Var(Ident::new(name, id_tok.span)),
                        value,
                    },
                    start.to(self.prev_span()),
                );
            }
            if self.peek2() == &TokenKind::LBracket {
                // Could be `a[i] = e;` or the expression `a[i]` — parse the
                // index then decide.
                let save = self.pos;
                let id_tok = self.bump();
                self.bump(); // [
                let idx = self.expr();
                self.expect(&TokenKind::RBracket);
                if self.eat(&TokenKind::Assign) {
                    let value = self.expr();
                    self.expect(&TokenKind::Semi);
                    return Stmt::new(
                        StmtKind::Assign {
                            target: LValue::Index(Ident::new(name, id_tok.span), Box::new(idx)),
                            value,
                        },
                        start.to(self.prev_span()),
                    );
                }
                // Not an assignment: rewind and reparse as expression.
                self.pos = save;
            }
        }
        let e = self.expr();
        self.expect(&TokenKind::Semi);
        Stmt::new(StmtKind::Expr(e), start.to(self.prev_span()))
    }

    // ---- expressions (precedence climbing) ------------------------------

    fn expr(&mut self) -> Expr {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Expr {
        let mut lhs = self.and_expr();
        while self.at(&TokenKind::OrOr) {
            self.bump();
            let rhs = self.and_expr();
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        lhs
    }

    fn and_expr(&mut self) -> Expr {
        let mut lhs = self.cmp_expr();
        while self.at(&TokenKind::AndAnd) {
            self.bump();
            let rhs = self.cmp_expr();
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        lhs
    }

    fn cmp_expr(&mut self) -> Expr {
        let lhs = self.add_expr();
        let op = match self.peek() {
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::NotEq => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return lhs,
        };
        self.bump();
        let rhs = self.add_expr();
        let span = lhs.span.to(rhs.span);
        Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span)
    }

    fn add_expr(&mut self) -> Expr {
        let mut lhs = self.mul_expr();
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr();
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        lhs
    }

    fn mul_expr(&mut self) -> Expr {
        let mut lhs = self.unary_expr();
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr();
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        lhs
    }

    fn unary_expr(&mut self) -> Expr {
        let start = self.span();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let e = self.unary_expr();
                let span = start.to(e.span);
                Expr::new(ExprKind::Unary(UnOp::Neg, Box::new(e)), span)
            }
            TokenKind::Not => {
                self.bump();
                let e = self.unary_expr();
                let span = start.to(e.span);
                Expr::new(ExprKind::Unary(UnOp::Not, Box::new(e)), span)
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Expr {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Expr::new(ExprKind::Int(v), start)
            }
            TokenKind::Float(v) => {
                self.bump();
                Expr::new(ExprKind::Float(v), start)
            }
            TokenKind::Bool(v) => {
                self.bump();
                Expr::new(ExprKind::Bool(v), start)
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr();
                self.expect(&TokenKind::RParen);
                e
            }
            TokenKind::Ident(name) => {
                let id_tok = self.bump();
                let ident = Ident::new(name.clone(), id_tok.span);
                if ident.name == "MPI_COMM_WORLD" && !self.at(&TokenKind::LParen) {
                    Expr::new(ExprKind::Mpi(MpiOp::CommWorld), id_tok.span)
                } else if ident.name == "MPI_ANY_SOURCE" && !self.at(&TokenKind::LParen) {
                    Expr::new(ExprKind::Mpi(MpiOp::AnySource), id_tok.span)
                } else if ident.name == "MPI_ANY_TAG" && !self.at(&TokenKind::LParen) {
                    Expr::new(ExprKind::Mpi(MpiOp::AnyTag), id_tok.span)
                } else if self.at(&TokenKind::LParen) {
                    self.call_expr(ident)
                } else if self.at(&TokenKind::LBracket) {
                    self.bump();
                    let idx = self.expr();
                    self.expect(&TokenKind::RBracket);
                    let span = start.to(self.prev_span());
                    Expr::new(ExprKind::Index(ident, Box::new(idx)), span)
                } else {
                    Expr::new(ExprKind::Var(ident), start)
                }
            }
            other => {
                self.diags.error(
                    "parse-error",
                    format!("expected expression, found {}", other.describe()),
                    start,
                );
                // Produce a placeholder so parsing can continue.
                Expr::new(ExprKind::Int(0), start)
            }
        }
    }

    /// Parse `name(args…)` where `name` may be an MPI builtin, an
    /// intrinsic, or a user function.
    fn call_expr(&mut self, name: Ident) -> Expr {
        let start = name.span;
        self.expect(&TokenKind::LParen);

        if name.name.starts_with("MPI_") {
            return self.mpi_call(name, start);
        }

        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.expr());
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen);
        let span = start.to(self.prev_span());

        if let Some(intr) = Intrinsic::from_name(&name.name) {
            Expr::new(ExprKind::Intrinsic(intr, args), span)
        } else {
            Expr::new(ExprKind::Call(name, args), span)
        }
    }

    /// Argument position that must be a bare identifier (reduce op or
    /// thread level name).
    fn bare_name_arg(&mut self, what: &str) -> Option<Ident> {
        if let TokenKind::Ident(n) = self.peek().clone() {
            let t = self.bump();
            Some(Ident::new(n, t.span))
        } else {
            self.diags.error(
                "parse-error",
                format!("expected {what} name, found {}", self.peek().describe()),
                self.span(),
            );
            None
        }
    }

    fn mpi_call(&mut self, name: Ident, start: Span) -> Expr {
        // `(` already consumed.
        let op: Option<MpiOp> = match name.name.as_str() {
            "MPI_Init" => Some(MpiOp::Init),
            "MPI_Finalize" => Some(MpiOp::Finalize),
            "MPI_Init_thread" => {
                let level = self.bare_name_arg("thread level").and_then(|id| {
                    let l = ThreadLevel::from_name(&id.name);
                    if l.is_none() {
                        self.diags.error(
                            "parse-error",
                            format!(
                                "unknown thread level `{}` (expected SINGLE, FUNNELED, SERIALIZED or MULTIPLE)",
                                id.name
                            ),
                            id.span,
                        );
                    }
                    l
                });
                Some(MpiOp::InitThread {
                    required: level.unwrap_or(ThreadLevel::Single),
                })
            }
            "MPI_Send" => {
                let value = Box::new(self.expr());
                self.expect(&TokenKind::Comma);
                let dest = Box::new(self.expr());
                self.expect(&TokenKind::Comma);
                let tag = Box::new(self.expr());
                let comm = self.trailing_comm_arg();
                Some(MpiOp::Send {
                    value,
                    dest,
                    tag,
                    comm,
                })
            }
            "MPI_Recv" => {
                let src = Box::new(self.expr());
                self.expect(&TokenKind::Comma);
                let tag = Box::new(self.expr());
                let comm = self.trailing_comm_arg();
                Some(MpiOp::Recv { src, tag, comm })
            }
            "MPI_Comm_split" => {
                let parent = Box::new(self.expr());
                self.expect(&TokenKind::Comma);
                let color = Box::new(self.expr());
                self.expect(&TokenKind::Comma);
                let key = Box::new(self.expr());
                Some(MpiOp::CommSplit { parent, color, key })
            }
            "MPI_Comm_dup" => {
                let comm = Box::new(self.expr());
                Some(MpiOp::CommDup { comm })
            }
            "MPI_Isend" => {
                let value = Box::new(self.expr());
                self.expect(&TokenKind::Comma);
                let dest = Box::new(self.expr());
                self.expect(&TokenKind::Comma);
                let tag = Box::new(self.expr());
                let comm = self.trailing_comm_arg();
                Some(MpiOp::Isend {
                    value,
                    dest,
                    tag,
                    comm,
                })
            }
            "MPI_Irecv" => {
                let src = Box::new(self.expr());
                self.expect(&TokenKind::Comma);
                let tag = Box::new(self.expr());
                let comm = self.trailing_comm_arg();
                Some(MpiOp::Irecv { src, tag, comm })
            }
            "MPI_Wait" => {
                let request = Box::new(self.expr());
                Some(MpiOp::Wait { request })
            }
            "MPI_Waitall" => {
                let mut requests = Vec::new();
                if !self.at(&TokenKind::RParen) {
                    loop {
                        requests.push(self.expr());
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                if requests.is_empty() {
                    self.diags.error(
                        "parse-error",
                        "MPI_Waitall requires at least one request",
                        name.span,
                    );
                }
                Some(MpiOp::Waitall { requests })
            }
            _ => match CollectiveKind::from_name(&name.name) {
                Some(kind) => Some(MpiOp::Collective(self.collective_args(kind))),
                None => {
                    self.diags.error(
                        "parse-error",
                        format!("unknown MPI operation `{}`", name.name),
                        name.span,
                    );
                    None
                }
            },
        };
        // Consume anything left and the closing paren.
        while !self.at(&TokenKind::RParen) && !self.at(&TokenKind::Eof) {
            self.bump();
        }
        self.expect(&TokenKind::RParen);
        let span = start.to(self.prev_span());
        match op {
            Some(op) => Expr::new(ExprKind::Mpi(op), span),
            None => Expr::new(ExprKind::Int(0), span),
        }
    }

    /// Optional trailing `, comm` argument of MPI operations.
    fn trailing_comm_arg(&mut self) -> Option<Box<Expr>> {
        if self.eat(&TokenKind::Comma) {
            Some(Box::new(self.expr()))
        } else {
            None
        }
    }

    fn collective_args(&mut self, kind: CollectiveKind) -> CollectiveCall {
        let mut call = CollectiveCall {
            kind,
            value: None,
            reduce_op: None,
            root: None,
            comm: None,
        };
        if kind == CollectiveKind::Barrier {
            // Only argument (if any) is the communicator.
            if !self.at(&TokenKind::RParen) {
                call.comm = Some(Box::new(self.expr()));
            }
            return call;
        }
        // value
        call.value = Some(Box::new(self.expr()));
        // reduce op
        if kind.has_reduce_op() && self.expect(&TokenKind::Comma) {
            {
                if let Some(id) = self.bare_name_arg("reduction operator") {
                    match ReduceOp::from_name(&id.name) {
                        Some(op) => call.reduce_op = Some(op),
                        None => self.diags.error(
                            "parse-error",
                            format!(
                                "unknown reduction operator `{}` (expected SUM, PROD, MIN, MAX, LAND or LOR)",
                                id.name
                            ),
                            id.span,
                        ),
                    }
                }
            }
        }
        // root
        if kind.has_root() && self.expect(&TokenKind::Comma) {
            call.root = Some(Box::new(self.expr()));
        }
        // optional trailing communicator
        call.comm = self.trailing_comm_arg();
        call
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        let (prog, diags) = parse_program(src);
        assert!(
            !diags.has_errors(),
            "unexpected parse errors:\n{:#?}",
            diags.into_vec()
        );
        prog
    }

    fn parse_err(src: &str) -> Diagnostics {
        let (_prog, diags) = parse_program(src);
        assert!(diags.has_errors(), "expected parse errors, got none");
        diags
    }

    #[test]
    fn empty_program() {
        let p = parse_ok("");
        assert!(p.functions.is_empty());
    }

    #[test]
    fn minimal_main() {
        let p = parse_ok("fn main() {}");
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name.name, "main");
        assert_eq!(p.functions[0].ret, Type::Void);
        assert!(p.functions[0].body.stmts.is_empty());
    }

    #[test]
    fn function_with_params_and_return() {
        let p = parse_ok("fn f(a: int, b: float[], c: bool) -> int { return a; }");
        let f = &p.functions[0];
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[0].ty, Type::Int);
        assert_eq!(f.params[1].ty, Type::ArrayFloat);
        assert_eq!(f.params[2].ty, Type::Bool);
        assert_eq!(f.ret, Type::Int);
    }

    #[test]
    fn precedence() {
        let p = parse_ok("fn main() { let x = 1 + 2 * 3; }");
        let StmtKind::Let { init, .. } = &p.functions[0].body.stmts[0].kind else {
            panic!("expected let");
        };
        // Must parse as 1 + (2 * 3)
        let ExprKind::Binary(BinOp::Add, l, r) = &init.kind else {
            panic!("expected add at top: {init:?}");
        };
        assert!(matches!(l.kind, ExprKind::Int(1)));
        assert!(matches!(r.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn logical_precedence() {
        let p = parse_ok("fn main() { let x = true || false && true; }");
        let StmtKind::Let { init, .. } = &p.functions[0].body.stmts[0].kind else {
            panic!()
        };
        // || binds loosest: true || (false && true)
        assert!(matches!(init.kind, ExprKind::Binary(BinOp::Or, _, _)));
    }

    #[test]
    fn if_else_chain() {
        let p = parse_ok("fn main() { if (rank() == 0) { } else if (rank() == 1) { } else { } }");
        let StmtKind::If { else_blk, .. } = &p.functions[0].body.stmts[0].kind else {
            panic!()
        };
        let inner = else_blk.as_ref().unwrap();
        assert!(matches!(inner.stmts[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn while_for_loops() {
        let p = parse_ok("fn main() { while (true) { break; } for (i in 0..10) { continue; } }");
        assert!(matches!(
            p.functions[0].body.stmts[0].kind,
            StmtKind::While { .. }
        ));
        assert!(matches!(
            p.functions[0].body.stmts[1].kind,
            StmtKind::For { .. }
        ));
    }

    #[test]
    fn omp_constructs() {
        let p = parse_ok(
            "fn main() {
                parallel num_threads(4) {
                    single nowait { }
                    master { }
                    critical { }
                    barrier;
                    pfor (i in 0..8) { }
                    pfor nowait (j in 0..8) { }
                    sections { section { } section { } }
                }
            }",
        );
        let StmtKind::Omp(OmpStmt::Parallel { num_threads, body }) =
            &p.functions[0].body.stmts[0].kind
        else {
            panic!()
        };
        assert!(num_threads.is_some());
        assert_eq!(body.stmts.len(), 7);
        assert!(matches!(
            body.stmts[0].kind,
            StmtKind::Omp(OmpStmt::Single { nowait: true, .. })
        ));
        assert!(matches!(
            body.stmts[4].kind,
            StmtKind::Omp(OmpStmt::PFor { nowait: false, .. })
        ));
        assert!(matches!(
            body.stmts[5].kind,
            StmtKind::Omp(OmpStmt::PFor { nowait: true, .. })
        ));
        if let StmtKind::Omp(OmpStmt::Sections { sections, .. }) = &body.stmts[6].kind {
            assert_eq!(sections.len(), 2);
        } else {
            panic!("expected sections");
        }
    }

    #[test]
    fn mpi_collectives() {
        let p = parse_ok(
            "fn main() {
                MPI_Init();
                MPI_Barrier();
                let s = MPI_Allreduce(1, SUM);
                let b = MPI_Bcast(s, 0);
                let r = MPI_Reduce(b, MAX, 0);
                MPI_Finalize();
            }",
        );
        let stmts = &p.functions[0].body.stmts;
        assert!(matches!(
            &stmts[1].kind,
            StmtKind::Expr(Expr {
                kind: ExprKind::Mpi(MpiOp::Collective(CollectiveCall {
                    kind: CollectiveKind::Barrier,
                    ..
                })),
                ..
            })
        ));
        let StmtKind::Let { init, .. } = &stmts[2].kind else {
            panic!()
        };
        let ExprKind::Mpi(MpiOp::Collective(c)) = &init.kind else {
            panic!()
        };
        assert_eq!(c.kind, CollectiveKind::Allreduce);
        assert_eq!(c.reduce_op, Some(ReduceOp::Sum));
        assert!(c.root.is_none());
        let StmtKind::Let { init, .. } = &stmts[4].kind else {
            panic!()
        };
        let ExprKind::Mpi(MpiOp::Collective(c)) = &init.kind else {
            panic!()
        };
        assert_eq!(c.kind, CollectiveKind::Reduce);
        assert_eq!(c.reduce_op, Some(ReduceOp::Max));
        assert!(c.root.is_some());
    }

    #[test]
    fn mpi_init_thread() {
        let p = parse_ok("fn main() { MPI_Init_thread(MULTIPLE); }");
        let StmtKind::Expr(e) = &p.functions[0].body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(
            e.kind,
            ExprKind::Mpi(MpiOp::InitThread {
                required: ThreadLevel::Multiple
            })
        ));
    }

    #[test]
    fn mpi_send_recv() {
        let p = parse_ok("fn main() { MPI_Send(1, 0, 7); let v = MPI_Recv(1, 7); }");
        assert_eq!(p.functions[0].body.stmts.len(), 2);
    }

    #[test]
    fn communicator_builtins() {
        let p = parse_ok(
            "fn main() {
                let w = MPI_COMM_WORLD;
                let c = MPI_Comm_split(MPI_COMM_WORLD, 0, 1);
                let d = MPI_Comm_dup(c);
            }",
        );
        assert_eq!(p.functions[0].body.stmts.len(), 3);
        let StmtKind::Let { init, .. } = &p.functions[0].body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(init.kind, ExprKind::Mpi(MpiOp::CommWorld)));
        let StmtKind::Let { init, .. } = &p.functions[0].body.stmts[1].kind else {
            panic!()
        };
        assert!(matches!(init.kind, ExprKind::Mpi(MpiOp::CommSplit { .. })));
    }

    #[test]
    fn trailing_comm_arguments() {
        let p = parse_ok(
            "fn main() {
                let c = MPI_Comm_dup(MPI_COMM_WORLD);
                MPI_Barrier(c);
                MPI_Barrier();
                let x = MPI_Allreduce(1, SUM, c);
                let b = MPI_Bcast(1, 0, c);
                MPI_Send(1, 0, 7, c);
                let v = MPI_Recv(1, 7, c);
            }",
        );
        let barrier_comms: Vec<bool> = p.functions[0]
            .body
            .stmts
            .iter()
            .filter_map(|s| match &s.kind {
                StmtKind::Expr(Expr {
                    kind: ExprKind::Mpi(MpiOp::Collective(call)),
                    ..
                }) => Some(call.comm.is_some()),
                _ => None,
            })
            .collect();
        assert_eq!(barrier_comms, vec![true, false]);
        let StmtKind::Let { init, .. } = &p.functions[0].body.stmts[3].kind else {
            panic!()
        };
        let ExprKind::Mpi(MpiOp::Collective(call)) = &init.kind else {
            panic!("{init:?}")
        };
        assert!(call.comm.is_some() && call.reduce_op.is_some());
    }

    #[test]
    fn intrinsics_resolved() {
        let p = parse_ok("fn main() { let r = rank(); let a = array(10, 0); let n = len(a); }");
        let StmtKind::Let { init, .. } = &p.functions[0].body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(init.kind, ExprKind::Intrinsic(Intrinsic::Rank, _)));
    }

    #[test]
    fn indexed_assignment_vs_expression() {
        let p = parse_ok("fn main() { let a = array(4, 0); a[1] = 2; let x = a[1]; }");
        assert!(matches!(
            p.functions[0].body.stmts[1].kind,
            StmtKind::Assign {
                target: LValue::Index(..),
                ..
            }
        ));
    }

    #[test]
    fn unknown_mpi_op_is_error() {
        parse_err("fn main() { MPI_Frobnicate(1); }");
    }

    #[test]
    fn unknown_reduce_op_is_error() {
        parse_err("fn main() { let x = MPI_Allreduce(1, BOGUS); }");
    }

    #[test]
    fn missing_semicolon_is_error_but_recovers() {
        let (prog, diags) = parse_program("fn main() { let x = 1 let y = 2; }");
        assert!(diags.has_errors());
        // Recovery should still see both lets.
        assert_eq!(prog.functions[0].body.stmts.len(), 2);
    }

    #[test]
    fn error_recovery_across_functions() {
        let (prog, diags) = parse_program("fn broken( { } fn ok() { }");
        assert!(diags.has_errors());
        assert!(prog.functions.iter().any(|f| f.name.name == "ok"));
    }

    #[test]
    fn sections_requires_section() {
        parse_err("fn main() { parallel { sections { } } }");
    }

    #[test]
    fn nested_parallel_parses() {
        let p = parse_ok("fn main() { parallel { parallel { single { } } } }");
        let StmtKind::Omp(OmpStmt::Parallel { body, .. }) = &p.functions[0].body.stmts[0].kind
        else {
            panic!()
        };
        assert!(matches!(
            body.stmts[0].kind,
            StmtKind::Omp(OmpStmt::Parallel { .. })
        ));
    }

    #[test]
    fn spans_cover_statements() {
        let src = "fn main() { let x = 1; }";
        let p = parse_ok(src);
        let s = &p.functions[0].body.stmts[0];
        assert_eq!(&src[s.span.lo as usize..s.span.hi as usize], "let x = 1;");
    }

    #[test]
    fn deeply_nested_expression() {
        let depth = 100;
        let src = format!(
            "fn main() {{ let x = {}1{}; }}",
            "(".repeat(depth),
            ")".repeat(depth)
        );
        parse_ok(&src);
    }
}
