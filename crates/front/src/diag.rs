//! Diagnostics: errors and warnings with source locations.
//!
//! Both the frontend (lex/parse/sema errors) and the static analysis
//! (PARCOACH warnings) funnel their findings through [`Diagnostic`] so the
//! driver can render them uniformly.

use crate::span::{SourceMap, Span};
use std::fmt;

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note attached to another diagnostic.
    Note,
    /// The program is suspicious but compilation continues (PARCOACH
    /// potential-error warnings fall here).
    Warning,
    /// The program is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single diagnostic message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable code, e.g. `parse-error`, `type-mismatch`.
    pub code: String,
    /// Human-readable message.
    pub message: String,
    /// Primary source location.
    pub span: Span,
    /// Secondary locations with labels (e.g. "conditional here").
    pub notes: Vec<(Span, String)>,
}

impl Diagnostic {
    /// Build an error diagnostic.
    pub fn error(code: impl Into<String>, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code: code.into(),
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Build a warning diagnostic.
    pub fn warning(code: impl Into<String>, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code: code.into(),
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Attach a labelled secondary location.
    pub fn with_note(mut self, span: Span, label: impl Into<String>) -> Self {
        self.notes.push((span, label.into()));
        self
    }

    /// Render the diagnostic against a source map, GCC-style:
    /// `file:line:col: severity: message [code]`.
    pub fn render(&self, sm: &SourceMap) -> String {
        let mut out = String::new();
        let lc = sm.span_start(self.span);
        out.push_str(&format!(
            "{}:{}: {}: {} [{}]",
            sm.name(),
            lc,
            self.severity,
            self.message,
            self.code
        ));
        if let Some(text) = sm.line_text(lc.line) {
            out.push_str(&format!("\n    {}", text.trim_end()));
        }
        for (span, label) in &self.notes {
            let lc = sm.span_start(*span);
            out.push_str(&format!("\n  {}:{}: note: {}", sm.name(), lc, label));
        }
        out
    }
}

/// An ordered collection of diagnostics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Append a ready-made error.
    pub fn error(&mut self, code: impl Into<String>, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::error(code, message, span));
    }

    /// Append a ready-made warning.
    pub fn warning(&mut self, code: impl Into<String>, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::warning(code, message, span));
    }

    /// All diagnostics in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Count of diagnostics at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.items.iter().filter(|d| d.severity == sev).count()
    }

    /// Merge another collection into this one.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Render all diagnostics, one block per item.
    pub fn render(&self, sm: &SourceMap) -> String {
        self.items
            .iter()
            .map(|d| d.render(sm))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl From<Vec<Diagnostic>> for Diagnostics {
    fn from(items: Vec<Diagnostic>) -> Self {
        Diagnostics { items }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn has_errors_and_counts() {
        let mut ds = Diagnostics::new();
        assert!(!ds.has_errors());
        ds.warning("w1", "be careful", Span::new(0, 1));
        assert!(!ds.has_errors());
        ds.error("e1", "boom", Span::new(0, 1));
        assert!(ds.has_errors());
        assert_eq!(ds.count(Severity::Warning), 1);
        assert_eq!(ds.count(Severity::Error), 1);
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn render_includes_position_and_code() {
        let sm = SourceMap::new("demo.mh", "let x = ;\n");
        let d = Diagnostic::error("parse-error", "expected expression", Span::new(8, 9));
        let s = d.render(&sm);
        assert!(s.contains("demo.mh:1:9"), "{s}");
        assert!(s.contains("error: expected expression"), "{s}");
        assert!(s.contains("[parse-error]"), "{s}");
        assert!(s.contains("let x = ;"), "{s}");
    }

    #[test]
    fn render_notes() {
        let sm = SourceMap::new("demo.mh", "a\nb\n");
        let d = Diagnostic::warning("w", "primary", Span::new(0, 1))
            .with_note(Span::new(2, 3), "secondary here");
        let s = d.render(&sm);
        assert!(s.contains("demo.mh:2:1: note: secondary here"), "{s}");
    }

    #[test]
    fn extend_merges() {
        let mut a = Diagnostics::new();
        a.warning("w", "one", Span::DUMMY);
        let mut b = Diagnostics::new();
        b.error("e", "two", Span::DUMMY);
        a.extend(b);
        assert_eq!(a.len(), 2);
        assert!(a.has_errors());
    }
}
